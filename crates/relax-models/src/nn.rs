//! The `nn.Module`-style model builder and shared transformer components.

use std::collections::HashMap;
use std::fmt;

use relax_arith::{DataType, PrimExpr};
use relax_core::{BlockBuilder, BuildError, Expr, IRModule, Op, OpAttrs, StructInfo, Var};
use relax_tir::{grid, Buffer, PrimFunc, Stmt, TirExpr};

/// Error raised while constructing a model.
#[derive(Debug)]
pub enum ModelError {
    /// The underlying IR builder failed.
    Build(BuildError),
    /// A named parameter was not declared.
    UnknownParam(String),
    /// A configuration value is invalid.
    BadConfig(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Build(e) => write!(f, "{e}"),
            ModelError::UnknownParam(p) => write!(f, "unknown parameter `{p}`"),
            ModelError::BadConfig(d) => write!(f, "bad model configuration: {d}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<BuildError> for ModelError {
    fn from(e: BuildError) -> Self {
        ModelError::Build(e)
    }
}

/// Builds one graph-level function of a model, with named parameters and
/// concise operator helpers.
///
/// # Examples
///
/// ```
/// use relax_models::ModelBuilder;
/// use relax_core::{IRModule, StructInfo, DataType};
/// let mut mb = ModelBuilder::begin(
///     IRModule::new(),
///     "f",
///     vec![("x".into(), StructInfo::tensor(vec![4.into()], DataType::F32))],
/// );
/// let x = mb.param("x")?;
/// let y = mb.silu(x)?;
/// let m = mb.finish(y.into())?;
/// assert!(m.function("f").is_some());
/// # Ok::<(), relax_models::ModelError>(())
/// ```
pub struct ModelBuilder {
    bb: BlockBuilder,
    params: HashMap<String, Var>,
}

impl ModelBuilder {
    /// Starts building a function named `fname` on top of `module`.
    pub fn begin(module: IRModule, fname: &str, params: Vec<(String, StructInfo)>) -> ModelBuilder {
        let mut bb = BlockBuilder::from_module(module);
        let names: Vec<String> = params.iter().map(|(n, _)| n.clone()).collect();
        let vars = bb.begin_function(fname, params);
        bb.begin_dataflow();
        ModelBuilder {
            bb,
            params: names.into_iter().zip(vars).collect(),
        }
    }

    /// Looks up a declared parameter.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownParam`] for undeclared names.
    pub fn param(&self, name: &str) -> Result<Var, ModelError> {
        self.params
            .get(name)
            .cloned()
            .ok_or_else(|| ModelError::UnknownParam(name.to_string()))
    }

    /// Emits an arbitrary expression.
    pub fn emit(&mut self, expr: Expr) -> Result<Var, ModelError> {
        Ok(self.bb.emit(expr)?)
    }

    /// Emits an expression as a dataflow output (visible to the return).
    pub fn output(&mut self, expr: Expr) -> Result<Var, ModelError> {
        Ok(self.bb.emit_output(expr)?)
    }

    /// Matrix multiplication.
    pub fn matmul(&mut self, a: Var, b: Var) -> Result<Var, ModelError> {
        Ok(self.bb.emit_op(Op::Matmul, &[a, b])?)
    }

    /// Element-wise addition.
    pub fn add(&mut self, a: Var, b: Var) -> Result<Var, ModelError> {
        Ok(self.bb.emit_op(Op::Add, &[a, b])?)
    }

    /// Element-wise multiplication.
    pub fn mul(&mut self, a: Var, b: Var) -> Result<Var, ModelError> {
        Ok(self.bb.emit_op(Op::Mul, &[a, b])?)
    }

    /// SiLU activation.
    pub fn silu(&mut self, x: Var) -> Result<Var, ModelError> {
        Ok(self.bb.emit_op(Op::Silu, &[x])?)
    }

    /// GELU activation.
    pub fn gelu(&mut self, x: Var) -> Result<Var, ModelError> {
        Ok(self.bb.emit_op(Op::Gelu, &[x])?)
    }

    /// RMS normalization over the last axis.
    pub fn rms_norm(&mut self, x: Var, weight: Var) -> Result<Var, ModelError> {
        Ok(self.bb.emit_op(Op::RmsNorm, &[x, weight])?)
    }

    /// Embedding lookup.
    pub fn take(&mut self, table: Var, indices: Var) -> Result<Var, ModelError> {
        Ok(self.bb.emit_op(Op::Take, &[table, indices])?)
    }

    /// Reshape to symbolic target dimensions.
    pub fn reshape(&mut self, x: Var, dims: Vec<PrimExpr>) -> Result<Var, ModelError> {
        Ok(self.bb.emit(Expr::CallOp {
            op: Op::Reshape,
            args: vec![x.into(), Expr::ShapeValue(dims)],
            attrs: OpAttrs::new(),
        })?)
    }

    /// Dimension permutation.
    pub fn permute(&mut self, x: Var, axes: &[usize]) -> Result<Var, ModelError> {
        let spec: Vec<String> = axes.iter().map(usize::to_string).collect();
        let attrs: OpAttrs = [("axes".to_string(), spec.join(","))].into_iter().collect();
        Ok(self.bb.emit_op_attrs(Op::Permute, vec![x.into()], attrs)?)
    }

    /// Concatenation along `axis`.
    pub fn concat(&mut self, parts: &[Var], axis: usize) -> Result<Var, ModelError> {
        let attrs: OpAttrs = [("axis".to_string(), axis.to_string())]
            .into_iter()
            .collect();
        Ok(self.bb.emit_op_attrs(
            Op::Concat,
            parts.iter().map(|v| Expr::Var(v.clone())).collect(),
            attrs,
        )?)
    }

    /// Fused scaled-dot-product attention over `[b, h, s, d]` operands,
    /// with grouped-query support (`k`/`v` may have fewer heads).
    pub fn attention(
        &mut self,
        q: Var,
        k: Var,
        v: Var,
        scale: f64,
        causal: bool,
    ) -> Result<Var, ModelError> {
        let mut attrs = OpAttrs::new();
        attrs.insert("scale".into(), scale.to_string());
        attrs.insert("causal".into(), causal.to_string());
        Ok(self
            .bb
            .emit_op_attrs(Op::Attention, vec![q.into(), k.into(), v.into()], attrs)?)
    }

    /// Appends one step's keys or values `(b, h, 1, hd)` to a KV cache
    /// `(b, h, s, hd)` via the `vm.builtin.kv_append` runtime function —
    /// the paged-KV-cache equivalent that real deployments use instead of
    /// re-materializing the cache every step.
    pub fn kv_append(&mut self, cache: Var, new: Var) -> Result<Var, ModelError> {
        let cd = cache
            .struct_info()
            .tensor_dims()
            .ok_or_else(|| ModelError::BadConfig("kv cache needs a known shape".into()))?
            .to_vec();
        let nd = new
            .struct_info()
            .tensor_dims()
            .ok_or_else(|| ModelError::BadConfig("kv update needs a known shape".into()))?
            .to_vec();
        if cd.len() != 4 || nd.len() != 4 {
            return Err(ModelError::BadConfig(
                "kv_append expects rank-4 tensors".into(),
            ));
        }
        let dtype = cache.struct_info().tensor_dtype().unwrap_or(DataType::F32);
        let grown = relax_arith::simplify(&(cd[2].clone() + nd[2].clone()));
        let out_sinfo = StructInfo::tensor(
            vec![cd[0].clone(), cd[1].clone(), grown, cd[3].clone()],
            dtype,
        );
        Ok(self.bb.emit(Expr::CallDps {
            func: "vm.builtin.kv_append".into(),
            args: vec![cache.into(), new.into()],
            out_sinfo,
        })?)
    }

    /// Appends one step's keys or values `(b, h, n, hd)` **in place**
    /// onto one stream of a first-class paged KV-cache handle via
    /// `vm.builtin.kv_cache.append_paged`, and returns the handle again
    /// (`Object`-typed). Chaining the returned handle into the next
    /// append keeps the whole sequence of in-place updates ordered and
    /// alive through purity-based cleanups.
    pub fn kv_append_paged(
        &mut self,
        cache: Var,
        new: Var,
        stream: usize,
    ) -> Result<Var, ModelError> {
        let stream = i64::try_from(stream)
            .map_err(|_| ModelError::BadConfig(format!("stream {stream} out of range")))?;
        Ok(self.bb.emit(Expr::CallDps {
            func: "vm.builtin.kv_cache.append_paged".into(),
            args: vec![
                cache.into(),
                new.into(),
                Expr::ShapeValue(vec![stream.into()]),
            ],
            out_sinfo: StructInfo::Object,
        })?)
    }

    /// Fused attention of `q` (`(b, hq, s, hd)`) against two streams of
    /// a paged KV-cache handle, reading pages in place
    /// (`vm.builtin.kv_cache.attention`). The builtin applies the
    /// standard `1/sqrt(hd)` scale.
    pub fn kv_attention_paged(
        &mut self,
        q: Var,
        cache: Var,
        k_stream: usize,
        v_stream: usize,
        causal: bool,
    ) -> Result<Var, ModelError> {
        let out_sinfo = q.struct_info().clone();
        let enc = |v: usize| -> Result<PrimExpr, ModelError> {
            Ok(i64::try_from(v)
                .map_err(|_| ModelError::BadConfig(format!("stream {v} out of range")))?
                .into())
        };
        Ok(self.bb.emit(Expr::CallDps {
            func: "vm.builtin.kv_cache.attention".into(),
            args: vec![
                q.into(),
                cache.into(),
                Expr::ShapeValue(vec![enc(k_stream)?, enc(v_stream)?, i64::from(causal).into()]),
            ],
            out_sinfo,
        })?)
    }

    /// Refines a value's shape through `match_cast`, introducing the
    /// symbolic variables of `sinfo` with a runtime check — the
    /// data-dependent-shape idiom of the paper's Figure 3 (an MoE
    /// gather's row count is only known once the router has run).
    pub fn match_cast(&mut self, value: Var, sinfo: StructInfo) -> Result<Var, ModelError> {
        Ok(self.bb.emit_match_cast(value.into(), sinfo)?)
    }

    /// Per-token expert assignment: argmax of router logits `(t, E)`
    /// into `(t,)` i64 via the `vm.builtin.moe.route` runtime builtin.
    pub fn moe_route(&mut self, logits: Var) -> Result<Var, ModelError> {
        let dims = logits
            .struct_info()
            .tensor_dims()
            .ok_or_else(|| ModelError::BadConfig("router logits need a known shape".into()))?
            .to_vec();
        if dims.len() != 2 {
            return Err(ModelError::BadConfig(
                "router logits must be rank 2 (tokens, experts)".into(),
            ));
        }
        let out_sinfo = StructInfo::tensor(vec![dims[0].clone()], DataType::I64);
        Ok(self.bb.emit(Expr::CallDps {
            func: "vm.builtin.moe.route".into(),
            args: vec![logits.into()],
            out_sinfo,
        })?)
    }

    /// Gathers the token rows assigned to `expert` into a fresh matrix
    /// whose row count is **data-dependent**: the annotation is the
    /// coarse `Tensor(ndim=2)`, to be refined by a `match_cast` that
    /// binds the runtime count to a fresh symbolic dim.
    pub fn moe_gather(&mut self, tokens: Var, assign: Var, expert: i64) -> Result<Var, ModelError> {
        let dtype = tokens.struct_info().tensor_dtype().unwrap_or(DataType::F32);
        Ok(self.bb.emit(Expr::CallDps {
            func: "vm.builtin.moe.gather".into(),
            args: vec![
                tokens.into(),
                assign.into(),
                Expr::ShapeValue(vec![expert.into()]),
            ],
            out_sinfo: StructInfo::tensor_ndim(2, dtype),
        })?)
    }

    /// Scatters an expert's output rows `(n_e, d)` back to their token
    /// positions in a `(tokens, d)` matrix (zeros elsewhere).
    pub fn moe_scatter(
        &mut self,
        rows: Var,
        assign: Var,
        expert: i64,
        tokens: PrimExpr,
        d: PrimExpr,
    ) -> Result<Var, ModelError> {
        let dtype = rows.struct_info().tensor_dtype().unwrap_or(DataType::F32);
        Ok(self.bb.emit(Expr::CallDps {
            func: "vm.builtin.moe.scatter".into(),
            args: vec![
                rows.into(),
                assign.into(),
                Expr::ShapeValue(vec![expert.into(), tokens.clone()]),
            ],
            out_sinfo: StructInfo::tensor(vec![tokens, d], dtype),
        })?)
    }

    /// A linear layer with 4-bit quantized weights: the customized
    /// quantization-decode tensor program of Figure 9 followed by a
    /// matmul. `wdata` packs eight 4-bit values per `u32` along the output
    /// axis; `wscale` holds one scale per 32 outputs.
    ///
    /// The decode program has no graph-level operator — exactly the
    /// "customized operators that cannot be easily represented on graph
    /// level" case that cross-level abstraction exists for; analysis
    /// feedback classifies it `Injective` and fusion merges it into the
    /// matmul.
    pub fn q4_linear(
        &mut self,
        x: Var,
        wdata: Var,
        wscale: Var,
        k: i64,
        n: i64,
        dtype: DataType,
    ) -> Result<Var, ModelError> {
        if n % 32 != 0 {
            return Err(ModelError::BadConfig(format!(
                "q4 output dimension {n} must be a multiple of 32"
            )));
        }
        let decode = build_decode_q4(k, n, dtype);
        let name = self.bb.add_tir_func(decode);
        let w = self.bb.emit(Expr::CallTir {
            func: name,
            args: vec![wdata.into(), wscale.into()],
            out_sinfo: StructInfo::tensor(vec![k.into(), n.into()], dtype),
            sym_args: vec![],
        })?;
        self.matmul(x, w)
    }

    /// Finishes the function, returning the updated module.
    ///
    /// # Errors
    ///
    /// Propagates return-annotation deduction failures.
    pub fn finish(mut self, ret: Expr) -> Result<IRModule, ModelError> {
        self.bb.end_dataflow();
        self.bb.finish_function(ret, None)?;
        Ok(self.bb.finish())
    }
}

/// Builds the `decode_q4` tensor program of Figure 9:
/// `W[kk, j] = (((data[kk, j//8] >> (j%8*4)) & 15) - 7) * scale[kk, j//32]`.
pub fn build_decode_q4(k: i64, n: i64, dtype: DataType) -> PrimFunc {
    let wdata = Buffer::new("Wdata", vec![k.into(), (n / 8).into()], DataType::U32);
    let wscale = Buffer::new("Wscale", vec![k.into(), (n / 32).into()], dtype);
    let w = Buffer::new("W", vec![k.into(), n.into()], dtype);
    let (iv, nest) = grid(&[("kk", k.into()), ("j", n.into())]);
    let (kk, j) = (PrimExpr::from(iv[0].clone()), PrimExpr::from(iv[1].clone()));
    let nibble = TirExpr::BitAnd(
        Box::new(TirExpr::Shr(
            Box::new(TirExpr::load(
                &wdata,
                vec![kk.clone(), j.clone().floor_div(8.into())],
            )),
            Box::new(TirExpr::Index(j.clone().floor_mod(8.into()) * 4.into())),
        )),
        Box::new(TirExpr::IntImm(15)),
    );
    let value = TirExpr::Cast(dtype, Box::new(nibble - TirExpr::IntImm(7)))
        * TirExpr::load(&wscale, vec![kk.clone(), j.clone().floor_div(32.into())]);
    let body = nest.build(Stmt::store(&w, vec![kk, j], value));
    PrimFunc::new("decode_q4", vec![wdata, wscale, w], 1, body)
}

/// Packs float weights into the q4 format used by [`build_decode_q4`]
/// (for numeric tests): returns `(wdata_u32, wscale)` vectors for a
/// `(k, n)` weight matrix given per-group scales.
pub fn pack_q4(weights: &[Vec<u8>], scales: &[Vec<f64>]) -> (Vec<i64>, Vec<f64>) {
    let mut data = Vec::new();
    for row in weights {
        for chunk in row.chunks(8) {
            let mut word: u32 = 0;
            for (i, &nib) in chunk.iter().enumerate() {
                word |= u32::from(nib & 0xF) << (i * 4);
            }
            data.push(i64::from(word));
        }
    }
    let flat_scales = scales.iter().flatten().copied().collect();
    (data, flat_scales)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relax_tir::{interp, NDArray};

    #[test]
    fn decode_q4_matches_reference() {
        // 1x32 weight row: nibbles 0..16 repeated, scale 2.0.
        let k = 1i64;
        let n = 32i64;
        let f = build_decode_q4(k, n, DataType::F32);
        let nibbles: Vec<u8> = (0..32).map(|i| (i % 16) as u8).collect();
        let (data, scales) = pack_q4(std::slice::from_ref(&nibbles), &[vec![2.0]]);
        let wdata = NDArray::from_i64(&[1, 4], DataType::U32, data).unwrap();
        let wscale = NDArray::from_f64(&[1, 1], DataType::F32, scales).unwrap();
        let w = NDArray::zeros(&[1, 32], DataType::F32);
        interp::run(&f, &[wdata, wscale, w.clone()]).unwrap();
        let got = w.to_f64_vec();
        for (j, g) in got.iter().enumerate() {
            let expect = ((j % 16) as f64 - 7.0) * 2.0;
            assert_eq!(*g, expect, "at {j}");
        }
        // Analysis feedback: decode is injective (fusible into matmul).
        assert_eq!(
            relax_tir::analysis::pattern_kind(&f),
            relax_tir::analysis::PatternKind::Injective
        );
    }

    #[test]
    fn q4_linear_builds_and_infers() {
        let mut mb = ModelBuilder::begin(
            IRModule::new(),
            "f",
            vec![
                (
                    "x".into(),
                    StructInfo::tensor(vec![1.into(), 64.into()], DataType::F32),
                ),
                (
                    "wd".into(),
                    StructInfo::tensor(vec![64.into(), 4.into()], DataType::U32),
                ),
                (
                    "ws".into(),
                    StructInfo::tensor(vec![64.into(), 1.into()], DataType::F32),
                ),
            ],
        );
        let x = mb.param("x").unwrap();
        let wd = mb.param("wd").unwrap();
        let ws = mb.param("ws").unwrap();
        let y = mb.q4_linear(x, wd, ws, 64, 32, DataType::F32).unwrap();
        assert_eq!(
            y.struct_info().tensor_dims().unwrap(),
            &[PrimExpr::Int(1), PrimExpr::Int(32)]
        );
        let out = mb.output(y.into()).unwrap();
        let m = mb.finish(out.into()).unwrap();
        assert!(relax_core::assert_well_formed(&m).is_ok());
    }

    #[test]
    fn bad_q4_dims_rejected() {
        let mut mb = ModelBuilder::begin(
            IRModule::new(),
            "f",
            vec![(
                "x".into(),
                StructInfo::tensor(vec![1.into(), 8.into()], DataType::F32),
            )],
        );
        let x = mb.param("x").unwrap();
        let err = mb
            .q4_linear(x.clone(), x.clone(), x, 8, 20, DataType::F32)
            .unwrap_err();
        assert!(matches!(err, ModelError::BadConfig(_)));
    }
}
