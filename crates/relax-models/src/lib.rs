//! Model frontends for the Relax evaluation, built with an
//! `nn.Module`-like builder on top of the Relax IR (the paper constructs
//! its models "with a PyTorch-like `nn.Module` interface", §5.1).
//!
//! - [`llama`]: decoder-only transformer LLMs with KV caches, grouped-query
//!   attention and optional 4-bit quantized weights (Llama3-8B,
//!   Gemma1.1-7B, Qwen2-7B, Llama2-7B, Phi3-mini, RedPajama-3B presets,
//!   plus a `tiny` configuration that executes numerically in tests);
//! - [`whisper`]: encoder–decoder speech transformer (Whisper-large-v3
//!   preset) with self- and cross-attention;
//! - [`llava`]: vision encoder + projector for the LLaVA multimodal
//!   pipeline;
//! - [`moe`]: mixture-of-experts dispatch with data-dependent per-expert
//!   token counts bound through `match_cast` (the ragged-shape stress
//!   workload), plus its pure-Rust bitwise differential oracle;
//! - [`nn`]: the builder and shared transformer components, including the
//!   customized 4-bit quantization decode tensor program of Figure 9.
//!
//! Weights are function *parameters*, not constants: performance
//! simulation needs only their shapes, while tests pass real arrays for
//! small configurations.

#![forbid(unsafe_code)]

pub mod llama;
pub mod llava;
pub mod moe;
pub mod nn;
pub mod whisper;

pub use llama::LlamaConfig;
pub use llava::LlavaConfig;
pub use moe::MoeConfig;
pub use nn::{ModelBuilder, ModelError};
pub use whisper::WhisperConfig;
