//! Graph offloading (§4.5): the CUDA Graph model.
//!
//! After static memory planning, maximal runs of kernel launches whose
//! memory comes from planned storage are wrapped into `CaptureRegion`s.
//! The VM captures such a region on first execution and replays it on
//! subsequent executions with a single launch overhead — re-capturing
//! whenever the symbolic shapes feeding the region change (the region's
//! key expressions).

use std::collections::BTreeSet;

use relax_arith::{PrimExpr, Var as SymVar};
use relax_vm::{Instr, VmFunction};

/// Minimum number of kernel launches for a region to be worth capturing.
const MIN_KERNELS: usize = 2;

fn capturable(instr: &Instr) -> bool {
    matches!(
        instr,
        Instr::CallTir { .. }
            | Instr::CallLib { .. }
            | Instr::TensorFromStorage { .. }
            | Instr::Kill { .. }
            | Instr::Copy { .. }
    )
}

fn is_kernel(instr: &Instr) -> bool {
    matches!(instr, Instr::CallTir { .. } | Instr::CallLib { .. })
}

fn collect_sym_vars(instr: &Instr, out: &mut BTreeSet<SymVar>) {
    let mut exprs: Vec<&PrimExpr> = Vec::new();
    match instr {
        Instr::TensorFromStorage { shape, .. } | Instr::AllocTensor { shape, .. } => {
            exprs.extend(shape.iter());
        }
        Instr::CallTir { sym_args, .. } => exprs.extend(sym_args.iter()),
        Instr::AllocStorage { bytes, .. } => exprs.push(bytes),
        Instr::MakeShape { dims, .. } | Instr::MatchShape { dims, .. } => exprs.extend(dims.iter()),
        _ => {}
    }
    for e in exprs {
        out.extend(relax_arith::free_vars(e));
    }
}

/// Wraps maximal capturable instruction runs in `CaptureRegion`s.
///
/// Only meaningful after [`crate::plan_memory`]: a function still
/// containing dynamic `AllocTensor`s gets no regions around them. Returns
/// the rewritten function and the number of regions created.
pub fn offload_capture(func: &VmFunction) -> (VmFunction, usize) {
    let mut out: Vec<Instr> = Vec::new();
    let mut run: Vec<Instr> = Vec::new();
    let mut regions = 0usize;

    let flush = |run: &mut Vec<Instr>, out: &mut Vec<Instr>, regions: &mut usize| {
        let kernels = run.iter().filter(|i| is_kernel(i)).count();
        if kernels >= MIN_KERNELS {
            let mut keys = BTreeSet::new();
            for i in run.iter() {
                collect_sym_vars(i, &mut keys);
            }
            out.push(Instr::CaptureRegion {
                id: *regions,
                keys: keys.into_iter().map(PrimExpr::from).collect(),
                body: std::mem::take(run),
            });
            *regions += 1;
        } else {
            out.append(run);
        }
    };

    for instr in &func.instrs {
        if capturable(instr) {
            run.push(instr.clone());
        } else {
            flush(&mut run, &mut out, &mut regions);
            out.push(instr.clone());
        }
    }
    flush(&mut run, &mut out, &mut regions);

    (
        VmFunction {
            name: func.name.clone(),
            num_params: func.num_params,
            num_regs: func.num_regs,
            instrs: out,
        },
        regions,
    )
}

/// [`crate::ExecPass`] adapter for [`offload_capture`], applied to every
/// function of the executable.
#[derive(Debug, Default, Clone, Copy)]
pub struct GraphCapture;

impl crate::ExecPass for GraphCapture {
    fn name(&self) -> &str {
        "graph_capture"
    }

    fn run_on_exec(
        &mut self,
        exec: &mut relax_vm::Executable,
        _ctx: &mut crate::PassContext,
    ) -> Result<bool, crate::PassError> {
        let mut total_regions = 0;
        for f in exec.funcs.values_mut() {
            let (wrapped, regions) = offload_capture(f);
            *f = wrapped;
            total_regions += regions;
        }
        Ok(total_regions > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relax_core::DataType;

    #[test]
    fn contiguous_kernel_runs_are_wrapped() {
        let n = SymVar::new("n");
        let f = VmFunction {
            name: "main".into(),
            num_params: 1,
            num_regs: 6,
            instrs: vec![
                Instr::MatchShape {
                    src: 0,
                    dims: vec![n.clone().into()],
                    ctx: "p".into(),
                },
                Instr::AllocStorage {
                    dst: 4,
                    bytes: 1024.into(),
                },
                Instr::TensorFromStorage {
                    dst: 1,
                    storage: 4,
                    shape: vec![n.clone().into()],
                    dtype: DataType::F32,
                },
                Instr::CallTir {
                    func: "a".into(),
                    args: vec![0],
                    dsts: vec![1],
                    sym_args: vec![],
                },
                Instr::CallTir {
                    func: "b".into(),
                    args: vec![1],
                    dsts: vec![1],
                    sym_args: vec![],
                },
                Instr::Ret { src: 1 },
            ],
        };
        let (wrapped, regions) = offload_capture(&f);
        assert_eq!(regions, 1);
        let region = wrapped
            .instrs
            .iter()
            .find_map(|i| match i {
                Instr::CaptureRegion { body, keys, .. } => Some((body.clone(), keys.clone())),
                _ => None,
            })
            .expect("a region");
        assert_eq!(region.0.len(), 3); // tensor_from + 2 calls
                                       // The region key includes the dynamic dimension n.
        assert_eq!(region.1.len(), 1);
    }

    #[test]
    fn single_kernel_runs_are_not_captured() {
        let f = VmFunction {
            name: "main".into(),
            num_params: 1,
            num_regs: 2,
            instrs: vec![
                Instr::CallTir {
                    func: "a".into(),
                    args: vec![0],
                    dsts: vec![1],
                    sym_args: vec![],
                },
                Instr::Ret { src: 1 },
            ],
        };
        let (wrapped, regions) = offload_capture(&f);
        assert_eq!(regions, 0);
        assert_eq!(wrapped.instrs, f.instrs);
    }

    #[test]
    fn dynamic_allocs_break_regions() {
        let n = SymVar::new("n");
        let call = |name: &str| Instr::CallTir {
            func: name.into(),
            args: vec![0],
            dsts: vec![1],
            sym_args: vec![],
        };
        let f = VmFunction {
            name: "main".into(),
            num_params: 1,
            num_regs: 3,
            instrs: vec![
                call("a"),
                call("b"),
                Instr::AllocTensor {
                    dst: 2,
                    shape: vec![n.into()],
                    dtype: DataType::F32,
                },
                call("c"),
                Instr::Ret { src: 1 },
            ],
        };
        let (wrapped, regions) = offload_capture(&f);
        assert_eq!(regions, 1); // only the leading a;b pair
        assert!(wrapped
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::AllocTensor { .. })));
    }
}
