//! Dynamic shape–aware memory planning (§4.3, Algorithm 3).
//!
//! Operates on the lowered instruction form: every `AllocTensor` becomes a
//! `TensorFromStorage` of a planned storage block, where reuse between two
//! dynamic allocations is justified by *proving* their symbolic sizes
//! equal (e.g. a `(2, n)` f32 tensor reuses the storage of an earlier,
//! now-dead `(n, 2)` tensor because `8n == 8n`). When the user declares
//! upper bounds for symbolic variables (e.g. a maximum context length),
//! storages are sized to the bound and the plan becomes fully static —
//! the prerequisite for graph capture (§4.5).

use std::collections::HashMap;

use relax_arith::{Analyzer, IntBound, PrimExpr, Var as SymVar};
use relax_vm::{Instr, Reg, VmFunction};

/// One planned storage block.
#[derive(Debug, Clone)]
struct Storage {
    reg: Reg,
    /// Symbolic byte size (or constant upper bound).
    bytes: PrimExpr,
    free: bool,
}

/// Plans memory for a lowered function under optional shape upper bounds.
///
/// Returns the rewritten function; `AllocStorage` instructions are placed
/// after the parameter `MatchShape` prologue so symbolic sizes can be
/// evaluated. The number of storages is the maximum number of
/// simultaneously live intermediate tensors, not the total number of
/// allocations — the Figure 10 example goes from four allocations to two
/// storages.
pub fn plan_memory(func: &VmFunction, bounds: &HashMap<SymVar, i64>) -> VmFunction {
    let mut analyzer = Analyzer::new();
    for (v, b) in bounds {
        analyzer.bind(v.clone(), IntBound::range(0, *b));
    }

    let mut next_reg = func.num_regs;
    let mut storages: Vec<Storage> = Vec::new();
    // Which storage backs each tensor register.
    let mut backing: HashMap<Reg, usize> = HashMap::new();
    let mut rewritten: Vec<Instr> = Vec::new();

    for instr in &func.instrs {
        match instr {
            Instr::AllocTensor { dst, shape, dtype } => {
                // Declare every symbolic variable non-negative for bound
                // reasoning.
                for d in shape {
                    for v in relax_arith::free_vars(d) {
                        if !bounds.contains_key(&v) {
                            analyzer.bind_shape_var(v);
                        }
                    }
                }
                let elem: PrimExpr = shape
                    .iter()
                    .cloned()
                    .fold(PrimExpr::Int(1), |acc, d| acc * d);
                let bytes_expr =
                    analyzer.simplify(&(elem * PrimExpr::Int(dtype.size_bytes() as i64)));
                // Prefer the static upper bound when it exists.
                let planned_bytes = match analyzer.upper_bound(&bytes_expr) {
                    Some(bound) => PrimExpr::Int(bound),
                    None => bytes_expr.clone(),
                };
                // RequestReuseWithSymShape: a free storage with provably
                // equal size (or, for static sizes, enough capacity).
                // Among static candidates pick the *smallest* adequate
                // block (best-fit, matching `PooledAllocator`): first-fit
                // lets a small tensor squat in a large block and forces a
                // fresh storage for the next large tensor. Symbolic
                // matches are provably exact, so they rank ahead of any
                // oversized static block.
                let reuse = storages
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| {
                        if !s.free {
                            return None;
                        }
                        match (s.bytes.as_int(), planned_bytes.as_int()) {
                            (Some(have), Some(need)) if have >= need => {
                                Some((i, (have - need) as u64))
                            }
                            (Some(_), Some(_)) => None,
                            _ => analyzer
                                .prove_equal(&s.bytes, &planned_bytes)
                                .then_some((i, 0)),
                        }
                    })
                    .min_by_key(|&(i, waste)| (waste, i))
                    .map(|(i, _)| i);
                let sidx = match reuse {
                    Some(i) => {
                        storages[i].free = false;
                        i
                    }
                    None => {
                        let reg = next_reg;
                        next_reg += 1;
                        storages.push(Storage {
                            reg,
                            bytes: planned_bytes,
                            free: false,
                        });
                        storages.len() - 1
                    }
                };
                backing.insert(*dst, sidx);
                rewritten.push(Instr::TensorFromStorage {
                    dst: *dst,
                    storage: storages[sidx].reg,
                    shape: shape.clone(),
                    dtype: *dtype,
                });
            }
            Instr::Kill { reg } => {
                if let Some(sidx) = backing.remove(reg) {
                    storages[sidx].free = true;
                }
                rewritten.push(instr.clone());
            }
            other => rewritten.push(other.clone()),
        }
    }

    // Hoist each storage allocation as early as possible: right after the
    // parameter prologue when its size is evaluable there (constant, or
    // using only variables the parameter `MatchShape`s bind), else
    // immediately before its first use (a `match_cast` later in the body
    // may be what binds the storage's symbolic variables).
    let prologue_end = rewritten
        .iter()
        .position(|i| !matches!(i, Instr::MatchShape { .. }))
        .unwrap_or(rewritten.len());
    let prologue_vars: std::collections::HashSet<SymVar> = rewritten[..prologue_end]
        .iter()
        .flat_map(|i| match i {
            Instr::MatchShape { dims, .. } => dims
                .iter()
                .flat_map(relax_arith::free_vars)
                .collect::<Vec<_>>(),
            _ => Vec::new(),
        })
        .collect();
    let mut instrs = rewritten;
    for s in storages.iter().rev() {
        let first_use = instrs
            .iter()
            .position(
                |i| matches!(i, Instr::TensorFromStorage { storage, .. } if *storage == s.reg),
            )
            .unwrap_or(instrs.len());
        let evaluable_at_prologue = relax_arith::free_vars(&s.bytes)
            .into_iter()
            .all(|v| prologue_vars.contains(&v));
        let pos = if evaluable_at_prologue {
            prologue_end.min(first_use)
        } else {
            first_use
        };
        instrs.insert(
            pos,
            Instr::AllocStorage {
                dst: s.reg,
                bytes: s.bytes.clone(),
            },
        );
    }

    VmFunction {
        name: func.name.clone(),
        num_params: func.num_params,
        num_regs: next_reg,
        instrs,
    }
}

/// [`crate::ExecPass`] adapter for [`plan_memory`], applied to every
/// function of the executable under fixed shape bounds.
#[derive(Debug, Default, Clone)]
pub struct MemoryPlan {
    bounds: HashMap<SymVar, i64>,
}

impl MemoryPlan {
    /// A planning pass using `bounds` as symbolic-shape upper bounds.
    pub fn new(bounds: HashMap<SymVar, i64>) -> Self {
        MemoryPlan { bounds }
    }
}

impl crate::ExecPass for MemoryPlan {
    fn name(&self) -> &str {
        "memory_plan"
    }

    fn run_on_exec(
        &mut self,
        exec: &mut relax_vm::Executable,
        _ctx: &mut crate::PassContext,
    ) -> Result<bool, crate::PassError> {
        let mut changed = false;
        for f in exec.funcs.values_mut() {
            let planned = plan_memory(f, &self.bounds);
            if planned != *f {
                *f = planned;
                changed = true;
            }
        }
        Ok(changed)
    }
}

/// `true` if every storage in the planned function has a constant size —
/// i.e. the plan is fully static and graph capture is legal.
#[cfg(test)]
pub(crate) fn plan_is_static(func: &VmFunction) -> bool {
    func.instrs.iter().all(|i| match i {
        Instr::AllocStorage { bytes, .. } => bytes.is_const(),
        Instr::AllocTensor { .. } => false,
        _ => true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use relax_core::DataType;

    /// Figure 10: four intermediates with shapes (2,n), (n,2), (n,2), (2,n)
    /// and chained lifetimes plan into exactly two storages.
    fn figure10_func() -> (VmFunction, SymVar) {
        let n = SymVar::new("n");
        let sh_a = vec![PrimExpr::Int(2), n.clone().into()];
        let sh_b = vec![n.clone().into(), PrimExpr::Int(2)];
        let instrs = vec![
            Instr::MatchShape {
                src: 0,
                dims: sh_a.clone(),
                ctx: "param".into(),
            },
            // lv0 = exp(x)
            Instr::AllocTensor {
                dst: 1,
                shape: sh_a.clone(),
                dtype: DataType::F32,
            },
            Instr::CallTir {
                func: "exp".into(),
                args: vec![0],
                dsts: vec![1],
                sym_args: vec![],
            },
            // lv1 = transpose(lv0); lv0 dies
            Instr::AllocTensor {
                dst: 2,
                shape: sh_b.clone(),
                dtype: DataType::F32,
            },
            Instr::CallTir {
                func: "transpose".into(),
                args: vec![1],
                dsts: vec![2],
                sym_args: vec![],
            },
            Instr::Kill { reg: 1 },
            // lv2 = relu(lv1); lv1 dies
            Instr::AllocTensor {
                dst: 3,
                shape: sh_b,
                dtype: DataType::F32,
            },
            Instr::CallTir {
                func: "relu".into(),
                args: vec![2],
                dsts: vec![3],
                sym_args: vec![],
            },
            Instr::Kill { reg: 2 },
            // lv3 = transpose(lv2); lv2 dies
            Instr::AllocTensor {
                dst: 4,
                shape: sh_a,
                dtype: DataType::F32,
            },
            Instr::CallTir {
                func: "transpose".into(),
                args: vec![3],
                dsts: vec![4],
                sym_args: vec![],
            },
            Instr::Kill { reg: 3 },
            Instr::Ret { src: 4 },
        ];
        (
            VmFunction {
                name: "main".into(),
                num_params: 1,
                num_regs: 5,
                instrs,
            },
            n,
        )
    }

    #[test]
    fn figure10_plans_two_storages() {
        let (f, _) = figure10_func();
        let planned = plan_memory(&f, &HashMap::new());
        let storages: Vec<&Instr> = planned
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::AllocStorage { .. }))
            .collect();
        // (2,n) and (n,2) have provably equal byte sizes -> full chaining
        // down to 2 storages.
        assert_eq!(storages.len(), 2);
        assert!(!planned
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::AllocTensor { .. })));
        // Without bounds the plan is symbolic, not static.
        assert!(!plan_is_static(&planned));
    }

    #[test]
    fn distinct_sym_vars_do_not_share_storage() {
        let n = SymVar::new("n");
        let m = SymVar::new("m");
        let instrs = vec![
            Instr::AllocTensor {
                dst: 0,
                shape: vec![n.into()],
                dtype: DataType::F32,
            },
            Instr::Kill { reg: 0 },
            Instr::AllocTensor {
                dst: 1,
                shape: vec![m.into()],
                dtype: DataType::F32,
            },
            Instr::Ret { src: 1 },
        ];
        let f = VmFunction {
            name: "f".into(),
            num_params: 0,
            num_regs: 2,
            instrs,
        };
        let planned = plan_memory(&f, &HashMap::new());
        let storages = planned
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::AllocStorage { .. }))
            .count();
        assert_eq!(storages, 2);
    }

    #[test]
    fn upper_bounds_make_the_plan_static() {
        let (f, n) = figure10_func();
        let bounds: HashMap<SymVar, i64> = [(n, 1024)].into_iter().collect();
        let planned = plan_memory(&f, &bounds);
        assert!(plan_is_static(&planned));
        for i in &planned.instrs {
            if let Instr::AllocStorage { bytes, .. } = i {
                // 2 * 1024 * 4 bytes
                assert_eq!(bytes.as_int(), Some(8192));
            }
        }
    }

    /// Regression: first-fit reuse let a small tensor squat in a large
    /// free block. Lifetimes: A(100) and B(50) both die, then C(50) and
    /// D(100) allocate. First-fit put C into A's 100-element block, so D
    /// found only B's 50 free and forced a third storage; best-fit puts C
    /// into B and D into A — two storages total.
    #[test]
    fn best_fit_avoids_small_tensor_squatting_in_large_block() {
        let alloc = |dst: Reg, n: i64| Instr::AllocTensor {
            dst,
            shape: vec![n.into()],
            dtype: DataType::F32,
        };
        let instrs = vec![
            alloc(0, 100), // A
            alloc(1, 50),  // B
            Instr::Kill { reg: 0 },
            Instr::Kill { reg: 1 },
            alloc(2, 50),  // C: best-fit -> B's block
            alloc(3, 100), // D: best-fit -> A's block
            Instr::Ret { src: 3 },
        ];
        let f = VmFunction {
            name: "f".into(),
            num_params: 0,
            num_regs: 4,
            instrs,
        };
        let planned = plan_memory(&f, &HashMap::new());
        let sizes: Vec<i64> = planned
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instr::AllocStorage { bytes, .. } => bytes.as_int(),
                _ => None,
            })
            .collect();
        assert_eq!(sizes.len(), 2, "first-fit inflates this to 3 storages");
        assert_eq!(sizes.iter().sum::<i64>(), 400 + 200);
    }

    #[test]
    fn static_sizes_reuse_bigger_free_blocks() {
        let instrs = vec![
            Instr::AllocTensor {
                dst: 0,
                shape: vec![100.into()],
                dtype: DataType::F32,
            },
            Instr::Kill { reg: 0 },
            Instr::AllocTensor {
                dst: 1,
                shape: vec![50.into()],
                dtype: DataType::F32,
            },
            Instr::Ret { src: 1 },
        ];
        let f = VmFunction {
            name: "f".into(),
            num_params: 0,
            num_regs: 2,
            instrs,
        };
        let planned = plan_memory(&f, &HashMap::new());
        let storages = planned
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::AllocStorage { .. }))
            .count();
        assert_eq!(storages, 1);
    }
}
