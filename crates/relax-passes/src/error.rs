//! Unified pass error type.

use std::fmt;

use relax_core::{BuildError, DeduceError, LegalizeError, WellFormedError};
use relax_tir::transform::TransformError;

/// Error raised by a compiler pass.
#[derive(Debug)]
pub enum PassError {
    /// Shape deduction failed.
    Deduce(DeduceError),
    /// Operator legalization failed.
    Legalize(LegalizeError),
    /// Tensor-program transformation failed.
    Transform(TransformError),
    /// Function building failed.
    Build(BuildError),
    /// The input module is not well formed.
    WellFormed(WellFormedError),
    /// A module pass produced a malformed module (caught by
    /// `VerifyLevel::All` inter-pass checking).
    WellFormedAfter {
        /// The pass that ran immediately before the check.
        pass: String,
        /// The violation found.
        error: WellFormedError,
    },
    /// Lowering encountered an unsupported construct.
    Unsupported {
        /// Which pass.
        pass: &'static str,
        /// Detail.
        detail: String,
    },
    /// The lowered executable failed validation (see `relax_vm::verify`).
    Verify {
        /// Pipeline stage or pass after which validation ran.
        stage: String,
        /// The violations found.
        error: relax_vm::VerifyError,
    },
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassError::Deduce(e) => write!(f, "{e}"),
            PassError::Legalize(e) => write!(f, "{e}"),
            PassError::Transform(e) => write!(f, "{e}"),
            PassError::Build(e) => write!(f, "{e}"),
            PassError::WellFormed(e) => write!(f, "{e}"),
            PassError::WellFormedAfter { pass, error } => {
                write!(f, "module malformed after pass `{pass}`: {error}")
            }
            PassError::Unsupported { pass, detail } => write!(f, "{pass}: {detail}"),
            PassError::Verify { stage, error } => {
                write!(f, "executable validation failed after {stage}: {error}")
            }
        }
    }
}

impl std::error::Error for PassError {}

impl From<DeduceError> for PassError {
    fn from(e: DeduceError) -> Self {
        PassError::Deduce(e)
    }
}

impl From<LegalizeError> for PassError {
    fn from(e: LegalizeError) -> Self {
        PassError::Legalize(e)
    }
}

impl From<TransformError> for PassError {
    fn from(e: TransformError) -> Self {
        PassError::Transform(e)
    }
}

impl From<BuildError> for PassError {
    fn from(e: BuildError) -> Self {
        PassError::Build(e)
    }
}

impl From<WellFormedError> for PassError {
    fn from(e: WellFormedError) -> Self {
        PassError::WellFormed(e)
    }
}
