//! Cross-level optimization passes and the unified two-stage pass
//! infrastructure (§4).
//!
//! The passes operate on the cross-level [`relax_core::IRModule`] — graph
//! functions and tensor programs together — then lower to the
//! [`relax_vm::Executable`] instruction form, on which the second-stage
//! passes run. Every pass implements [`ModulePass`] or [`ExecPass`] and is
//! driven by a [`PassManager`] that provides per-pass timing
//! ([`CompileReport`]), inter-pass invariant checking ([`VerifyLevel`]),
//! and before/after IR dumping (`RELAX_DUMP_IR=<glob>` or a programmatic
//! [`DumpSink`]); the [`Fixpoint`] combinator iterates pass groups to
//! quiescence:
//!
//! | Paper section | Pass | Function | Stage |
//! |---|---|---|---|
//! | §3.1 purity cleanup | [`ConstFold`] | [`fold_constants`] | module |
//! | §3.1 purity cleanup | [`Cse`] | [`common_subexpr_elimination`] | module |
//! | §3.1 purity cleanup | [`Dce`] | [`dead_code_elimination`] | module |
//! | §4.6 partial library lowering | [`DispatchLibrary`] | [`dispatch_library`] | module |
//! | §4.7 operator legalization | [`Legalize`] | [`legalize_module`] | module |
//! | §4.2 analysis feedback (Alg. 1) | [`AnnotatePatterns`] | [`annotate_compute_patterns`] | module |
//! | §4.2 FuseOps (Alg. 2) | [`FuseOps`] | [`fuse_ops`] | module |
//! | §4.2 FuseTensorIR | [`FuseTensorIr`] | [`fuse_tensor_ir`] | module |
//! | §4.4 workspace lifting | [`WorkspaceLift`] | [`lift_tir_workspaces`] | module |
//! | §4.7 build | *(fixed stage transition)* | [`lower_to_vm`] | — |
//! | §4.3 memory planning (Alg. 3) | [`MemoryPlan`] | [`plan_memory`] | exec |
//! | §4.5 CUDA-graph-style offload | [`GraphCapture`] | [`offload_capture`] | exec |
//!
//! [`compile`] runs the default pipeline for a [`CompileOptions`];
//! [`compile_with_report`] additionally returns the telemetry, and
//! [`compile_with_context`] accepts a caller-configured [`PassContext`]
//! (custom verification registry, verify level, dump sink). The classic
//! cleanups exploit the purity guarantee of dataflow blocks and run as a
//! [`Fixpoint`] group until none of them changes the module.

#![forbid(unsafe_code)]

mod annotate;
mod capture;
mod const_fold;
mod cse;
mod dce;
mod dispatch;
mod error;
mod fuse;
mod legalize_pass;
mod lower;
mod manager;
mod pipeline;
mod plan;
mod schedule_pass;
mod workspace;

pub use annotate::{annotate_compute_patterns, AnnotatePatterns};
pub use capture::{offload_capture, GraphCapture};
pub use const_fold::{fold_constants, ConstFold};
pub use cse::{common_subexpr_elimination, Cse};
pub use dce::{dead_code_elimination, Dce};
pub use dispatch::{dispatch_library, DispatchLibrary, DispatchRules};
pub use error::PassError;
pub use fuse::{fuse_ops, fuse_tensor_ir, FuseOps, FuseTensorIr};
pub use legalize_pass::{legalize_module, Legalize};
pub use lower::lower_to_vm;
pub use manager::{
    CompileReport, DumpEvent, DumpSink, ExecPass, Fixpoint, FixpointRecord, ModulePass,
    PassContext, PassManager, PassRecord, PassStage, VerifyLevel, FIXPOINT_DEFAULT_CAP,
};
pub use pipeline::{
    compile, compile_with_context, compile_with_report, default_manager, CompileOptions,
};
pub use plan::{plan_memory, MemoryPlan};
pub use schedule_pass::ScheduleKernels;
pub use workspace::{lift_tir_workspaces, WorkspaceLift};
