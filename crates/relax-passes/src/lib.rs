//! Cross-level optimization passes and the fixed-order compilation
//! pipeline (§4).
//!
//! The passes operate on the cross-level [`relax_core::IRModule`] — graph
//! functions and tensor programs together — and finally lower to the
//! [`relax_vm::Executable`] instruction form, on which the memory-planning
//! (Algorithm 3) and graph-capture (§4.5) passes run:
//!
//! | Paper section | Pass |
//! |---|---|
//! | §4.6 partial library lowering | [`dispatch_library`] |
//! | §4.7 operator legalization | [`legalize_module`] |
//! | §4.2 analysis feedback (Alg. 1) | [`annotate_compute_patterns`] |
//! | §4.2 FuseOps (Alg. 2) | [`fuse_ops`] |
//! | §4.2 FuseTensorIR | [`fuse_tensor_ir`] |
//! | §4.4 workspace lifting | [`lift_tir_workspaces`] |
//! | §4.3 memory planning (Alg. 3) | [`plan_memory`] |
//! | §4.5 CUDA-graph-style offload | [`offload_capture`] |
//! | §4.7 build | [`lower_to_vm`], [`compile`] |
//!
//! Classic graph cleanups ([`dead_code_elimination`],
//! [`common_subexpr_elimination`], [`fold_constants`])
//! exploit the purity guarantee of dataflow blocks.

#![forbid(unsafe_code)]

mod annotate;
mod capture;
mod const_fold;
mod cse;
mod dce;
mod dispatch;
mod error;
mod fuse;
mod legalize_pass;
mod lower;
mod pipeline;
mod plan;
mod workspace;

pub use annotate::annotate_compute_patterns;
pub use capture::offload_capture;
pub use const_fold::fold_constants;
pub use cse::common_subexpr_elimination;
pub use dce::dead_code_elimination;
pub use dispatch::{dispatch_library, DispatchRules};
pub use error::PassError;
pub use fuse::{fuse_ops, fuse_tensor_ir};
pub use legalize_pass::legalize_module;
pub use lower::lower_to_vm;
pub use pipeline::{compile, CompileOptions};
pub use plan::plan_memory;
pub use workspace::lift_tir_workspaces;
