//! Analysis feedback (§4.2, Algorithm 1 applied module-wide): classify
//! every tensor program and record the result as a function attribute that
//! graph-level fusion reads.

use relax_core::IRModule;
use relax_tir::analysis;

/// Attribute key under which the compute pattern is recorded.
pub const COMPUTE_PATTERN_ATTR: &str = "compute_pattern";

/// Annotates every tensor program in the module with its compute pattern.
/// Returns the number of programs whose recorded pattern changed (newly
/// annotated or reclassified).
///
/// This is the *analysis feedback* optimization pattern: instead of
/// manually annotating properties on every high-level operator, the
/// compiler derives them from the loop structure of the tensor programs —
/// which also covers customized programs (like quantization decode) that
/// have no graph-level operator at all.
pub fn annotate_compute_patterns(module: &mut IRModule) -> usize {
    let names: Vec<String> = module.tir_funcs().map(|(n, _)| n.clone()).collect();
    let mut updated = 0;
    for name in names {
        let func = module.tir_func(&name).expect("name just listed").clone();
        let kind = analysis::pattern_kind(&func).to_string();
        if func.attr(COMPUTE_PATTERN_ATTR) == Some(kind.as_str()) {
            continue;
        }
        module.set_tir_func(name, func.with_attr(COMPUTE_PATTERN_ATTR, kind));
        updated += 1;
    }
    updated
}

/// [`crate::ModulePass`] adapter for [`annotate_compute_patterns`].
#[derive(Debug, Default, Clone, Copy)]
pub struct AnnotatePatterns;

impl crate::ModulePass for AnnotatePatterns {
    fn name(&self) -> &str {
        "annotate_patterns"
    }

    fn run_on_module(
        &mut self,
        module: &mut IRModule,
        _ctx: &mut crate::PassContext,
    ) -> Result<bool, crate::PassError> {
        Ok(annotate_compute_patterns(module) > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relax_arith::{DataType, Var};
    use relax_tir::{grid, Buffer, PrimFunc, Stmt, TirExpr};

    #[test]
    fn patterns_recorded_as_attrs() {
        let n = Var::new("n");
        let x = Buffer::new("X", vec![n.clone().into()], DataType::F32);
        let y = Buffer::new("Y", vec![n.clone().into()], DataType::F32);
        let (iv, nest) = grid(&[("i", n.into())]);
        let body = nest.build(Stmt::store(
            &y,
            vec![iv[0].clone().into()],
            TirExpr::Exp(Box::new(TirExpr::load(&x, vec![iv[0].clone().into()]))),
        ));
        let mut m = IRModule::new();
        m.add_tir_func(PrimFunc::new("exp", vec![x, y], 1, body));
        annotate_compute_patterns(&mut m);
        assert_eq!(
            m.tir_func("exp").unwrap().attr(COMPUTE_PATTERN_ATTR),
            Some("ElementWise")
        );
    }
}
