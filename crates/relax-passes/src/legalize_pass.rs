//! Operator legalization (§4.7): lower every high-level operator call to
//! `call_tir` of a generated tensor program.

use relax_core::{deduce, legalize, Expr, IRModule, LegalizeError, Op};

use crate::error::PassError;

/// Lowers all graph-level operator calls in the module to `call_tir`.
/// Returns the number of call sites legalized.
///
/// Data-dependent operators with no loop-level implementation
/// ([`Op::Unique`]) are left in place; [`crate::lower_to_vm`] lowers them
/// to runtime builtins. Calls already lowered (e.g. partial library
/// dispatch that ran earlier) are untouched — this composability is the
/// point of partial lowering.
///
/// # Errors
///
/// Fails when a tensor program cannot be generated (coarse shapes reaching
/// an operator that needs them).
pub fn legalize_module(module: &mut IRModule) -> Result<usize, PassError> {
    let mut legalized = 0;
    for fname in module.function_names() {
        let mut func = match module.function(&fname) {
            Some(f) => f.clone(),
            None => continue,
        };
        let mut changed = false;
        for block_idx in 0..func.blocks.len() {
            for binding_idx in 0..func.blocks[block_idx].bindings.len() {
                let value = func.blocks[block_idx].bindings[binding_idx].value.clone();
                let Expr::CallOp { op, args, attrs } = value else {
                    continue;
                };
                if op == Op::Unique {
                    continue;
                }
                // Deduce argument annotations against the current module.
                let mut arg_sinfos = Vec::with_capacity(args.len());
                for a in &args {
                    arg_sinfos.push(deduce(a, module)?);
                }
                let prim = match legalize(op, &attrs, &arg_sinfos, op.short_name()) {
                    Ok(p) => p,
                    Err(LegalizeError::Unsupported { .. }) => continue,
                    Err(e) => return Err(e.into()),
                };
                let tir_name = module.add_tir_func(prim);
                // Tensor-valued arguments only: shape values are baked into
                // the generated program.
                let tensor_args: Vec<Expr> = args
                    .iter()
                    .filter(|a| !matches!(a, Expr::ShapeValue(_) | Expr::PrimValue(_)))
                    .cloned()
                    .collect();
                let binding = &mut func.blocks[block_idx].bindings[binding_idx];
                let out_sinfo = binding.var.struct_info().clone();
                // Pass the symbolic dimensions of the output as extra
                // symbolic arguments (Figure 4).
                let mut sym_args: Vec<relax_arith::PrimExpr> = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for v in out_sinfo.free_symbolic_vars() {
                    if seen.insert(v.clone()) {
                        sym_args.push(v.into());
                    }
                }
                sym_args.sort_by_key(|e| e.to_string());
                binding.value = Expr::CallTir {
                    func: tir_name,
                    args: tensor_args,
                    out_sinfo,
                    sym_args,
                };
                changed = true;
                legalized += 1;
            }
        }
        if changed {
            module.add_function(fname, func);
        }
    }
    Ok(legalized)
}

/// [`crate::ModulePass`] adapter for [`legalize_module`].
#[derive(Debug, Default, Clone, Copy)]
pub struct Legalize;

impl crate::ModulePass for Legalize {
    fn name(&self) -> &str {
        "legalize"
    }

    fn run_on_module(
        &mut self,
        module: &mut IRModule,
        _ctx: &mut crate::PassContext,
    ) -> Result<bool, crate::PassError> {
        Ok(legalize_module(module)? > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relax_arith::Var as SV;
    use relax_core::{assert_well_formed, BlockBuilder, DataType, StructInfo};

    #[test]
    fn ops_become_call_tir() {
        let mut bb = BlockBuilder::new();
        let n = SV::new("n");
        let p = bb.begin_function(
            "main",
            vec![
                (
                    "x".into(),
                    StructInfo::tensor(vec![n.clone().into(), 128.into()], DataType::F32),
                ),
                (
                    "w".into(),
                    StructInfo::tensor(vec![128.into(), 256.into()], DataType::F32),
                ),
            ],
        );
        bb.begin_dataflow();
        let mm = bb
            .emit_op(Op::Matmul, &[p[0].clone(), p[1].clone()])
            .unwrap();
        let out = bb
            .emit_output(Expr::op_call(Op::Relu, vec![mm.into()]))
            .unwrap();
        bb.end_dataflow();
        bb.finish_function(out.into(), None).unwrap();
        let mut m = bb.finish();
        legalize_module(&mut m).unwrap();
        let f = m.function("main").unwrap();
        for b in f.bindings() {
            assert!(matches!(b.value, Expr::CallTir { .. }));
        }
        assert!(m.tir_func("matmul").is_some());
        assert!(m.tir_func("relu").is_some());
        assert!(assert_well_formed(&m).is_ok());
        // Output annotations preserved through lowering.
        let text = m.to_string();
        assert!(text.contains("call_tir(matmul"));
    }

    #[test]
    fn unique_is_left_for_the_runtime() {
        let mut bb = BlockBuilder::new();
        let p = bb.begin_function(
            "main",
            vec![(
                "x".into(),
                StructInfo::tensor(vec![8.into()], DataType::F32),
            )],
        );
        let u = bb.emit_op(Op::Unique, &[p[0].clone()]).unwrap();
        bb.finish_function(u.into(), None).unwrap();
        let mut m = bb.finish();
        legalize_module(&mut m).unwrap();
        let f = m.function("main").unwrap();
        let b = f.bindings().next().unwrap();
        assert!(matches!(b.value, Expr::CallOp { op: Op::Unique, .. }));
    }
}
