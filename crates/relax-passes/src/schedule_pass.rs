//! Exec-stage kernel scheduling: opts lowered tensor programs into the
//! plan compiler's macro-op (superinstruction) recognition.
//!
//! The schedule layer itself lives in `relax_tir::schedule` — TensorIR-
//! style `tile` / `reorder` / `unroll` / `cache_block` primitives with
//! bitwise-equality legality proofs. This pass is the *pipeline* entry
//! point: after lowering, it walks every tensor program attached to the
//! executable and applies [`relax_tir::schedule::auto_schedule`], which
//! detects the canonical reduction nest (the dot-product pattern of
//! matmul / attention scores) and stamps the `relax.schedule` attribute.
//! Shape-specialized plan compilation then emits the cache-blocked
//! matmul superinstruction and fuses elementwise epilogues into its row
//! loop — see `relax_tir::plan`.
//!
//! Scheduling never changes results: macro-op execution is proven
//! bitwise equal to the scalar tape (same per-cell rounding sequence),
//! and launches whose storage bindings break the proof (aliasing,
//! integer views) fall back to the preserved scalar body. The pass is
//! gated by [`CompileOptions::kernel_schedule`](crate::CompileOptions)
//! so the ablation can measure it like every other bar.

use relax_tir::schedule::auto_schedule;
use relax_vm::Executable;

use crate::error::PassError;
use crate::manager::{ExecPass, PassContext};

/// Exec pass marking schedulable tensor programs for macro-op plan
/// compilation.
#[derive(Debug, Default)]
pub struct ScheduleKernels;

impl ExecPass for ScheduleKernels {
    fn name(&self) -> &str {
        "schedule_kernels"
    }

    fn run_on_exec(
        &mut self,
        exec: &mut Executable,
        _ctx: &mut PassContext,
    ) -> Result<bool, PassError> {
        let mut changed = false;
        let scheduled: Vec<(String, relax_tir::PrimFunc)> = exec
            .tir_funcs
            .iter()
            .filter_map(|(name, func)| auto_schedule(func).map(|f| (name.clone(), f)))
            .collect();
        for (name, func) in scheduled {
            exec.tir_funcs.insert(name, func);
            changed = true;
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_is_idempotent() {
        // Second application finds every schedulable function already
        // stamped and reports no change.
        let mut exec = Executable::default();
        let mut ctx = PassContext::new();
        let mut pass = ScheduleKernels;
        assert!(!pass.run_on_exec(&mut exec, &mut ctx).unwrap());
    }
}
