//! Dynamic shape–aware operator fusion (§4.2): `FuseOps` (Algorithm 2)
//! groups tensor-program calls into subgraph functions using the compute
//! patterns from analysis feedback, and `FuseTensorIR` merges each
//! subgraph's tensor programs into a single loop-level function.

use std::collections::{BTreeSet, HashMap, HashSet};

use relax_arith::{PrimExpr, Var as SymVar};
use relax_core::{
    Binding, BindingBlock, BlockKind, Expr, Function, IRModule, OpAttrs, StructInfo, Var,
};
use relax_tir::analysis::PatternKind;
use relax_tir::transform::{merge_calls, InlineCall};
use relax_tir::Buffer;

use crate::annotate::COMPUTE_PATTERN_ATTR;
use crate::error::PassError;

/// Attribute marking subgraph functions produced by `FuseOps`.
pub const PRIMITIVE_ATTR: &str = "primitive";

fn kind_of(module: &IRModule, expr: &Expr) -> Option<PatternKind> {
    let Expr::CallTir { func, .. } = expr else {
        return None;
    };
    module
        .tir_func(func)?
        .attr(COMPUTE_PATTERN_ATTR)?
        .parse()
        .ok()
}

fn is_heavy(kind: PatternKind) -> bool {
    matches!(
        kind,
        PatternKind::OutputEwiseFusible | PatternKind::Reduction
    )
}

struct UnionFind {
    parent: Vec<usize>,
    heavy: Vec<bool>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            heavy: vec![false; n],
        }
    }
    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let heavy = self.heavy[ra] || self.heavy[rb];
            self.parent[ra] = rb;
            self.heavy[rb] = heavy;
        }
    }
}

/// `FuseOps` (Algorithm 2): groups fusible `call_tir` bindings into new
/// subgraph functions and replaces them with subgraph calls, preserving
/// symbolic shapes by passing extra shape parameters where needed (Figure
/// 8). Returns the number of subgraph functions created.
pub fn fuse_ops(module: &mut IRModule) -> usize {
    let mut created = 0;
    for fname in module.function_names() {
        let Some(func) = module.function(&fname).cloned() else {
            continue;
        };
        if func.attrs.contains_key(PRIMITIVE_ATTR) {
            continue;
        }
        let new_func = fuse_function(module, &fname, func, &mut created);
        module.add_function(fname, new_func);
    }
    created
}

fn fuse_function(
    module: &mut IRModule,
    fname: &str,
    mut func: Function,
    created: &mut usize,
) -> Function {
    // Uses outside each block (other blocks + return) to compute outputs.
    for block_idx in 0..func.blocks.len() {
        if func.blocks[block_idx].kind != BlockKind::Dataflow {
            continue;
        }
        let bindings = func.blocks[block_idx].bindings.clone();
        let n = bindings.len();
        if n < 2 {
            continue;
        }
        // Producer map: var id -> binding index.
        let producer: HashMap<u64, usize> = bindings
            .iter()
            .enumerate()
            .map(|(i, b)| (b.var.id(), i))
            .collect();
        let kinds: Vec<Option<PatternKind>> =
            bindings.iter().map(|b| kind_of(module, &b.value)).collect();

        let mut uf = UnionFind::new(n);
        for (i, k) in kinds.iter().enumerate() {
            if let Some(k) = k {
                uf.heavy[i] = is_heavy(*k);
            }
        }
        for i in 0..n {
            let Some(ck) = kinds[i] else { continue };
            let mut deps = Vec::new();
            bindings[i].value.collect_used_vars(&mut deps);
            for d in deps {
                let Some(&j) = producer.get(&d.id()) else {
                    continue;
                };
                let Some(pk) = kinds[j] else { continue };
                if should_fuse(&mut uf, j, i, pk, ck) {
                    uf.union(j, i);
                }
            }
        }

        // Collect groups.
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..n {
            groups.entry(uf.find(i)).or_default().push(i);
        }

        // Vars used outside this block (other blocks, later bindings are
        // inside; plus the function return).
        let mut outside_uses: HashSet<u64> = HashSet::new();
        {
            let collect = |e: &Expr, out: &mut HashSet<u64>| {
                let mut vars = Vec::new();
                e.collect_used_vars(&mut vars);
                for v in vars {
                    out.insert(v.id());
                }
            };
            for (bi, block) in func.blocks.iter().enumerate() {
                if bi == block_idx {
                    continue;
                }
                for b in &block.bindings {
                    collect(&b.value, &mut outside_uses);
                }
            }
            collect(&func.ret, &mut outside_uses);
        }

        let mut remove: HashSet<usize> = HashSet::new();
        let mut replace: HashMap<usize, Expr> = HashMap::new();

        let mut group_list: Vec<Vec<usize>> =
            groups.into_values().filter(|g| g.len() >= 2).collect();
        group_list.sort_by_key(|g| g[0]);
        for members in group_list {
            let member_set: HashSet<usize> = members.iter().copied().collect();
            // Outputs: member vars used by non-members or outside.
            let mut outputs = Vec::new();
            for &i in &members {
                let vid = bindings[i].var.id();
                let mut used_outside = outside_uses.contains(&vid);
                for (j, other) in bindings.iter().enumerate() {
                    if member_set.contains(&j) {
                        continue;
                    }
                    let mut vars = Vec::new();
                    other.value.collect_used_vars(&mut vars);
                    if vars.iter().any(|v| v.id() == vid) {
                        used_outside = true;
                    }
                }
                if used_outside {
                    outputs.push(i);
                }
            }
            let last = *members.last().expect("non-empty group");
            if outputs != vec![last] {
                continue; // only single-output groups materialize
            }
            if let Some((fused_name, call)) =
                materialize_group(module, fname, &bindings, &members, created)
            {
                let _ = fused_name;
                for &i in &members {
                    if i != last {
                        remove.insert(i);
                    }
                }
                replace.insert(last, call);
            }
        }

        if remove.is_empty() && replace.is_empty() {
            continue;
        }
        let mut new_bindings = Vec::with_capacity(n);
        for (i, b) in bindings.into_iter().enumerate() {
            if remove.contains(&i) {
                continue;
            }
            if let Some(call) = replace.remove(&i) {
                new_bindings.push(Binding {
                    var: b.var,
                    value: call,
                });
            } else {
                new_bindings.push(b);
            }
        }
        func.blocks[block_idx].bindings = new_bindings;
    }
    func
}

fn should_fuse(
    uf: &mut UnionFind,
    producer: usize,
    consumer: usize,
    pk: PatternKind,
    ck: PatternKind,
) -> bool {
    let pg = uf.find(producer);
    let cg = uf.find(consumer);
    if pg == cg {
        return false;
    }
    let both_heavy = uf.heavy[pg] && uf.heavy[cg];
    if both_heavy {
        return false;
    }
    match ck {
        // Element-wise epilogues fuse behind anything fusible (matmul +
        // relu, rms_norm prologue chains, ...).
        PatternKind::ElementWise | PatternKind::Broadcast => {
            pk.is_fusible_prologue() || is_heavy(pk)
        }
        // Injective ops chain with other injective-ish ops.
        PatternKind::Injective => pk.is_fusible_prologue(),
        // Heavy consumers absorb injective prologues (decode_q4 + matmul,
        // Figure 9).
        PatternKind::OutputEwiseFusible | PatternKind::Reduction => pk.is_fusible_prologue(),
        PatternKind::Opaque => false,
    }
}

/// Builds the subgraph function for a fused group; returns the new function
/// name and the call expression to substitute for the group's final
/// binding.
fn materialize_group(
    module: &mut IRModule,
    caller: &str,
    bindings: &[Binding],
    members: &[usize],
    created: &mut usize,
) -> Option<(String, Expr)> {
    let member_set: HashSet<usize> = members.iter().copied().collect();
    let produced: HashSet<u64> = members.iter().map(|&i| bindings[i].var.id()).collect();
    let _ = member_set;

    // External inputs in order of first use.
    let mut external: Vec<Var> = Vec::new();
    let mut seen: HashSet<u64> = HashSet::new();
    for &i in members {
        let mut vars = Vec::new();
        bindings[i].value.collect_used_vars(&mut vars);
        for v in vars {
            if !produced.contains(&v.id()) && seen.insert(v.id()) {
                external.push(v);
            }
        }
    }

    // Symbolic variables needed vs bindable from tensor parameters.
    let mut needed: BTreeSet<SymVar> = BTreeSet::new();
    for &i in members {
        needed.extend(bindings[i].var.struct_info().free_symbolic_vars());
    }
    for v in &external {
        needed.extend(v.struct_info().free_symbolic_vars());
    }
    let mut bindable: HashSet<SymVar> = HashSet::new();
    for v in &external {
        if let Some(dims) = v.struct_info().tensor_dims() {
            for d in dims {
                if let Some(sv) = d.as_var() {
                    bindable.insert(sv.clone());
                }
            }
        }
    }
    let extra: Vec<SymVar> = needed
        .iter()
        .filter(|v| !bindable.contains(v))
        .cloned()
        .collect();

    // Fresh parameter variables; remap body expressions onto them.
    let mut remap: HashMap<u64, Var> = HashMap::new();
    let mut params: Vec<Var> = Vec::new();
    for v in &external {
        let p = Var::new(v.name(), v.struct_info().clone());
        remap.insert(v.id(), p.clone());
        params.push(p);
    }
    if !extra.is_empty() {
        params.push(Var::new(
            "s",
            StructInfo::shape(extra.iter().map(|v| PrimExpr::from(v.clone())).collect()),
        ));
    }

    let mut body = Vec::new();
    for &i in members {
        let b = &bindings[i];
        body.push(Binding {
            var: b.var.clone(),
            value: remap_expr(&b.value, &remap),
        });
    }
    let last_var = bindings[*members.last()?].var.clone();

    // Name: fused_<short names of callees>.
    let mut parts = vec!["fused".to_string()];
    for &i in members {
        if let Expr::CallTir { func, .. } = &bindings[i].value {
            parts.push(func.clone());
        }
    }
    let base = parts.join("_");
    let name = module.fresh_function_name(&base);

    let mut attrs = OpAttrs::new();
    attrs.insert(PRIMITIVE_ATTR.into(), "1".into());
    let fused = Function {
        params,
        blocks: vec![BindingBlock {
            kind: BlockKind::Binding,
            bindings: body,
        }],
        ret: last_var.clone().into(),
        ret_sinfo: last_var.struct_info().clone(),
        attrs,
    };
    module.add_function(name.clone(), fused);
    *created += 1;
    let _ = caller;

    let mut args: Vec<Expr> = external.into_iter().map(Expr::Var).collect();
    if !extra.is_empty() {
        args.push(Expr::ShapeValue(
            extra.into_iter().map(PrimExpr::from).collect(),
        ));
    }
    Some((name.clone(), Expr::CallGlobal { func: name, args }))
}

fn remap_expr(expr: &Expr, remap: &HashMap<u64, Var>) -> Expr {
    match expr {
        Expr::Var(v) => match remap.get(&v.id()) {
            Some(p) => Expr::Var(p.clone()),
            None => expr.clone(),
        },
        Expr::Constant(_) | Expr::ShapeValue(_) | Expr::PrimValue(_) => expr.clone(),
        Expr::Tuple(items) => Expr::Tuple(items.iter().map(|e| remap_expr(e, remap)).collect()),
        Expr::TupleGetItem(e, i) => Expr::TupleGetItem(Box::new(remap_expr(e, remap)), *i),
        Expr::CallOp { op, args, attrs } => Expr::CallOp {
            op: *op,
            args: args.iter().map(|e| remap_expr(e, remap)).collect(),
            attrs: attrs.clone(),
        },
        Expr::CallGlobal { func, args } => Expr::CallGlobal {
            func: func.clone(),
            args: args.iter().map(|e| remap_expr(e, remap)).collect(),
        },
        Expr::CallTir {
            func,
            args,
            out_sinfo,
            sym_args,
        } => Expr::CallTir {
            func: func.clone(),
            args: args.iter().map(|e| remap_expr(e, remap)).collect(),
            out_sinfo: out_sinfo.clone(),
            sym_args: sym_args.clone(),
        },
        Expr::CallDps {
            func,
            args,
            out_sinfo,
        } => Expr::CallDps {
            func: func.clone(),
            args: args.iter().map(|e| remap_expr(e, remap)).collect(),
            out_sinfo: out_sinfo.clone(),
        },
        Expr::MatchCast { value, sinfo } => Expr::MatchCast {
            value: Box::new(remap_expr(value, remap)),
            sinfo: sinfo.clone(),
        },
    }
}

/// `FuseTensorIR`: merges the tensor programs called inside each subgraph
/// function into one, and rewrites call sites from subgraph calls back to
/// `call_tir` of the merged program (the yellow step of Figure 9). Returns
/// the number of merged tensor programs.
///
/// # Errors
///
/// Propagates tensor-program merge failures.
pub fn fuse_tensor_ir(module: &mut IRModule) -> Result<usize, PassError> {
    let fused_names: Vec<String> = module
        .functions()
        .filter(|(_, f)| f.attrs.contains_key(PRIMITIVE_ATTR))
        .map(|(n, _)| n.clone())
        .collect();
    let mut merged_count = 0;
    for gname in fused_names {
        let Some(gfunc) = module.function(&gname).cloned() else {
            continue;
        };
        let Some(merged) = merge_subgraph(module, &gname, &gfunc)? else {
            continue;
        };
        let tir_name = module.add_tir_func(merged);
        // Rewrite all call sites.
        for fname in module.function_names() {
            if fname == gname {
                continue;
            }
            let Some(mut caller) = module.function(&fname).cloned() else {
                continue;
            };
            let mut changed = false;
            for block in &mut caller.blocks {
                for binding in &mut block.bindings {
                    let Expr::CallGlobal { func, args } = &binding.value else {
                        continue;
                    };
                    if func != &gname {
                        continue;
                    }
                    let mut tensor_args = Vec::new();
                    let mut sym_args = Vec::new();
                    for a in args {
                        match a {
                            Expr::ShapeValue(dims) => sym_args.extend(dims.iter().cloned()),
                            other => tensor_args.push(other.clone()),
                        }
                    }
                    binding.value = Expr::CallTir {
                        func: tir_name.clone(),
                        args: tensor_args,
                        out_sinfo: binding.var.struct_info().clone(),
                        sym_args,
                    };
                    changed = true;
                }
            }
            if changed {
                module.add_function(fname, caller);
            }
        }
        module.remove_function(&gname);
        merged_count += 1;
    }
    Ok(merged_count)
}

/// Builds the merged tensor program for one subgraph function, or `None`
/// if the subgraph contains constructs the merger does not handle.
fn merge_subgraph(
    module: &IRModule,
    gname: &str,
    gfunc: &Function,
) -> Result<Option<relax_tir::PrimFunc>, PassError> {
    let mut buffers: HashMap<u64, Buffer> = HashMap::new();
    let mut param_buffers: Vec<Buffer> = Vec::new();
    for p in &gfunc.params {
        match p.struct_info() {
            StructInfo::Tensor { .. } => {
                let Some(dims) = p.struct_info().tensor_dims() else {
                    return Ok(None);
                };
                let dtype = p
                    .struct_info()
                    .tensor_dtype()
                    .unwrap_or(relax_core::DataType::F32);
                let buf = Buffer::new(p.name(), dims.to_vec(), dtype);
                buffers.insert(p.id(), buf.clone());
                param_buffers.push(buf);
            }
            StructInfo::Shape(_) => {} // symbolic shape parameter: not a buffer
            _ => return Ok(None),
        }
    }
    let mut calls: Vec<InlineCall> = Vec::new();
    for b in gfunc.bindings() {
        let Expr::CallTir {
            func,
            args,
            out_sinfo,
            ..
        } = &b.value
        else {
            return Ok(None);
        };
        let Some(callee) = module.tir_func(func) else {
            return Ok(None);
        };
        let mut arg_bufs = Vec::new();
        for a in args {
            let Expr::Var(v) = a else { return Ok(None) };
            let Some(buf) = buffers.get(&v.id()) else {
                return Ok(None);
            };
            arg_bufs.push(buf.clone());
        }
        let Some(out_dims) = out_sinfo.tensor_dims() else {
            return Ok(None);
        };
        let out_dtype = out_sinfo
            .tensor_dtype()
            .unwrap_or(relax_core::DataType::F32);
        let out_buf = Buffer::new(b.var.name(), out_dims.to_vec(), out_dtype);
        buffers.insert(b.var.id(), out_buf.clone());
        arg_bufs.push(out_buf);
        calls.push(InlineCall {
            func: callee.clone(),
            args: arg_bufs,
        });
    }
    let Some(ret_var) = gfunc.ret.as_var() else {
        return Ok(None);
    };
    let Some(ret_buf) = buffers.get(&ret_var.id()).cloned() else {
        return Ok(None);
    };
    let mut all_params = param_buffers;
    all_params.push(ret_buf);
    let merged = merge_calls(gname, all_params, 1, &calls)?;
    Ok(Some(merged))
}

/// [`crate::ModulePass`] adapter for [`fuse_ops`] (Algorithm 2).
#[derive(Debug, Default, Clone, Copy)]
pub struct FuseOps;

impl crate::ModulePass for FuseOps {
    fn name(&self) -> &str {
        "fuse_ops"
    }

    fn run_on_module(
        &mut self,
        module: &mut IRModule,
        _ctx: &mut crate::PassContext,
    ) -> Result<bool, crate::PassError> {
        Ok(fuse_ops(module) > 0)
    }
}

/// [`crate::ModulePass`] adapter for [`fuse_tensor_ir`].
#[derive(Debug, Default, Clone, Copy)]
pub struct FuseTensorIr;

impl crate::ModulePass for FuseTensorIr {
    fn name(&self) -> &str {
        "fuse_tensor_ir"
    }

    fn run_on_module(
        &mut self,
        module: &mut IRModule,
        _ctx: &mut crate::PassContext,
    ) -> Result<bool, crate::PassError> {
        Ok(fuse_tensor_ir(module)? > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::annotate_compute_patterns;
    use crate::legalize_pass::legalize_module;
    use relax_arith::Var as SV;
    use relax_core::{assert_well_formed, BlockBuilder, DataType, Op};
    use relax_tir::{interp, NDArray};

    /// matmul -> add(bias) -> relu on symbolic batch; the classic fusion.
    fn build_module() -> IRModule {
        let mut bb = BlockBuilder::new();
        let n = SV::new("n");
        let p = bb.begin_function(
            "main",
            vec![
                (
                    "x".into(),
                    StructInfo::tensor(vec![n.into(), 8.into()], DataType::F32),
                ),
                (
                    "w".into(),
                    StructInfo::tensor(vec![8.into(), 4.into()], DataType::F32),
                ),
                (
                    "b".into(),
                    StructInfo::tensor(vec![4.into()], DataType::F32),
                ),
            ],
        );
        bb.begin_dataflow();
        let mm = bb
            .emit_op(Op::Matmul, &[p[0].clone(), p[1].clone()])
            .unwrap();
        let biased = bb.emit_op(Op::Add, &[mm, p[2].clone()]).unwrap();
        let out = bb
            .emit_output(Expr::op_call(Op::Relu, vec![biased.into()]))
            .unwrap();
        bb.end_dataflow();
        bb.finish_function(out.into(), None).unwrap();
        bb.finish()
    }

    #[test]
    fn fuse_ops_groups_matmul_epilogue() {
        let mut m = build_module();
        legalize_module(&mut m).unwrap();
        annotate_compute_patterns(&mut m);
        let groups = fuse_ops(&mut m);
        assert_eq!(groups, 1);
        assert!(assert_well_formed(&m).is_ok());
        // Caller now has a single subgraph call.
        let main = m.function("main").unwrap();
        let bindings: Vec<_> = main.bindings().collect();
        assert_eq!(bindings.len(), 1);
        assert!(matches!(&bindings[0].value, Expr::CallGlobal { .. }));
        // The fused function exists, is primitive, and contains 3 call_tirs.
        let fused_name = match &bindings[0].value {
            Expr::CallGlobal { func, .. } => func.clone(),
            _ => unreachable!(),
        };
        let fused = m.function(&fused_name).unwrap();
        assert!(fused.attrs.contains_key(PRIMITIVE_ATTR));
        assert_eq!(fused.bindings().count(), 3);
    }

    #[test]
    fn fuse_tensor_ir_produces_single_kernel_that_runs() {
        let mut m = build_module();
        legalize_module(&mut m).unwrap();
        annotate_compute_patterns(&mut m);
        fuse_ops(&mut m);
        let merged = fuse_tensor_ir(&mut m).unwrap();
        assert_eq!(merged, 1);
        assert!(assert_well_formed(&m).is_ok());
        let main = m.function("main").unwrap();
        let bindings: Vec<_> = main.bindings().collect();
        assert_eq!(bindings.len(), 1);
        let Expr::CallTir { func, args, .. } = &bindings[0].value else {
            panic!("expected call_tir after FuseTensorIR");
        };
        assert_eq!(args.len(), 3);
        // Execute the merged kernel: relu(x@w + bias).
        let prim = m.tir_func(func).unwrap().clone();
        let x =
            NDArray::from_f64(&[2, 8], DataType::F32, (0..16).map(f64::from).collect()).unwrap();
        let w = NDArray::from_f64(
            &[8, 4],
            DataType::F32,
            (0..32).map(|v| (v % 5) as f64 - 2.0).collect(),
        )
        .unwrap();
        let bias = NDArray::from_f64(&[4], DataType::F32, vec![0.5, -100.0, 0.0, 1.0]).unwrap();
        let out = NDArray::zeros(&[2, 4], DataType::F32);
        interp::run(&prim, &[x.clone(), w.clone(), bias.clone(), out.clone()]).unwrap();
        // Reference.
        let xv = x.to_f64_vec();
        let wv = w.to_f64_vec();
        let bv = bias.to_f64_vec();
        for i in 0..2 {
            for j in 0..4 {
                let mut acc = 0.0;
                for k in 0..8 {
                    acc += xv[i * 8 + k] * wv[k * 4 + j];
                }
                let expect = (acc + bv[j]).max(0.0);
                let got = out.to_f64_vec()[i * 4 + j];
                assert!((got - expect).abs() < 1e-4, "({i},{j}): {got} vs {expect}");
            }
        }
        // One intermediate became local inside the merged kernel.
        let mut locals = 0;
        prim.body().for_each_alloc(&mut |b| {
            assert_eq!(b.scope(), relax_tir::MemScope::Local);
            locals += 1;
        });
        assert_eq!(locals, 2); // matmul out + add out
    }

    #[test]
    fn opaque_programs_do_not_fuse() {
        // softmax (opaque multi-store) between two elementwise ops.
        let mut bb = BlockBuilder::new();
        let n = SV::new("n");
        let p = bb.begin_function(
            "main",
            vec![(
                "x".into(),
                StructInfo::tensor(vec![n.into(), 8.into()], DataType::F32),
            )],
        );
        bb.begin_dataflow();
        let e = bb.emit_op(Op::Exp, &[p[0].clone()]).unwrap();
        let s = bb.emit_op(Op::Softmax, &[e]).unwrap();
        let out = bb
            .emit_output(Expr::op_call(Op::Relu, vec![s.into()]))
            .unwrap();
        bb.end_dataflow();
        bb.finish_function(out.into(), None).unwrap();
        let mut m = bb.finish();
        legalize_module(&mut m).unwrap();
        annotate_compute_patterns(&mut m);
        let groups = fuse_ops(&mut m);
        assert_eq!(groups, 0);
        assert_eq!(m.function("main").unwrap().bindings().count(), 3);
    }
}
