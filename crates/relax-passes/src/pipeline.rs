//! The default optimization and lowering pipeline (§4.7, Figure 13),
//! built on the unified [`PassManager`] infrastructure.

use std::collections::HashMap;

use relax_arith::Var as SymVar;
use relax_core::IRModule;
use relax_vm::Executable;

use crate::annotate::AnnotatePatterns;
use crate::capture::GraphCapture;
use crate::const_fold::ConstFold;
use crate::cse::Cse;
use crate::dce::Dce;
use crate::dispatch::{DispatchLibrary, DispatchRules};
use crate::error::PassError;
use crate::fuse::{FuseOps, FuseTensorIr};
use crate::legalize_pass::Legalize;
use crate::manager::{CompileReport, Fixpoint, ModulePass, PassContext, PassManager};
use crate::plan::MemoryPlan;
use crate::schedule_pass::ScheduleKernels;
use crate::workspace::WorkspaceLift;

/// Options controlling the pipeline — each toggle corresponds to one bar
/// of the paper's Figure 17 ablation.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// §4.6 partial library lowering.
    pub dispatch_library: bool,
    /// Library patterns to use when dispatching.
    pub dispatch_rules: DispatchRules,
    /// §4.2 operator fusion (FuseOps + FuseTensorIR).
    pub fusion: bool,
    /// §4.3 static memory planning (Algorithm 3).
    pub memory_plan: bool,
    /// §4.5 graph capture offloading (requires a static plan to fire).
    pub graph_capture: bool,
    /// TensorIR-style kernel scheduling: marks lowered reduction nests
    /// for the plan compiler's blocked macro-op superinstructions (see
    /// `relax_tir::schedule`).
    pub kernel_schedule: bool,
    /// Declared upper bounds for symbolic shape variables (e.g. maximum
    /// context length), enabling fully static plans.
    pub shape_bounds: HashMap<SymVar, i64>,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            dispatch_library: true,
            dispatch_rules: DispatchRules::default(),
            fusion: true,
            memory_plan: true,
            graph_capture: true,
            kernel_schedule: true,
            shape_bounds: HashMap::new(),
        }
    }
}

impl CompileOptions {
    /// All optimizations off: the "w/o" baseline of the ablation study.
    pub fn baseline() -> Self {
        CompileOptions {
            dispatch_library: false,
            dispatch_rules: DispatchRules::default(),
            fusion: false,
            memory_plan: false,
            graph_capture: false,
            kernel_schedule: false,
            shape_bounds: HashMap::new(),
        }
    }

    /// Adds a shape upper bound (builder style).
    pub fn with_bound(mut self, var: SymVar, bound: i64) -> Self {
        self.shape_bounds.insert(var, bound);
        self
    }
}

/// Compiles a module end to end: partial library lowering → legalization →
/// analysis feedback → fusion → cleanup → workspace lifting → VM lowering
/// → memory planning → graph capture.
///
/// # Errors
///
/// Propagates the first pass failure.
///
/// # Examples
///
/// ```
/// use relax_core::{BlockBuilder, DataType, Expr, Op, StructInfo};
/// use relax_passes::{compile, CompileOptions};
/// use relax_vm::{Value, Vm};
/// use relax_tir::NDArray;
///
/// let mut bb = BlockBuilder::new();
/// let n = relax_arith::Var::new("n");
/// let p = bb.begin_function("main", vec![
///     ("x".into(), StructInfo::tensor(vec![n.into(), 4.into()], DataType::F32)),
/// ]);
/// bb.begin_dataflow();
/// let out = bb.emit_output(Expr::op_call(Op::Relu, vec![p[0].clone().into()]))?;
/// bb.end_dataflow();
/// bb.finish_function(out.into(), None)?;
/// let exec = compile(bb.finish(), &CompileOptions::default())?;
/// let mut vm = Vm::new(exec);
/// let x = NDArray::from_f64(&[1, 4], DataType::F32, vec![-1., 1., -2., 2.])?;
/// let y = vm.run("main", &[Value::Tensor(x)])?;
/// assert_eq!(y.as_tensor().unwrap().to_f64_vec(), vec![0., 1., 0., 2.]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compile(module: IRModule, opts: &CompileOptions) -> Result<Executable, PassError> {
    compile_with_report(module, opts).map(|(exec, _)| exec)
}

/// Like [`compile`], additionally returning the per-pass telemetry
/// collected during the run (see [`CompileReport`]).
///
/// # Errors
///
/// Propagates the first pass failure.
pub fn compile_with_report(
    module: IRModule,
    opts: &CompileOptions,
) -> Result<(Executable, CompileReport), PassError> {
    let mut ctx = PassContext::new();
    let exec = compile_with_context(module, opts, &mut ctx)?;
    Ok((exec, ctx.take_report()))
}

/// Like [`compile`], but running inside a caller-provided [`PassContext`]
/// — use this to inject a custom verification registry (matching the VM
/// the executable will run on), raise the
/// [`VerifyLevel`](crate::VerifyLevel), or attach a dump sink. Telemetry
/// accumulates into `ctx`.
///
/// # Errors
///
/// Propagates the first pass failure.
pub fn compile_with_context(
    module: IRModule,
    opts: &CompileOptions,
    ctx: &mut PassContext,
) -> Result<Executable, PassError> {
    default_manager(opts).run(module, ctx)
}

/// The cleanup trio as a fixpoint combinator: constant folding can expose
/// new common subexpressions, CSE can orphan bindings, DCE can expose
/// nothing new — iterate until quiescent.
fn cleanup_fixpoint() -> Fixpoint {
    let passes: Vec<Box<dyn ModulePass>> = vec![
        Box::new(ConstFold),
        Box::new(Cse),
        Box::new(Dce),
    ];
    Fixpoint::new("cleanup", passes)
}

/// Builds the default two-stage pipeline for `opts` — each toggle gates
/// the passes of one bar of the paper's Figure 17 ablation.
pub fn default_manager(opts: &CompileOptions) -> PassManager {
    let mut pm = PassManager::new().with_module_pass(cleanup_fixpoint());
    if opts.dispatch_library {
        pm.add_module_pass(DispatchLibrary::new(opts.dispatch_rules.clone()));
        pm.add_module_pass(cleanup_fixpoint());
    }
    pm.add_module_pass(Legalize);
    pm.add_module_pass(AnnotatePatterns);
    if opts.fusion {
        pm.add_module_pass(FuseOps);
        pm.add_module_pass(FuseTensorIr);
        pm.add_module_pass(AnnotatePatterns);
    }
    pm.add_module_pass(cleanup_fixpoint());
    pm.add_module_pass(WorkspaceLift);
    if opts.kernel_schedule {
        // Runs before plan-affecting exec passes so downstream shape
        // specialization sees the schedule attributes.
        pm.add_exec_pass(ScheduleKernels);
    }
    if opts.memory_plan {
        pm.add_exec_pass(MemoryPlan::new(opts.shape_bounds.clone()));
        if opts.graph_capture {
            // Capture applies to static and dynamic plans alike — dynamic
            // plans capture per shape signature.
            pm.add_exec_pass(GraphCapture);
        }
    }
    pm
}

#[cfg(test)]
mod tests {
    use super::*;
    use relax_core::{BlockBuilder, DataType, Expr, Op, StructInfo};
    use relax_tir::NDArray;
    use relax_vm::{Value, Vm};

    /// x @ w -> +bias -> relu -> @ w2 -> rms_norm, on symbolic batch.
    fn mlp_module() -> (IRModule, relax_arith::Var) {
        let mut bb = BlockBuilder::new();
        let n = relax_arith::Var::new("n");
        let p = bb.begin_function(
            "main",
            vec![
                (
                    "x".into(),
                    StructInfo::tensor(vec![n.clone().into(), 8.into()], DataType::F32),
                ),
                (
                    "w1".into(),
                    StructInfo::tensor(vec![8.into(), 16.into()], DataType::F32),
                ),
                (
                    "b1".into(),
                    StructInfo::tensor(vec![16.into()], DataType::F32),
                ),
                (
                    "w2".into(),
                    StructInfo::tensor(vec![16.into(), 8.into()], DataType::F32),
                ),
                (
                    "g".into(),
                    StructInfo::tensor(vec![8.into()], DataType::F32),
                ),
            ],
        );
        bb.begin_dataflow();
        let h = bb
            .emit_op(Op::Matmul, &[p[0].clone(), p[1].clone()])
            .unwrap();
        let h = bb.emit_op(Op::Add, &[h, p[2].clone()]).unwrap();
        let h = bb.emit(Expr::op_call(Op::Relu, vec![h.into()])).unwrap();
        let h = bb.emit_op(Op::Matmul, &[h, p[3].clone()]).unwrap();
        let out = bb
            .emit_output(Expr::op_call(
                Op::RmsNorm,
                vec![h.into(), p[4].clone().into()],
            ))
            .unwrap();
        bb.end_dataflow();
        bb.finish_function(out.into(), None).unwrap();
        (bb.finish(), n)
    }

    fn run_config(opts: &CompileOptions) -> (Vec<f64>, relax_vm::Telemetry) {
        let (m, _) = mlp_module();
        let exec = compile(m, opts).unwrap();
        let mut vm = Vm::new(exec);
        let x = NDArray::from_f64(
            &[2, 8],
            DataType::F32,
            (0..16).map(|v| (v as f64) / 7.0 - 1.0).collect(),
        )
        .unwrap();
        let w1 = NDArray::from_f64(
            &[8, 16],
            DataType::F32,
            (0..128).map(|v| ((v % 7) as f64) / 7.0 - 0.4).collect(),
        )
        .unwrap();
        let b1 = NDArray::from_f64(&[16], DataType::F32, vec![0.1; 16]).unwrap();
        let w2 = NDArray::from_f64(
            &[16, 8],
            DataType::F32,
            (0..128).map(|v| ((v % 5) as f64) / 5.0 - 0.3).collect(),
        )
        .unwrap();
        let g = NDArray::from_f64(&[8], DataType::F32, vec![1.0; 8]).unwrap();
        let args: Vec<Value> = [x, w1, b1, w2, g].into_iter().map(Value::Tensor).collect();
        let out = vm.run("main", &args).unwrap();
        // Run twice more so capture replays show up.
        vm.run("main", &args).unwrap();
        vm.run("main", &args).unwrap();
        (out.as_tensor().unwrap().to_f64_vec(), vm.telemetry())
    }

    #[test]
    fn all_configurations_agree_numerically() {
        let full = run_config(&CompileOptions::default());
        let baseline = run_config(&CompileOptions::baseline());
        let no_fusion = run_config(&CompileOptions {
            fusion: false,
            ..CompileOptions::default()
        });
        let no_lib = run_config(&CompileOptions {
            dispatch_library: false,
            ..CompileOptions::default()
        });
        for (a, b) in full.0.iter().zip(&baseline.0) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        for (a, b) in full.0.iter().zip(&no_fusion.0) {
            assert!((a - b).abs() < 1e-3);
        }
        for (a, b) in full.0.iter().zip(&no_lib.0) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn optimizations_reduce_launches_and_memory() {
        let (_, full_tel) = run_config(&CompileOptions::default());
        let (_, base_tel) = run_config(&CompileOptions::baseline());
        // Fusion + library dispatch reduce per-run kernel launches.
        assert!(full_tel.kernel_launches < base_tel.kernel_launches);
        // Baseline uses the pool; optimized path uses planned storage.
        assert!(base_tel.pool.footprint > 0);
        assert!(full_tel.planned_bytes > 0);
        // Graph capture fired and replayed on later runs.
        assert!(full_tel.captures >= 1);
        assert!(full_tel.replays >= 1);
    }

    #[test]
    fn bounds_produce_static_plans() {
        let (m, n) = mlp_module();
        let opts = CompileOptions::default().with_bound(n, 64);
        let exec = compile(m, &opts).unwrap();
        for f in exec.funcs.values() {
            for i in &f.instrs {
                if let relax_vm::Instr::AllocStorage { bytes, .. } = i {
                    assert!(bytes.is_const());
                }
            }
        }
    }
}
