//! Constant folding by partial lowering: a constant-argument operator call
//! is legalized to a tensor program and *executed at compile time* — a
//! small demonstration of the cross-level abstraction (the compiler runs
//! the same loop-level code the runtime would).

use relax_core::{deduce, legalize, Expr, IRModule, LegalizeError, Op};
use relax_tir::{interp, NDArray};

/// Folds operator calls whose arguments are all constants. Returns the
/// number of bindings folded.
pub fn fold_constants(module: &mut IRModule) -> usize {
    let mut folded = 0;
    for fname in module.function_names() {
        let Some(mut func) = module.function(&fname).cloned() else {
            continue;
        };
        let mut changed = false;
        for block in &mut func.blocks {
            for binding in &mut block.bindings {
                let Expr::CallOp { op, args, attrs } = &binding.value else {
                    continue;
                };
                if *op == Op::Unique {
                    continue;
                }
                let consts: Option<Vec<NDArray>> = args
                    .iter()
                    .map(|a| match a {
                        Expr::Constant(c) => Some(c.clone()),
                        _ => None,
                    })
                    .collect();
                let Some(consts) = consts else { continue };
                if consts.is_empty() {
                    continue;
                }
                // Compute the static output shape.
                let Ok(out_sinfo) = deduce(&binding.value, module) else {
                    continue;
                };
                let Some(dims) = out_sinfo.tensor_dims() else {
                    continue;
                };
                let concrete: Option<Vec<usize>> = dims
                    .iter()
                    .map(|d| d.as_int().map(|v| v as usize))
                    .collect();
                let Some(concrete) = concrete else { continue };
                let dtype = out_sinfo
                    .tensor_dtype()
                    .unwrap_or(relax_core::DataType::F32);
                // Legalize and execute at compile time.
                let arg_sinfos: Vec<_> =
                    args.iter().filter_map(|a| deduce(a, module).ok()).collect();
                let prim = match legalize(*op, attrs, &arg_sinfos, "fold") {
                    Ok(p) => p,
                    Err(LegalizeError::Unsupported { .. } | LegalizeError::CoarseShape { .. }) => {
                        continue
                    }
                    Err(_) => continue,
                };
                let out = NDArray::zeros(&concrete, dtype);
                let mut all: Vec<NDArray> = consts;
                all.push(out.clone());
                if interp::run(&prim, &all).is_err() {
                    continue;
                }
                binding.value = Expr::Constant(out);
                folded += 1;
                changed = true;
            }
        }
        if changed {
            module.add_function(fname, func);
        }
    }
    folded
}

/// [`crate::ModulePass`] adapter for [`fold_constants`].
#[derive(Debug, Default, Clone, Copy)]
pub struct ConstFold;

impl crate::ModulePass for ConstFold {
    fn name(&self) -> &str {
        "const_fold"
    }

    fn run_on_module(
        &mut self,
        module: &mut IRModule,
        _ctx: &mut crate::PassContext,
    ) -> Result<bool, crate::PassError> {
        Ok(fold_constants(module) > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relax_core::{BlockBuilder, DataType, StructInfo};

    #[test]
    fn constant_add_folds_to_a_constant() {
        let mut bb = BlockBuilder::new();
        let _p = bb.begin_function(
            "main",
            vec![(
                "x".into(),
                StructInfo::tensor(vec![2.into()], DataType::F32),
            )],
        );
        let c1 = NDArray::from_f64(&[2], DataType::F32, vec![1.0, 2.0]).unwrap();
        let c2 = NDArray::from_f64(&[2], DataType::F32, vec![10.0, 20.0]).unwrap();
        let sum = bb
            .emit(Expr::op_call(
                Op::Add,
                vec![Expr::Constant(c1), Expr::Constant(c2)],
            ))
            .unwrap();
        bb.finish_function(sum.into(), None).unwrap();
        let mut m = bb.finish();
        assert_eq!(fold_constants(&mut m), 1);
        let f = m.function("main").unwrap();
        let b = f.bindings().next().unwrap();
        match &b.value {
            Expr::Constant(c) => assert_eq!(c.to_f64_vec(), vec![11.0, 22.0]),
            other => panic!("expected folded constant, got {other:?}"),
        }
    }

    #[test]
    fn non_constant_args_are_untouched() {
        let mut bb = BlockBuilder::new();
        let p = bb.begin_function(
            "main",
            vec![(
                "x".into(),
                StructInfo::tensor(vec![2.into()], DataType::F32),
            )],
        );
        let out = bb.emit_op(Op::Relu, &[p[0].clone()]).unwrap();
        bb.finish_function(out.into(), None).unwrap();
        let mut m = bb.finish();
        assert_eq!(fold_constants(&mut m), 0);
    }
}
