//! Partial library lowering (§4.6): pattern-match graph regions and
//! replace them with `call_dps_library` calls into vendor kernels.
//!
//! Registered "(subgraph pattern, library function)" pairs include single
//! operators (matmul → `cublas.matmul`, rms_norm → `cutlass.rms_norm`) and
//! the matmul-with-epilogue fusion pattern (matmul + relu →
//! `cublas.matmul_relu`). The pass lowers *part* of the program and leaves
//! the rest for later passes — composability with code generation is the
//! point.

use std::collections::{HashMap, HashSet};

use relax_core::{Expr, IRModule, Op};

/// Which library patterns to apply.
#[derive(Debug, Clone)]
pub struct DispatchRules {
    /// Lower `matmul` to `cublas.matmul`.
    pub matmul: bool,
    /// Lower `rms_norm` to `cutlass.rms_norm`.
    pub rms_norm: bool,
    /// Lower `matmul` followed by `relu` to the fused epilogue kernel.
    pub matmul_epilogue: bool,
    /// Extra user-registered single-operator patterns:
    /// `(operator, library name)`.
    pub custom: Vec<(Op, String)>,
}

impl Default for DispatchRules {
    fn default() -> Self {
        DispatchRules {
            matmul: true,
            rms_norm: true,
            matmul_epilogue: true,
            custom: Vec::new(),
        }
    }
}

/// Applies partial library lowering; returns the number of call sites
/// dispatched.
pub fn dispatch_library(module: &mut IRModule, rules: &DispatchRules) -> usize {
    let mut dispatched = 0;
    for fname in module.function_names() {
        let Some(mut func) = module.function(&fname).cloned() else {
            continue;
        };
        // Count variable uses to validate single-use fusion of epilogues.
        let mut uses: HashMap<u64, usize> = HashMap::new();
        let mut count = |e: &Expr| {
            let mut vars = Vec::new();
            e.collect_used_vars(&mut vars);
            for v in vars {
                *uses.entry(v.id()).or_insert(0) += 1;
            }
        };
        for b in func.bindings() {
            count(&b.value);
        }
        count(&func.ret);

        let mut changed = false;
        for block in &mut func.blocks {
            // Bindings consumed into an epilogue pattern: now dead, not
            // dispatched individually (DCE removes them).
            let mut consumed: HashSet<usize> = HashSet::new();
            // Epilogue pattern first: matmul at i, relu at j > i consuming it.
            if rules.matmul_epilogue {
                let n = block.bindings.len();
                for j in 0..n {
                    let Expr::CallOp {
                        op: Op::Relu,
                        args: relu_args,
                        ..
                    } = &block.bindings[j].value
                    else {
                        continue;
                    };
                    let Some(src) = relu_args.first().and_then(Expr::as_var) else {
                        continue;
                    };
                    if uses.get(&src.id()).copied().unwrap_or(0) != 1 {
                        continue;
                    }
                    let Some(i) = block.bindings[..j]
                        .iter()
                        .position(|b| b.var.id() == src.id())
                    else {
                        continue;
                    };
                    let Expr::CallOp {
                        op: Op::Matmul,
                        args: mm_args,
                        ..
                    } = &block.bindings[i].value
                    else {
                        continue;
                    };
                    let out_sinfo = block.bindings[j].var.struct_info().clone();
                    block.bindings[j].value = Expr::CallDps {
                        func: "cublas.matmul_relu".into(),
                        args: mm_args.clone(),
                        out_sinfo,
                    };
                    // The matmul binding becomes dead; DCE removes it.
                    consumed.insert(i);
                    dispatched += 1;
                    changed = true;
                }
            }
            for (bi, binding) in block.bindings.iter_mut().enumerate() {
                if consumed.contains(&bi) {
                    continue;
                }
                let Expr::CallOp { op, args, .. } = &binding.value else {
                    continue;
                };
                let lib = if *op == Op::Matmul && rules.matmul {
                    Some("cublas.matmul".to_string())
                } else if *op == Op::RmsNorm && rules.rms_norm {
                    Some("cutlass.rms_norm".to_string())
                } else {
                    rules
                        .custom
                        .iter()
                        .find(|(o, _)| o == op)
                        .map(|(_, name)| name.clone())
                };
                let Some(lib) = lib else { continue };
                binding.value = Expr::CallDps {
                    func: lib,
                    args: args.clone(),
                    out_sinfo: binding.var.struct_info().clone(),
                };
                dispatched += 1;
                changed = true;
            }
        }
        if changed {
            module.add_function(fname, func);
        }
    }
    dispatched
}

/// [`crate::ModulePass`] adapter for [`dispatch_library`] with a fixed
/// rule set.
#[derive(Debug, Clone, Default)]
pub struct DispatchLibrary {
    rules: DispatchRules,
}

impl DispatchLibrary {
    /// A dispatch pass applying `rules`.
    pub fn new(rules: DispatchRules) -> Self {
        DispatchLibrary { rules }
    }
}

impl crate::ModulePass for DispatchLibrary {
    fn name(&self) -> &str {
        "dispatch_library"
    }

    fn run_on_module(
        &mut self,
        module: &mut IRModule,
        _ctx: &mut crate::PassContext,
    ) -> Result<bool, crate::PassError> {
        Ok(dispatch_library(module, &self.rules) > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dce::dead_code_elimination;
    use relax_arith::Var as SV;
    use relax_core::{BlockBuilder, DataType, StructInfo};

    fn mm_relu_module() -> IRModule {
        let mut bb = BlockBuilder::new();
        let n = SV::new("n");
        let p = bb.begin_function(
            "main",
            vec![
                (
                    "x".into(),
                    StructInfo::tensor(vec![n.into(), 128.into()], DataType::F32),
                ),
                (
                    "w".into(),
                    StructInfo::tensor(vec![128.into(), 256.into()], DataType::F32),
                ),
            ],
        );
        bb.begin_dataflow();
        let mm = bb
            .emit_op(Op::Matmul, &[p[0].clone(), p[1].clone()])
            .unwrap();
        let out = bb
            .emit_output(Expr::op_call(Op::Relu, vec![mm.into()]))
            .unwrap();
        bb.end_dataflow();
        bb.finish_function(out.into(), None).unwrap();
        bb.finish()
    }

    #[test]
    fn epilogue_pattern_wins_over_single_op() {
        let mut m = mm_relu_module();
        let n = dispatch_library(&mut m, &DispatchRules::default());
        assert_eq!(n, 1);
        dead_code_elimination(&mut m);
        let f = m.function("main").unwrap();
        let bindings: Vec<_> = f.bindings().collect();
        assert_eq!(bindings.len(), 1);
        match &bindings[0].value {
            Expr::CallDps { func, args, .. } => {
                assert_eq!(func, "cublas.matmul_relu");
                assert_eq!(args.len(), 2);
            }
            other => panic!("expected CallDps, got {other:?}"),
        }
    }

    #[test]
    fn single_op_dispatch_without_epilogue_rule() {
        let mut m = mm_relu_module();
        let rules = DispatchRules {
            matmul_epilogue: false,
            ..DispatchRules::default()
        };
        let n = dispatch_library(&mut m, &rules);
        assert_eq!(n, 1); // just the matmul; relu stays an op
        let f = m.function("main").unwrap();
        let kinds: Vec<bool> = f
            .bindings()
            .map(|b| matches!(b.value, Expr::CallDps { .. }))
            .collect();
        assert_eq!(kinds, vec![true, false]);
    }

    #[test]
    fn disabled_rules_do_nothing() {
        let mut m = mm_relu_module();
        let rules = DispatchRules {
            matmul: false,
            rms_norm: false,
            matmul_epilogue: false,
            custom: vec![],
        };
        assert_eq!(dispatch_library(&mut m, &rules), 0);
    }
}
