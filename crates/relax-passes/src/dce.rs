//! Dead-code elimination over dataflow blocks.
//!
//! Because dataflow blocks are side-effect free by construction (§3.1),
//! any binding whose variable is never used can be removed without
//! changing observable behaviour — the motivating example the paper gives
//! for the dataflow-block design.

use std::collections::HashSet;

use relax_core::IRModule;

/// Removes unused bindings inside dataflow blocks. Returns the number of
/// bindings removed.
pub fn dead_code_elimination(module: &mut IRModule) -> usize {
    let mut removed = 0;
    for fname in module.function_names() {
        let Some(mut func) = module.function(&fname).cloned() else {
            continue;
        };
        // Iterate to a fixed point: removing a binding can orphan its
        // inputs.
        loop {
            let mut used: HashSet<u64> = HashSet::new();
            let mut collect = |e: &relax_core::Expr| {
                let mut vars = Vec::new();
                e.collect_used_vars(&mut vars);
                for v in vars {
                    used.insert(v.id());
                }
            };
            for b in func.bindings() {
                collect(&b.value);
            }
            collect(&func.ret);

            let mut removed_this_round = 0;
            for block in &mut func.blocks {
                if block.kind != relax_core::BlockKind::Dataflow {
                    continue;
                }
                let before = block.bindings.len();
                block.bindings.retain(|b| used.contains(&b.var.id()));
                removed_this_round += before - block.bindings.len();
            }
            removed += removed_this_round;
            if removed_this_round == 0 {
                break;
            }
        }
        module.add_function(fname, func);
    }
    removed
}

/// [`crate::ModulePass`] adapter for [`dead_code_elimination`].
#[derive(Debug, Default, Clone, Copy)]
pub struct Dce;

impl crate::ModulePass for Dce {
    fn name(&self) -> &str {
        "dce"
    }

    fn run_on_module(
        &mut self,
        module: &mut IRModule,
        _ctx: &mut crate::PassContext,
    ) -> Result<bool, crate::PassError> {
        Ok(dead_code_elimination(module) > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relax_core::{BlockBuilder, DataType, Expr, Op, StructInfo};

    #[test]
    fn unused_chains_are_removed_transitively() {
        let mut bb = BlockBuilder::new();
        let p = bb.begin_function(
            "main",
            vec![(
                "x".into(),
                StructInfo::tensor(vec![4.into()], DataType::F32),
            )],
        );
        bb.begin_dataflow();
        // dead chain: d1 -> d2 (both unused by the output)
        let d1 = bb
            .emit(Expr::op_call(Op::Exp, vec![p[0].clone().into()]))
            .unwrap();
        let _d2 = bb.emit(Expr::op_call(Op::Relu, vec![d1.into()])).unwrap();
        let out = bb
            .emit_output(Expr::op_call(Op::Relu, vec![p[0].clone().into()]))
            .unwrap();
        bb.end_dataflow();
        bb.finish_function(out.into(), None).unwrap();
        let mut m = bb.finish();
        let removed = dead_code_elimination(&mut m);
        assert_eq!(removed, 2);
        let f = m.function("main").unwrap();
        assert_eq!(f.bindings().count(), 1);
        // Idempotent.
        assert_eq!(dead_code_elimination(&mut m), 0);
    }
}
