//! The unified pass infrastructure: a two-stage [`PassManager`] driving
//! every optimization over a shared [`PassContext`].
//!
//! The pipeline used to be a hard-coded call chain; this module turns it
//! into data. Passes come in two stages matching the two IRs of the
//! compilation flow:
//!
//! - [`ModulePass`]: rewrites the cross-level [`IRModule`] (cleanups,
//!   dispatch, legalization, fusion, workspace lifting).
//! - [`ExecPass`]: rewrites the lowered [`Executable`] (memory planning,
//!   graph capture).
//!
//! Between the stages the manager runs the fixed lowering step
//! ([`crate::lower_to_vm`]). Around every pass it provides, via the
//! [`PassContext`]:
//!
//! - **Telemetry**: per-pass wall time and a changed-the-IR bit, collected
//!   into a [`CompileReport`].
//! - **Invariant checking**: `relax_core::assert_well_formed` after module
//!   passes and `relax_vm::verify` after exec passes, gated by
//!   [`VerifyLevel`] so the default build stays fast. The verifier
//!   [`relax_vm::registry::Registry`] is built once per context (and is
//!   injectable, so validation matches the VM that will actually run the
//!   executable).
//! - **IR dumping**: pretty-printed before/after snapshots of passes whose
//!   name matches the `RELAX_DUMP_IR` glob list (e.g.
//!   `RELAX_DUMP_IR='fuse*'`), sent to stderr or to a programmatic sink.
//!
//! [`Fixpoint`] composes module passes into a combinator that iterates
//! until no member reports a change (with an iteration cap), replacing the
//! old fixed number of cleanup repetitions.

use std::collections::HashMap;
use std::time::Duration;

use relax_core::IRModule;
use relax_vm::registry::Registry;
use relax_vm::Executable;

use crate::error::PassError;
use crate::workspace::LiftedWorkspaces;

/// How much invariant checking the manager performs between passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum VerifyLevel {
    /// No checking at all (trusted inputs, fastest builds).
    Off,
    /// Check at stage boundaries only: the input module must be well
    /// formed, and the executable is verified after lowering and after
    /// every exec pass. This matches the historical pipeline and is the
    /// default.
    #[default]
    Boundaries,
    /// Additionally re-check module well-formedness after every module
    /// pass — catches a pass that corrupts the IR right where it happened.
    All,
}

/// Which stage a pass (or the lowering step) ran in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassStage {
    /// Operated on the [`IRModule`].
    Module,
    /// The fixed module→executable lowering step.
    Lower,
    /// Operated on the [`Executable`].
    Exec,
}

/// Telemetry for one executed pass.
#[derive(Debug, Clone)]
pub struct PassRecord {
    /// Pass name (as reported by the pass itself).
    pub name: String,
    /// Stage the pass ran in.
    pub stage: PassStage,
    /// Wall-clock time spent inside the pass (excludes verification and
    /// dumping overhead).
    pub wall: Duration,
    /// Whether the pass reported changing the IR.
    pub changed: bool,
}

/// Telemetry for one [`Fixpoint`] combinator execution.
#[derive(Debug, Clone)]
pub struct FixpointRecord {
    /// Combinator name.
    pub name: String,
    /// Number of iterations executed (1 = already clean).
    pub iterations: usize,
    /// `false` when the iteration cap fired before quiescence.
    pub converged: bool,
}

/// Per-compilation telemetry returned by
/// [`crate::compile_with_report`]: one timed entry per executed pass, in
/// execution order, plus fixpoint convergence data.
#[derive(Debug, Clone, Default)]
pub struct CompileReport {
    /// Every executed pass, in order (fixpoint members appear once per
    /// iteration).
    pub passes: Vec<PassRecord>,
    /// One entry per executed [`Fixpoint`] combinator.
    pub fixpoints: Vec<FixpointRecord>,
    /// End-to-end wall time of the whole pipeline run.
    pub total: Duration,
}

impl CompileReport {
    /// The executed pass names, in order.
    pub fn pass_names(&self) -> Vec<&str> {
        self.passes.iter().map(|p| p.name.as_str()).collect()
    }

    /// Total time attributed to passes (as opposed to verification,
    /// dumping, and manager overhead).
    pub fn pass_time(&self) -> Duration {
        self.passes.iter().map(|p| p.wall).sum()
    }
}

impl std::fmt::Display for CompileReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "compile report ({:.3} ms total):", ms(self.total))?;
        for p in &self.passes {
            writeln!(
                f,
                "  {:<24} {:>9.3} ms  {}",
                p.name,
                ms(p.wall),
                if p.changed { "changed" } else { "-" }
            )?;
        }
        for fx in &self.fixpoints {
            writeln!(
                f,
                "  fixpoint {:<15} {} iteration(s){}",
                fx.name,
                fx.iterations,
                if fx.converged { "" } else { " (cap hit)" }
            )?;
        }
        Ok(())
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// A before/after IR snapshot emitted by the dump hooks.
#[derive(Debug, Clone)]
pub struct DumpEvent {
    /// The pass the snapshot brackets.
    pub pass: String,
    /// `"before"` or `"after"`.
    pub when: &'static str,
    /// Pretty-printed IR (module text for module passes, VM function
    /// listings for the lowering step and exec passes).
    pub text: String,
}

/// Programmatic receiver for [`DumpEvent`]s.
pub type DumpSink = Box<dyn FnMut(&DumpEvent)>;

/// Shared state threaded through every pass execution.
///
/// Owns the verification [`Registry`] (constructed once, not per
/// verification call), the dump configuration, the collected
/// [`CompileReport`], and cross-pass side data (lifted workspaces).
pub struct PassContext {
    /// Invariant-checking level.
    pub verify: VerifyLevel,
    registry: Registry,
    dump_globs: Vec<String>,
    dump_sink: Option<DumpSink>,
    report: CompileReport,
    /// Workspace buffers lifted by [`crate::lift_tir_workspaces`];
    /// consumed by the lowering step.
    pub(crate) workspaces: HashMap<String, LiftedWorkspaces>,
}

impl Default for PassContext {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for PassContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassContext")
            .field("verify", &self.verify)
            .field("registry", &self.registry)
            .field("dump_globs", &self.dump_globs)
            .field("has_sink", &self.dump_sink.is_some())
            .finish()
    }
}

impl PassContext {
    /// A context with the default registry, default verification, and the
    /// dump filter taken from the `RELAX_DUMP_IR` environment variable
    /// (comma-separated pass-name globs, `*` and `?` wildcards).
    pub fn new() -> Self {
        let dump_globs = std::env::var("RELAX_DUMP_IR")
            .map(|v| {
                v.split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            })
            .unwrap_or_default();
        PassContext {
            verify: VerifyLevel::default(),
            registry: Registry::new(),
            dump_globs,
            dump_sink: None,
            report: CompileReport::default(),
            workspaces: HashMap::new(),
        }
    }

    /// Uses a custom foreign-function registry for executable validation
    /// (pass the registry of the [`relax_vm::Vm`] that will run the
    /// executable, see [`relax_vm::Vm::with_registry`]).
    pub fn with_registry(mut self, registry: Registry) -> Self {
        self.registry = registry;
        self
    }

    /// Sets the invariant-checking level.
    pub fn with_verify_level(mut self, level: VerifyLevel) -> Self {
        self.verify = level;
        self
    }

    /// Replaces the dump filter (overrides `RELAX_DUMP_IR`).
    pub fn with_dump_globs(mut self, globs: Vec<String>) -> Self {
        self.dump_globs = globs;
        self
    }

    /// Routes dump events to `sink` instead of stderr.
    pub fn with_dump_sink(mut self, sink: DumpSink) -> Self {
        self.dump_sink = Some(sink);
        self
    }

    /// The registry used for executable validation.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The telemetry collected so far.
    pub fn report(&self) -> &CompileReport {
        &self.report
    }

    /// Takes the collected telemetry out of the context, leaving it empty.
    pub fn take_report(&mut self) -> CompileReport {
        std::mem::take(&mut self.report)
    }

    fn should_dump(&self, pass: &str) -> bool {
        self.dump_globs.iter().any(|g| glob_match(g, pass))
    }

    fn dump(&mut self, pass: &str, when: &'static str, text: String) {
        let event = DumpEvent {
            pass: pass.to_string(),
            when,
            text,
        };
        match &mut self.dump_sink {
            Some(sink) => sink(&event),
            None => eprintln!(
                "=== RELAX_DUMP_IR [{} {}] ===\n{}",
                event.pass, event.when, event.text
            ),
        }
    }

    fn record(&mut self, name: &str, stage: PassStage, wall: Duration, changed: bool) {
        self.report.passes.push(PassRecord {
            name: name.to_string(),
            stage,
            wall,
            changed,
        });
    }
}

/// Matches `pattern` against `name` with `*` (any substring) and `?`
/// (any single byte) wildcards.
pub(crate) fn glob_match(pattern: &str, name: &str) -> bool {
    fn go(p: &[u8], n: &[u8]) -> bool {
        match (p.first(), n.first()) {
            (None, None) => true,
            (Some(b'*'), _) => go(&p[1..], n) || (!n.is_empty() && go(p, &n[1..])),
            (Some(b'?'), Some(_)) => go(&p[1..], &n[1..]),
            (Some(c), Some(d)) if c == d => go(&p[1..], &n[1..]),
            _ => false,
        }
    }
    go(pattern.as_bytes(), name.as_bytes())
}

/// A pass over the cross-level [`IRModule`] (the first stage).
pub trait ModulePass {
    /// Stable pass name (used for telemetry, dumps, and verify errors).
    fn name(&self) -> &str;

    /// Rewrites the module, returning whether anything changed.
    ///
    /// # Errors
    ///
    /// Pass-specific failures, propagated as [`PassError`].
    fn run_on_module(
        &mut self,
        module: &mut IRModule,
        ctx: &mut PassContext,
    ) -> Result<bool, PassError>;

    /// `true` for combinators that delegate to member passes. Groups get
    /// no [`PassRecord`] of their own — their members are recorded
    /// individually, so a group record would double-count wall time.
    fn is_group(&self) -> bool {
        false
    }
}

/// A pass over the lowered [`Executable`] (the second stage).
pub trait ExecPass {
    /// Stable pass name (used for telemetry, dumps, and verify errors).
    fn name(&self) -> &str;

    /// Rewrites the executable, returning whether anything changed.
    ///
    /// # Errors
    ///
    /// Pass-specific failures, propagated as [`PassError`].
    fn run_on_exec(
        &mut self,
        exec: &mut Executable,
        ctx: &mut PassContext,
    ) -> Result<bool, PassError>;
}

/// Iterates a group of module passes until none of them reports a change,
/// or the iteration cap fires.
///
/// An already-clean module therefore costs exactly one iteration. Each
/// member execution gets its own [`PassRecord`]; the combinator itself
/// contributes a [`FixpointRecord`].
pub struct Fixpoint {
    name: String,
    passes: Vec<Box<dyn ModulePass>>,
    max_iterations: usize,
}

/// Default iteration cap for [`Fixpoint`] — generous: the cleanup passes
/// converge in two or three iterations on real modules.
pub const FIXPOINT_DEFAULT_CAP: usize = 10;

impl Fixpoint {
    /// A fixpoint combinator over `passes` with the default iteration cap.
    pub fn new(name: impl Into<String>, passes: Vec<Box<dyn ModulePass>>) -> Self {
        Fixpoint {
            name: name.into(),
            passes,
            max_iterations: FIXPOINT_DEFAULT_CAP,
        }
    }

    /// Overrides the iteration cap (must be ≥ 1).
    pub fn with_cap(mut self, cap: usize) -> Self {
        self.max_iterations = cap.max(1);
        self
    }
}

impl ModulePass for Fixpoint {
    fn name(&self) -> &str {
        &self.name
    }

    fn run_on_module(
        &mut self,
        module: &mut IRModule,
        ctx: &mut PassContext,
    ) -> Result<bool, PassError> {
        let mut iterations = 0;
        let mut any_changed = false;
        let mut converged = false;
        while iterations < self.max_iterations {
            iterations += 1;
            let round = iterations;
            let sp = relax_trace::span("compile", || format!("round:{}:{round}", self.name));
            let mut changed = false;
            for pass in &mut self.passes {
                changed |= run_instrumented_module_pass(pass.as_mut(), module, ctx)?;
            }
            sp.finish_with(|| relax_trace::Payload::Pass {
                pass: self.name.clone(),
                changed,
            });
            any_changed |= changed;
            if !changed {
                converged = true;
                break;
            }
        }
        ctx.report.fixpoints.push(FixpointRecord {
            name: self.name.clone(),
            iterations,
            converged,
        });
        Ok(any_changed)
    }

    fn is_group(&self) -> bool {
        true
    }
}

/// Runs one module pass with dumping, timing, telemetry, and (at
/// [`VerifyLevel::All`]) post-pass well-formedness checking.
fn run_instrumented_module_pass(
    pass: &mut dyn ModulePass,
    module: &mut IRModule,
    ctx: &mut PassContext,
) -> Result<bool, PassError> {
    let name = pass.name().to_string();
    let dumping = ctx.should_dump(&name);
    if dumping {
        let text = module.to_string();
        ctx.dump(&name, "before", text);
    }
    // The span guard is the single clock: its wall time both stamps the
    // trace and feeds the CompileReport, so the two cannot disagree.
    let group = pass.is_group();
    let sp = relax_trace::span("compile", || {
        format!("{}:{name}", if group { "group" } else { "pass" })
    });
    let changed = pass.run_on_module(module, ctx)?;
    let wall = sp.finish_with(|| relax_trace::Payload::Pass {
        pass: name.clone(),
        changed,
    });
    if !group {
        ctx.record(&name, PassStage::Module, wall, changed);
    }
    if dumping {
        let text = module.to_string();
        ctx.dump(&name, "after", text);
    }
    if ctx.verify >= VerifyLevel::All {
        relax_core::assert_well_formed(module).map_err(|error| PassError::WellFormedAfter {
            pass: name,
            error,
        })?;
    }
    Ok(changed)
}

/// Runs one exec pass with dumping, timing, telemetry, and (at
/// [`VerifyLevel::Boundaries`] and above) post-pass executable
/// verification against the context's registry.
fn run_instrumented_exec_pass(
    pass: &mut dyn ExecPass,
    exec: &mut Executable,
    ctx: &mut PassContext,
) -> Result<bool, PassError> {
    let name = pass.name().to_string();
    let dumping = ctx.should_dump(&name);
    if dumping {
        let text = exec_text(exec);
        ctx.dump(&name, "before", text);
    }
    let sp = relax_trace::span("compile", || format!("pass:{name}"));
    let changed = pass.run_on_exec(exec, ctx)?;
    let wall = sp.finish_with(|| relax_trace::Payload::Pass {
        pass: name.clone(),
        changed,
    });
    ctx.record(&name, PassStage::Exec, wall, changed);
    if dumping {
        let text = exec_text(exec);
        ctx.dump(&name, "after", text);
    }
    if ctx.verify >= VerifyLevel::Boundaries {
        relax_vm::verify(exec, ctx.registry()).map_err(|error| PassError::Verify {
            stage: name,
            error,
        })?;
    }
    Ok(changed)
}

/// Pretty-prints the VM functions of an executable for dump events.
fn exec_text(exec: &Executable) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for func in exec.funcs.values() {
        let _ = writeln!(out, "{func}");
    }
    out
}

/// A two-stage pass pipeline: module passes, the fixed lowering step,
/// exec passes.
#[derive(Default)]
pub struct PassManager {
    module_passes: Vec<Box<dyn ModulePass>>,
    exec_passes: Vec<Box<dyn ExecPass>>,
}

impl PassManager {
    /// An empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a module-stage pass (builder style).
    pub fn with_module_pass(mut self, pass: impl ModulePass + 'static) -> Self {
        self.module_passes.push(Box::new(pass));
        self
    }

    /// Appends an exec-stage pass (builder style).
    pub fn with_exec_pass(mut self, pass: impl ExecPass + 'static) -> Self {
        self.exec_passes.push(Box::new(pass));
        self
    }

    /// Appends a module-stage pass.
    pub fn add_module_pass(&mut self, pass: impl ModulePass + 'static) {
        self.module_passes.push(Box::new(pass));
    }

    /// Appends an exec-stage pass.
    pub fn add_exec_pass(&mut self, pass: impl ExecPass + 'static) {
        self.exec_passes.push(Box::new(pass));
    }

    /// The names of the registered passes, module stage then exec stage
    /// (the lowering step is implicit between them).
    pub fn pass_names(&self) -> Vec<&str> {
        self.module_passes
            .iter()
            .map(|p| p.name())
            .chain(self.exec_passes.iter().map(|p| p.name()))
            .collect()
    }

    /// Runs the full pipeline: module passes, lowering, exec passes.
    /// Telemetry accumulates into `ctx`; retrieve it with
    /// [`PassContext::take_report`].
    ///
    /// # Errors
    ///
    /// The first pass or verification failure.
    pub fn run(
        &mut self,
        module: IRModule,
        ctx: &mut PassContext,
    ) -> Result<Executable, PassError> {
        let root = relax_trace::span("compile", || "pipeline".to_string());
        let mut m = module;
        if ctx.verify >= VerifyLevel::Boundaries {
            relax_core::assert_well_formed(&m)?;
        }
        for pass in &mut self.module_passes {
            run_instrumented_module_pass(pass.as_mut(), &mut m, ctx)?;
        }

        // The fixed stage transition: lower the module to VM instructions,
        // consuming the workspace map produced by the module stage.
        let name = "lower_to_vm";
        let dumping = ctx.should_dump(name);
        if dumping {
            ctx.dump(name, "before", m.to_string());
        }
        let sp = relax_trace::span("compile", || format!("pass:{name}"));
        let workspaces = std::mem::take(&mut ctx.workspaces);
        let mut exec = crate::lower::lower_to_vm(&m, &workspaces)?;
        let wall = sp.finish_with(|| relax_trace::Payload::Pass {
            pass: name.to_string(),
            changed: true,
        });
        ctx.record(name, PassStage::Lower, wall, true);
        if dumping {
            ctx.dump(name, "after", exec_text(&exec));
        }
        if ctx.verify >= VerifyLevel::Boundaries {
            relax_vm::verify(&exec, ctx.registry()).map_err(|error| PassError::Verify {
                stage: name.to_string(),
                error,
            })?;
        }

        for pass in &mut self.exec_passes {
            run_instrumented_exec_pass(pass.as_mut(), &mut exec, ctx)?;
        }
        ctx.report.total += root.finish();
        Ok(exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_matching() {
        assert!(glob_match("fuse*", "fuse_ops"));
        assert!(glob_match("fuse*", "fuse_tensor_ir"));
        assert!(!glob_match("fuse*", "const_fold"));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("d?e", "dce"));
        assert!(!glob_match("d?e", "dice"));
        assert!(glob_match("cse", "cse"));
        assert!(!glob_match("cse", "cse2"));
        assert!(glob_match("*plan*", "memory_plan"));
    }

    #[test]
    fn verify_levels_are_ordered() {
        assert!(VerifyLevel::Off < VerifyLevel::Boundaries);
        assert!(VerifyLevel::Boundaries < VerifyLevel::All);
        assert_eq!(VerifyLevel::default(), VerifyLevel::Boundaries);
    }
}
