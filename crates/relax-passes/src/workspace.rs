//! Cross-level tensor program workspace lifting (§4.4).
//!
//! Tensor programs that allocate global-memory workspaces (e.g. a split-K
//! matmul's partial-accumulation buffer) are rewritten to take the
//! workspace as an explicit parameter; the graph level then allocates it,
//! letting it participate in global memory planning.

use std::collections::HashMap;

use relax_core::IRModule;
use relax_tir::transform::lift_workspaces;
use relax_tir::Buffer;

/// Information about the workspaces lifted out of one tensor program.
#[derive(Debug, Clone)]
pub struct LiftedWorkspaces {
    /// The workspace buffers, in parameter order (between inputs and
    /// outputs).
    pub buffers: Vec<Buffer>,
}

/// Lifts constant-size global workspaces out of every tensor program in
/// the module. Returns, per rewritten program, the lifted workspace
/// buffers; [`crate::lower_to_vm`] uses this map to emit graph-level
/// allocations at each call site.
///
/// Workspaces with symbolic sizes are left in place (the graph level could
/// not evaluate their extent in caller terms).
pub fn lift_tir_workspaces(module: &mut IRModule) -> HashMap<String, LiftedWorkspaces> {
    let mut lifted = HashMap::new();
    let names: Vec<String> = module.tir_funcs().map(|(n, _)| n.clone()).collect();
    for name in names {
        let func = module.tir_func(&name).expect("listed").clone();
        let Some((new_func, buffers)) = lift_workspaces(&func) else {
            continue;
        };
        // Only constant-size workspaces can be allocated by the caller.
        if !buffers
            .iter()
            .all(|b| b.shape().iter().all(|d| d.is_const()))
        {
            continue;
        }
        module.set_tir_func(name.clone(), new_func);
        lifted.insert(name, LiftedWorkspaces { buffers });
    }
    lifted
}

/// [`crate::ModulePass`] adapter for [`lift_tir_workspaces`]: the lifted
/// workspace map is stashed in the [`crate::PassContext`] for the
/// lowering step to consume.
#[derive(Debug, Default, Clone, Copy)]
pub struct WorkspaceLift;

impl crate::ModulePass for WorkspaceLift {
    fn name(&self) -> &str {
        "lift_workspaces"
    }

    fn run_on_module(
        &mut self,
        module: &mut IRModule,
        ctx: &mut crate::PassContext,
    ) -> Result<bool, crate::PassError> {
        let lifted = lift_tir_workspaces(module);
        let changed = !lifted.is_empty();
        ctx.workspaces = lifted;
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relax_arith::{DataType, Var};
    use relax_tir::{grid, PrimFunc, Stmt, TirExpr};

    /// A `mm_split_k`-style function with an 8 MiB global workspace
    /// (Figure 11).
    fn split_k_func() -> PrimFunc {
        let n = Var::new("n");
        let x = Buffer::new("X", vec![n.clone().into(), 16.into()], DataType::F32);
        let y = Buffer::new("Y", vec![n.clone().into(), 16.into()], DataType::F32);
        let ws = Buffer::new("workspace", vec![(8 * 1024 * 1024).into()], DataType::F32);
        let (iv, nest) = grid(&[("i", n.into()), ("j", 16.into())]);
        let copy = nest.build(Stmt::store(
            &y,
            vec![iv[0].clone().into(), iv[1].clone().into()],
            TirExpr::load(&x, vec![iv[0].clone().into(), iv[1].clone().into()]),
        ));
        let body = Stmt::Alloc {
            buffer: ws,
            body: Box::new(copy),
        };
        PrimFunc::new("mm_split_k", vec![x, y], 1, body)
    }

    #[test]
    fn constant_workspace_is_lifted() {
        let mut m = IRModule::new();
        m.add_tir_func(split_k_func());
        let lifted = lift_tir_workspaces(&mut m);
        assert_eq!(lifted.len(), 1);
        let info = &lifted["mm_split_k"];
        assert_eq!(info.buffers.len(), 1);
        let f = m.tir_func("mm_split_k").unwrap();
        // X, workspace, Y
        assert_eq!(f.params().len(), 3);
        assert_eq!(f.params()[1].name(), "workspace");
        let mut allocs = 0;
        f.body().for_each_alloc(&mut |_| allocs += 1);
        assert_eq!(allocs, 0);
    }

    #[test]
    fn symbolic_workspace_stays_internal() {
        let n = Var::new("n");
        let x = Buffer::new("X", vec![4.into()], DataType::F32);
        let y = Buffer::new("Y", vec![4.into()], DataType::F32);
        let ws = Buffer::new("workspace", vec![n.into()], DataType::F32);
        let body = Stmt::Alloc {
            buffer: ws,
            body: Box::new(Stmt::Evaluate),
        };
        let mut m = IRModule::new();
        m.add_tir_func(PrimFunc::new("f", vec![x, y], 1, body));
        let lifted = lift_tir_workspaces(&mut m);
        assert!(lifted.is_empty());
        assert_eq!(m.tir_func("f").unwrap().params().len(), 2);
    }
}
