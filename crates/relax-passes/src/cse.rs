//! Common-subexpression elimination over dataflow blocks.
//!
//! Like dead-code elimination, this relies on the purity guarantee of
//! dataflow blocks (§3.1): two bindings computing structurally identical
//! pure expressions can share one computation without changing behaviour.

use std::collections::HashMap;

use relax_core::{Expr, IRModule, Var};

/// A structural key for pure expressions; variables are keyed by identity.
fn expr_key(expr: &Expr) -> Option<String> {
    use std::fmt::Write;
    fn go(expr: &Expr, out: &mut String) -> Option<()> {
        match expr {
            Expr::Var(v) => write!(out, "v{}", v.id()).ok(),
            // Constants are interned by value elsewhere; treat each constant
            // occurrence as unique (cheap to load, rarely worth sharing).
            Expr::Constant(_) => None,
            Expr::ShapeValue(dims) => {
                out.push_str("shape(");
                for d in dims {
                    write!(out, "{d},").ok()?;
                }
                out.push(')');
                Some(())
            }
            Expr::PrimValue(e) => write!(out, "prim({e})").ok(),
            Expr::Tuple(items) => {
                out.push_str("tup(");
                for i in items {
                    go(i, out)?;
                    out.push(',');
                }
                out.push(')');
                Some(())
            }
            Expr::TupleGetItem(e, i) => {
                out.push_str("get(");
                go(e, out)?;
                write!(out, ",{i})").ok()
            }
            Expr::CallOp { op, args, attrs } => {
                write!(out, "op({}", op.name()).ok()?;
                for (k, v) in attrs {
                    write!(out, ",{k}={v}").ok()?;
                }
                out.push(';');
                for a in args {
                    go(a, out)?;
                    out.push(',');
                }
                out.push(')');
                Some(())
            }
            Expr::CallTir {
                func,
                args,
                sym_args,
                out_sinfo,
            } => {
                write!(out, "tir({func}:{out_sinfo};").ok()?;
                for a in args {
                    go(a, out)?;
                    out.push(',');
                }
                for s in sym_args {
                    write!(out, "|{s}").ok()?;
                }
                out.push(')');
                Some(())
            }
            Expr::CallDps {
                func,
                args,
                out_sinfo,
            } => {
                write!(out, "dps({func}:{out_sinfo};").ok()?;
                for a in args {
                    go(a, out)?;
                    out.push(',');
                }
                out.push(')');
                Some(())
            }
            // Subgraph calls are pure in Relax, but keep CSE local and
            // conservative: skip them and match_cast (which binds fresh
            // symbolic variables).
            Expr::CallGlobal { .. } | Expr::MatchCast { .. } => None,
        }
    }
    let mut s = String::new();
    go(expr, &mut s)?;
    Some(s)
}

fn replace_vars(expr: &Expr, map: &HashMap<u64, Var>) -> Expr {
    match expr {
        Expr::Var(v) => match map.get(&v.id()) {
            Some(r) => Expr::Var(r.clone()),
            None => expr.clone(),
        },
        Expr::Constant(_) | Expr::ShapeValue(_) | Expr::PrimValue(_) => expr.clone(),
        Expr::Tuple(items) => Expr::Tuple(items.iter().map(|e| replace_vars(e, map)).collect()),
        Expr::TupleGetItem(e, i) => Expr::TupleGetItem(Box::new(replace_vars(e, map)), *i),
        Expr::CallOp { op, args, attrs } => Expr::CallOp {
            op: *op,
            args: args.iter().map(|e| replace_vars(e, map)).collect(),
            attrs: attrs.clone(),
        },
        Expr::CallGlobal { func, args } => Expr::CallGlobal {
            func: func.clone(),
            args: args.iter().map(|e| replace_vars(e, map)).collect(),
        },
        Expr::CallTir {
            func,
            args,
            out_sinfo,
            sym_args,
        } => Expr::CallTir {
            func: func.clone(),
            args: args.iter().map(|e| replace_vars(e, map)).collect(),
            out_sinfo: out_sinfo.clone(),
            sym_args: sym_args.clone(),
        },
        Expr::CallDps {
            func,
            args,
            out_sinfo,
        } => Expr::CallDps {
            func: func.clone(),
            args: args.iter().map(|e| replace_vars(e, map)).collect(),
            out_sinfo: out_sinfo.clone(),
        },
        Expr::MatchCast { value, sinfo } => Expr::MatchCast {
            value: Box::new(replace_vars(value, map)),
            sinfo: sinfo.clone(),
        },
    }
}

/// Deduplicates identical pure computations inside each dataflow block.
/// Returns the number of bindings rewritten to reuse an earlier result.
pub fn common_subexpr_elimination(module: &mut IRModule) -> usize {
    let mut rewritten = 0;
    for fname in module.function_names() {
        let Some(mut func) = module.function(&fname).cloned() else {
            continue;
        };
        let mut changed = false;
        for block in &mut func.blocks {
            if block.kind != relax_core::BlockKind::Dataflow {
                continue;
            }
            let mut seen: HashMap<String, Var> = HashMap::new();
            let mut alias: HashMap<u64, Var> = HashMap::new();
            for binding in &mut block.bindings {
                let value = replace_vars(&binding.value, &alias);
                binding.value = value.clone();
                if let Some(key) = expr_key(&value) {
                    match seen.get(&key) {
                        Some(prev) => {
                            // Later uses of this binding go to the earlier
                            // variable; keep the binding as an alias so
                            // outputs stay valid (DCE removes it if dead).
                            alias.insert(binding.var.id(), prev.clone());
                            binding.value = Expr::Var(prev.clone());
                            rewritten += 1;
                            changed = true;
                        }
                        None => {
                            seen.insert(key, binding.var.clone());
                        }
                    }
                }
            }
        }
        if changed {
            module.add_function(fname, func);
        }
    }
    rewritten
}

/// [`crate::ModulePass`] adapter for [`common_subexpr_elimination`].
#[derive(Debug, Default, Clone, Copy)]
pub struct Cse;

impl crate::ModulePass for Cse {
    fn name(&self) -> &str {
        "cse"
    }

    fn run_on_module(
        &mut self,
        module: &mut IRModule,
        _ctx: &mut crate::PassContext,
    ) -> Result<bool, crate::PassError> {
        Ok(common_subexpr_elimination(module) > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relax_core::{BlockBuilder, DataType, Op, StructInfo};

    #[test]
    fn duplicate_computations_are_shared() {
        let mut bb = BlockBuilder::new();
        let p = bb.begin_function(
            "main",
            vec![(
                "x".into(),
                StructInfo::tensor(vec![4.into()], DataType::F32),
            )],
        );
        bb.begin_dataflow();
        let a = bb
            .emit(Expr::op_call(Op::Exp, vec![p[0].clone().into()]))
            .unwrap();
        let b = bb
            .emit(Expr::op_call(Op::Exp, vec![p[0].clone().into()]))
            .unwrap();
        let sum = bb
            .emit_output(Expr::op_call(Op::Add, vec![a.into(), b.into()]))
            .unwrap();
        bb.end_dataflow();
        bb.finish_function(sum.into(), None).unwrap();
        let mut m = bb.finish();
        assert_eq!(common_subexpr_elimination(&mut m), 1);
        crate::dead_code_elimination(&mut m);
        let f = m.function("main").unwrap();
        // exp computed once; add reads it twice.
        let exps = f
            .bindings()
            .filter(|b| matches!(&b.value, Expr::CallOp { op: Op::Exp, .. }))
            .count();
        assert_eq!(exps, 1);
        assert!(relax_core::assert_well_formed(&m).is_ok());
    }

    #[test]
    fn attrs_distinguish_computations() {
        let mut bb = BlockBuilder::new();
        let p = bb.begin_function(
            "main",
            vec![(
                "x".into(),
                StructInfo::tensor(vec![2.into(), 3.into()], DataType::F32),
            )],
        );
        bb.begin_dataflow();
        let ax0: relax_core::OpAttrs = [("axis".to_string(), "0".to_string())]
            .into_iter()
            .collect();
        let ax1: relax_core::OpAttrs = [("axis".to_string(), "1".to_string())]
            .into_iter()
            .collect();
        let a = bb
            .emit_op_attrs(Op::Sum, vec![p[0].clone().into()], ax0)
            .unwrap();
        let _b = bb
            .emit_op_attrs(Op::Sum, vec![p[0].clone().into()], ax1)
            .unwrap();
        let out = bb.emit_output(Expr::Var(a)).unwrap();
        bb.end_dataflow();
        bb.finish_function(out.into(), None).unwrap();
        let mut m = bb.finish();
        assert_eq!(common_subexpr_elimination(&mut m), 0);
    }

    #[test]
    fn match_cast_is_never_merged() {
        let mut bb = BlockBuilder::new();
        let p = bb.begin_function(
            "main",
            vec![(
                "x".into(),
                StructInfo::tensor(vec![4.into()], DataType::F32),
            )],
        );
        bb.begin_dataflow();
        let u = bb.emit_op(Op::Unique, &[p[0].clone()]).unwrap();
        let m1 = relax_arith::Var::new("m1");
        let m2 = relax_arith::Var::new("m2");
        let c1 = bb
            .emit_match_cast(
                u.clone().into(),
                StructInfo::tensor(vec![m1.into()], DataType::F32),
            )
            .unwrap();
        let _c2 = bb
            .emit_match_cast(u.into(), StructInfo::tensor(vec![m2.into()], DataType::F32))
            .unwrap();
        let out = bb.emit_output(Expr::Var(c1)).unwrap();
        bb.end_dataflow();
        bb.finish_function(out.into(), None).unwrap();
        let mut m = bb.finish();
        assert_eq!(common_subexpr_elimination(&mut m), 0);
    }
}
