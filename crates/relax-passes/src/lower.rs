//! Lowering to the virtual machine (§4.7): erase annotations, turn every
//! binding into low-level instructions, insert runtime shape population /
//! checks, and emit liveness (`Kill`) events that drive the runtime memory
//! pool — or, after [`crate::plan_memory`], static storage reuse.

use std::collections::{HashMap, HashSet};

use relax_core::{Expr, Function, IRModule, Op, ShapeDesc, StructInfo};
use relax_vm::{Executable, Instr, Reg, VmFunction};

use crate::error::PassError;
use crate::workspace::LiftedWorkspaces;

/// Lowers every graph function to VM instructions.
///
/// `workspaces` is the map produced by [`crate::lift_tir_workspaces`]:
/// call sites of those tensor programs get graph-level workspace
/// allocations inserted (the "lift allocation to graph level" rewrite of
/// Figure 11), which later participate in memory planning.
///
/// # Errors
///
/// Fails on constructs that should have been removed by earlier passes
/// (un-legalized operators other than data-dependent builtins, coarse
/// output shapes on foreign calls).
pub fn lower_to_vm(
    module: &IRModule,
    workspaces: &HashMap<String, LiftedWorkspaces>,
) -> Result<Executable, PassError> {
    let mut exec = Executable::new();
    for (name, prim) in module.tir_funcs() {
        exec.tir_funcs.insert(name.clone(), prim.clone());
    }
    let fnames = module.function_names();
    for fname in fnames {
        let func = module.function(&fname).expect("listed");
        let vmf = lower_function(&fname, func, module, workspaces, &mut exec)?;
        exec.funcs.insert(fname, vmf);
    }
    Ok(exec)
}

struct LowerCtx<'a> {
    instrs: Vec<Instr>,
    var_reg: HashMap<u64, Reg>,
    next_reg: Reg,
    exec: &'a mut Executable,
    /// Registers holding intermediate tensors we allocated (kill targets).
    allocated: HashSet<Reg>,
}

impl LowerCtx<'_> {
    fn fresh(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    /// Materializes an argument expression into a register.
    fn expr_to_reg(&mut self, expr: &Expr, pass: &'static str) -> Result<Reg, PassError> {
        match expr {
            Expr::Var(v) => {
                self.var_reg
                    .get(&v.id())
                    .copied()
                    .ok_or_else(|| PassError::Unsupported {
                        pass,
                        detail: format!("variable `{}` has no register", v.name()),
                    })
            }
            Expr::Constant(c) => {
                let index = self.exec.add_constant(c.clone());
                let dst = self.fresh();
                self.instrs.push(Instr::LoadConst { dst, index });
                Ok(dst)
            }
            Expr::ShapeValue(dims) => {
                let dst = self.fresh();
                self.instrs.push(Instr::MakeShape {
                    dst,
                    dims: dims.clone(),
                });
                Ok(dst)
            }
            Expr::TupleGetItem(src, index) => {
                let s = self.expr_to_reg(src, pass)?;
                let dst = self.fresh();
                self.instrs.push(Instr::GetItem {
                    dst,
                    src: s,
                    index: *index,
                });
                Ok(dst)
            }
            Expr::Tuple(items) => {
                let regs: Result<Vec<Reg>, _> =
                    items.iter().map(|e| self.expr_to_reg(e, pass)).collect();
                let dst = self.fresh();
                self.instrs.push(Instr::MakeTuple { dst, items: regs? });
                Ok(dst)
            }
            other => Err(PassError::Unsupported {
                pass,
                detail: format!("argument expression not lowerable: {other:?}"),
            }),
        }
    }

    /// Allocates output tensors for a DPS call with the given annotation.
    /// Returns (dst tensor regs, optional tuple assembly).
    fn alloc_outputs(
        &mut self,
        out_sinfo: &StructInfo,
        pass: &'static str,
    ) -> Result<(Vec<Reg>, bool), PassError> {
        match out_sinfo {
            StructInfo::Tensor { shape, dtype } => {
                let ShapeDesc::Known(dims) = shape else {
                    return Err(PassError::Unsupported {
                        pass,
                        detail: "foreign call output must have a known symbolic shape".to_string(),
                    });
                };
                let dst = self.fresh();
                self.instrs.push(Instr::AllocTensor {
                    dst,
                    shape: dims.clone(),
                    dtype: dtype.unwrap_or(relax_core::DataType::F32),
                });
                self.allocated.insert(dst);
                Ok((vec![dst], false))
            }
            StructInfo::Tuple(fields) => {
                let mut regs = Vec::new();
                for f in fields {
                    let (mut r, _) = self.alloc_outputs(f, pass)?;
                    regs.append(&mut r);
                }
                Ok((regs, true))
            }
            other => Err(PassError::Unsupported {
                pass,
                detail: format!("cannot allocate output for annotation {other}"),
            }),
        }
    }
}

fn lower_function(
    fname: &str,
    func: &Function,
    module: &IRModule,
    workspaces: &HashMap<String, LiftedWorkspaces>,
    exec: &mut Executable,
) -> Result<VmFunction, PassError> {
    const PASS: &str = "lower_to_vm";
    let mut ctx = LowerCtx {
        instrs: Vec::new(),
        var_reg: HashMap::new(),
        next_reg: func.params.len(),
        exec,
        allocated: HashSet::new(),
    };

    // Parameter registers + boundary shape population/checks.
    for (i, p) in func.params.iter().enumerate() {
        ctx.var_reg.insert(p.id(), i);
        let dims = match p.struct_info() {
            StructInfo::Tensor {
                shape: ShapeDesc::Known(dims),
                ..
            } => Some(dims.clone()),
            StructInfo::Shape(ShapeDesc::Known(dims)) => Some(dims.clone()),
            _ => None,
        };
        if let Some(dims) = dims {
            ctx.instrs.push(Instr::MatchShape {
                src: i,
                dims,
                ctx: format!("{fname} param {}", p.name()),
            });
        }
    }

    // Alias resolution: `lv1 = lv0` and `lv1 = match_cast(lv0, ..)` share
    // the same register, so liveness must be computed on alias roots.
    let bindings: Vec<_> = func.bindings().cloned().collect();
    let mut alias: HashMap<u64, u64> = HashMap::new();
    let resolve = |alias: &HashMap<u64, u64>, mut id: u64| -> u64 {
        while let Some(&next) = alias.get(&id) {
            id = next;
        }
        id
    };
    for b in &bindings {
        let aliased = match &b.value {
            Expr::Var(v) => Some(v.id()),
            Expr::MatchCast { value, .. } => value.as_var().map(|v| v.id()),
            _ => None,
        };
        if let Some(src) = aliased {
            let root = resolve(&alias, src);
            alias.insert(b.var.id(), root);
        }
    }

    // Liveness: last binding index at which each alias root is used.
    let mut last_use: HashMap<u64, usize> = HashMap::new();
    for (i, b) in bindings.iter().enumerate() {
        let mut used = Vec::new();
        b.value.collect_used_vars(&mut used);
        for v in used {
            last_use.insert(resolve(&alias, v.id()), i);
        }
        // A binding that aliases keeps its source live until the alias's
        // own last use; treat the definition itself as a use so the root's
        // last_use can only move later.
        last_use.insert(resolve(&alias, b.var.id()), i);
    }
    {
        let mut used = Vec::new();
        func.ret.collect_used_vars(&mut used);
        for v in used {
            last_use.insert(resolve(&alias, v.id()), usize::MAX);
        }
    }

    for (bi, b) in bindings.iter().enumerate() {
        let dst = match &b.value {
            Expr::Var(_) | Expr::Constant(_) | Expr::ShapeValue(_) | Expr::TupleGetItem(..) => {
                let r = ctx.expr_to_reg(&b.value, PASS)?;
                // Alias directly (copy-free).
                r
            }
            Expr::PrimValue(e) => {
                let dst = ctx.fresh();
                ctx.instrs.push(Instr::MakeShape {
                    dst,
                    dims: vec![e.clone()],
                });
                dst
            }
            Expr::Tuple(items) => {
                let regs: Result<Vec<Reg>, _> =
                    items.iter().map(|e| ctx.expr_to_reg(e, PASS)).collect();
                let dst = ctx.fresh();
                ctx.instrs.push(Instr::MakeTuple { dst, items: regs? });
                dst
            }
            Expr::CallOp { op, args, .. } => {
                if *op != Op::Unique {
                    return Err(PassError::Unsupported {
                        pass: PASS,
                        detail: format!("operator `{}` reached lowering un-legalized", op.name()),
                    });
                }
                let regs: Result<Vec<Reg>, _> =
                    args.iter().map(|e| ctx.expr_to_reg(e, PASS)).collect();
                let dst = ctx.fresh();
                ctx.instrs.push(Instr::CallBuiltin {
                    func: "builtin.unique".into(),
                    args: regs?,
                    dst,
                });
                dst
            }
            Expr::CallGlobal { func: callee, args } => {
                let regs: Result<Vec<Reg>, _> =
                    args.iter().map(|e| ctx.expr_to_reg(e, PASS)).collect();
                let dst = ctx.fresh();
                ctx.instrs.push(Instr::CallFunc {
                    func: callee.clone(),
                    args: regs?,
                    dst,
                });
                dst
            }
            Expr::CallTir {
                func: callee,
                args,
                out_sinfo,
                sym_args,
            } => {
                let mut arg_regs = Vec::new();
                for a in args {
                    arg_regs.push(ctx.expr_to_reg(a, PASS)?);
                }
                // Graph-level workspace allocation for lifted programs.
                if let Some(ws) = workspaces.get(callee) {
                    for buf in &ws.buffers {
                        let r = ctx.fresh();
                        ctx.instrs.push(Instr::AllocTensor {
                            dst: r,
                            shape: buf.shape().to_vec(),
                            dtype: buf.dtype(),
                        });
                        ctx.allocated.insert(r);
                        arg_regs.push(r);
                    }
                }
                let (dsts, is_tuple) = ctx.alloc_outputs(out_sinfo, PASS)?;
                ctx.instrs.push(Instr::CallTir {
                    func: callee.clone(),
                    args: arg_regs,
                    dsts: dsts.clone(),
                    sym_args: sym_args.clone(),
                });
                if is_tuple {
                    let dst = ctx.fresh();
                    ctx.instrs.push(Instr::MakeTuple { dst, items: dsts });
                    dst
                } else {
                    dsts[0]
                }
            }
            Expr::CallDps {
                func: callee,
                args,
                out_sinfo,
            } => {
                let mut arg_regs = Vec::new();
                for a in args {
                    arg_regs.push(ctx.expr_to_reg(a, PASS)?);
                }
                // KV-cache and MoE builtins are not destination-passing:
                // the VM dispatches them on first-class handle/shape
                // values and writes the result (a handle or a tensor —
                // possibly with a data-dependent shape) to a fresh
                // register, so no output allocation happens here.
                if callee.starts_with(relax_vm::KV_CACHE_PREFIX)
                    || callee.starts_with(relax_vm::MOE_PREFIX)
                {
                    let dst = ctx.fresh();
                    ctx.instrs.push(Instr::CallBuiltin {
                        func: callee.clone(),
                        args: arg_regs,
                        dst,
                    });
                    dst
                } else {
                    let (dsts, is_tuple) = ctx.alloc_outputs(out_sinfo, PASS)?;
                    ctx.instrs.push(Instr::CallLib {
                        func: callee.clone(),
                        args: arg_regs,
                        dsts: dsts.clone(),
                    });
                    if is_tuple {
                        let dst = ctx.fresh();
                        ctx.instrs.push(Instr::MakeTuple { dst, items: dsts });
                        dst
                    } else {
                        dsts[0]
                    }
                }
            }
            Expr::MatchCast { value, sinfo } => {
                let src = ctx.expr_to_reg(value, PASS)?;
                if let StructInfo::Tensor {
                    shape: ShapeDesc::Known(dims),
                    ..
                }
                | StructInfo::Shape(ShapeDesc::Known(dims)) = sinfo
                {
                    ctx.instrs.push(Instr::MatchShape {
                        src,
                        dims: dims.clone(),
                        ctx: format!("{fname} match_cast {}", b.var.name()),
                    });
                }
                src
            }
        };
        ctx.var_reg.insert(b.var.id(), dst);

        // Kill intermediates whose alias root saw its last use here.
        let mut used = Vec::new();
        b.value.collect_used_vars(&mut used);
        used.push(b.var.clone());
        for v in used {
            let root = resolve(&alias, v.id());
            if last_use.get(&root) == Some(&bi) {
                if let Some(&reg) = ctx.var_reg.get(&v.id()) {
                    if ctx.allocated.remove(&reg) {
                        ctx.instrs.push(Instr::Kill { reg });
                    }
                }
            }
        }
    }

    let ret_reg = ctx.expr_to_reg(&func.ret, PASS)?;
    ctx.instrs.push(Instr::Ret { src: ret_reg });

    let _ = module;
    Ok(VmFunction {
        name: fname.to_string(),
        num_params: func.params.len(),
        num_regs: ctx.next_reg,
        instrs: ctx.instrs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legalize_pass::legalize_module;
    use relax_arith::Var as SV;
    use relax_core::{BlockBuilder, DataType, StructInfo};
    use relax_tir::NDArray;
    use relax_vm::{Value, Vm};

    fn build_and_lower() -> Executable {
        let mut bb = BlockBuilder::new();
        let n = SV::new("n");
        let p = bb.begin_function(
            "main",
            vec![
                (
                    "x".into(),
                    StructInfo::tensor(vec![n.into(), 4.into()], DataType::F32),
                ),
                (
                    "w".into(),
                    StructInfo::tensor(vec![4.into(), 2.into()], DataType::F32),
                ),
            ],
        );
        bb.begin_dataflow();
        let mm = bb
            .emit_op(Op::Matmul, &[p[0].clone(), p[1].clone()])
            .unwrap();
        let out = bb
            .emit_output(Expr::op_call(Op::Relu, vec![mm.into()]))
            .unwrap();
        bb.end_dataflow();
        bb.finish_function(out.into(), None).unwrap();
        let mut m = bb.finish();
        legalize_module(&mut m).unwrap();
        lower_to_vm(&m, &HashMap::new()).unwrap()
    }

    #[test]
    fn lowered_program_runs_end_to_end() {
        let exec = build_and_lower();
        let mut vm = Vm::new(exec);
        let x = NDArray::from_f64(
            &[2, 4],
            DataType::F32,
            vec![1., -1., 2., -2., 3., -3., 4., -4.],
        )
        .unwrap();
        let w = NDArray::from_f64(&[4, 2], DataType::F32, vec![1.; 8]).unwrap();
        let out = vm
            .run("main", &[Value::Tensor(x), Value::Tensor(w)])
            .unwrap();
        let t = out.as_tensor().unwrap();
        assert_eq!(t.shape(), &[2, 2]);
        // Row sums are 0 -> relu(0) = 0.
        assert_eq!(t.to_f64_vec(), vec![0., 0., 0., 0.]);
        let tel = vm.telemetry();
        assert_eq!(tel.kernel_launches, 2);
        // The matmul intermediate was killed and recycled.
        assert_eq!(tel.pool.fresh_allocations, 2);
    }

    #[test]
    fn kill_instructions_enable_pool_reuse_across_runs() {
        let exec = build_and_lower();
        let mut vm = Vm::new(exec);
        let x = NDArray::zeros(&[2, 4], DataType::F32);
        let w = NDArray::zeros(&[4, 2], DataType::F32);
        vm.run(
            "main",
            &[Value::Tensor(x.clone()), Value::Tensor(w.clone())],
        )
        .unwrap();
        let f1 = vm.telemetry().pool.footprint;
        vm.run("main", &[Value::Tensor(x), Value::Tensor(w)])
            .unwrap();
        let f2 = vm.telemetry().pool.footprint;
        // Second run reuses the pool blocks: footprint unchanged.
        assert_eq!(f1, f2);
        assert!(vm.telemetry().pool.reuses >= 2);
    }

    #[test]
    fn boundary_checks_reject_bad_inputs() {
        let exec = build_and_lower();
        let mut vm = Vm::new(exec);
        let x = NDArray::zeros(&[2, 5], DataType::F32); // K=5 contradicts 4
        let w = NDArray::zeros(&[4, 2], DataType::F32);
        let err = vm
            .run("main", &[Value::Tensor(x), Value::Tensor(w)])
            .unwrap_err();
        assert!(matches!(err.kind, relax_vm::VmErrorKind::ShapeCheck { .. }));
    }
}
