//! Integration tests for the unified pass infrastructure: fixpoint
//! semantics, `VerifyLevel` gating, `CompileReport` telemetry, IR dump
//! hooks, and verification-registry injection.

use std::cell::RefCell;
use std::rc::Rc;

use relax_core::{BlockBuilder, DataType, Expr, IRModule, Op, StructInfo};
use relax_passes::{
    compile_with_context, compile_with_report, CompileOptions, ConstFold, Cse, Dce, DispatchRules,
    ExecPass, Fixpoint, Legalize, ModulePass, PassContext, PassError, PassManager, PassStage,
    VerifyLevel,
};
use relax_tir::NDArray;
use relax_vm::registry::Registry;
use relax_vm::{Value, Vm};

/// x @ w -> +bias -> relu -> @ w2 -> rms_norm on symbolic batch (the
/// pipeline's standard MLP fixture).
fn mlp_module() -> IRModule {
    let mut bb = BlockBuilder::new();
    let n = relax_arith::Var::new("n");
    let p = bb.begin_function(
        "main",
        vec![
            (
                "x".into(),
                StructInfo::tensor(vec![n.clone().into(), 8.into()], DataType::F32),
            ),
            (
                "w1".into(),
                StructInfo::tensor(vec![8.into(), 16.into()], DataType::F32),
            ),
            (
                "b1".into(),
                StructInfo::tensor(vec![16.into()], DataType::F32),
            ),
            (
                "w2".into(),
                StructInfo::tensor(vec![16.into(), 8.into()], DataType::F32),
            ),
            (
                "g".into(),
                StructInfo::tensor(vec![8.into()], DataType::F32),
            ),
        ],
    );
    bb.begin_dataflow();
    let h = bb.emit_op(Op::Matmul, &[p[0].clone(), p[1].clone()]).unwrap();
    let h = bb.emit_op(Op::Add, &[h, p[2].clone()]).unwrap();
    let h = bb.emit(Expr::op_call(Op::Relu, vec![h.into()])).unwrap();
    let h = bb.emit_op(Op::Matmul, &[h, p[3].clone()]).unwrap();
    let out = bb
        .emit_output(Expr::op_call(
            Op::RmsNorm,
            vec![h.into(), p[4].clone().into()],
        ))
        .unwrap();
    bb.end_dataflow();
    bb.finish_function(out.into(), None).unwrap();
    bb.finish()
}

/// A minimal already-clean module: one relu, nothing to fold/share/remove.
fn clean_module() -> IRModule {
    let mut bb = BlockBuilder::new();
    let p = bb.begin_function(
        "main",
        vec![(
            "x".into(),
            StructInfo::tensor(vec![4.into()], DataType::F32),
        )],
    );
    bb.begin_dataflow();
    let out = bb
        .emit_output(Expr::op_call(Op::Relu, vec![p[0].clone().into()]))
        .unwrap();
    bb.end_dataflow();
    bb.finish_function(out.into(), None).unwrap();
    bb.finish()
}

fn cleanup_fixpoint() -> Fixpoint {
    let passes: Vec<Box<dyn ModulePass>> = vec![
        Box::new(ConstFold),
        Box::new(Cse),
        Box::new(Dce),
    ];
    Fixpoint::new("cleanup", passes)
}

#[test]
fn fixpoint_terminates_in_one_iteration_on_clean_module() {
    let mut ctx = PassContext::new();
    let mut pm = PassManager::new()
        .with_module_pass(cleanup_fixpoint())
        .with_module_pass(Legalize);
    pm.run(clean_module(), &mut ctx).unwrap();
    let report = ctx.take_report();
    assert_eq!(report.fixpoints.len(), 1);
    assert_eq!(report.fixpoints[0].name, "cleanup");
    assert_eq!(report.fixpoints[0].iterations, 1);
    assert!(report.fixpoints[0].converged);
    // One iteration = exactly one record per member pass, none changing.
    let cleanup_runs: Vec<_> = report
        .passes
        .iter()
        .filter(|p| matches!(p.name.as_str(), "const_fold" | "cse" | "dce"))
        .collect();
    assert_eq!(cleanup_runs.len(), 3);
    assert!(cleanup_runs.iter().all(|p| !p.changed));
}

#[test]
fn fixpoint_iterates_until_quiescent_on_dirty_module() {
    // Two identical exp computations: CSE rewrites one, DCE then removes
    // the orphaned alias — the second iteration confirms quiescence.
    let mut bb = BlockBuilder::new();
    let p = bb.begin_function(
        "main",
        vec![(
            "x".into(),
            StructInfo::tensor(vec![4.into()], DataType::F32),
        )],
    );
    bb.begin_dataflow();
    let a = bb
        .emit(Expr::op_call(Op::Exp, vec![p[0].clone().into()]))
        .unwrap();
    let b = bb
        .emit(Expr::op_call(Op::Exp, vec![p[0].clone().into()]))
        .unwrap();
    let out = bb
        .emit_output(Expr::op_call(Op::Add, vec![a.into(), b.into()]))
        .unwrap();
    bb.end_dataflow();
    bb.finish_function(out.into(), None).unwrap();

    let mut ctx = PassContext::new();
    let mut pm = PassManager::new()
        .with_module_pass(cleanup_fixpoint())
        .with_module_pass(Legalize);
    pm.run(bb.finish(), &mut ctx).unwrap();
    let report = ctx.take_report();
    assert_eq!(report.fixpoints.len(), 1);
    assert!(report.fixpoints[0].iterations >= 2);
    assert!(report.fixpoints[0].converged);
}

/// A pass that always claims to have changed the module — exercises the
/// iteration cap.
struct AlwaysChanged;

impl ModulePass for AlwaysChanged {
    fn name(&self) -> &str {
        "always_changed"
    }

    fn run_on_module(
        &mut self,
        _module: &mut IRModule,
        _ctx: &mut PassContext,
    ) -> Result<bool, PassError> {
        Ok(true)
    }
}

#[test]
fn fixpoint_cap_stops_divergent_groups() {
    let fixpoint =
        Fixpoint::new("diverging", vec![Box::new(AlwaysChanged) as Box<dyn ModulePass>])
            .with_cap(4);
    let mut ctx = PassContext::new();
    let mut pm = PassManager::new()
        .with_module_pass(fixpoint)
        .with_module_pass(Legalize);
    pm.run(clean_module(), &mut ctx).unwrap();
    let report = ctx.take_report();
    assert_eq!(report.fixpoints[0].iterations, 4);
    assert!(!report.fixpoints[0].converged);
}

/// A deliberately broken exec pass: reads a register that is never
/// written (a dangling register).
struct BreakRegisters;

impl ExecPass for BreakRegisters {
    fn name(&self) -> &str {
        "break_registers"
    }

    fn run_on_exec(
        &mut self,
        exec: &mut relax_vm::Executable,
        _ctx: &mut PassContext,
    ) -> Result<bool, PassError> {
        for f in exec.funcs.values_mut() {
            let dangling = f.num_regs;
            f.num_regs += 2;
            f.instrs.insert(
                f.instrs.len() - 1,
                relax_vm::Instr::Copy {
                    dst: dangling + 1,
                    src: dangling,
                },
            );
        }
        Ok(true)
    }
}

#[test]
fn verify_level_gates_broken_pass_detection() {
    // With verification on, the dangling register is caught right after
    // the broken pass and attributed to it.
    let mut ctx = PassContext::new().with_verify_level(VerifyLevel::All);
    let mut pm = PassManager::new()
        .with_module_pass(Legalize)
        .with_exec_pass(BreakRegisters);
    let err = pm.run(clean_module(), &mut ctx).unwrap_err();
    match err {
        PassError::Verify { stage, error } => {
            assert_eq!(stage, "break_registers");
            assert!(!error.violations.is_empty());
        }
        other => panic!("expected Verify error, got: {other}"),
    }

    // With verification off, the broken executable sails through.
    let mut ctx = PassContext::new().with_verify_level(VerifyLevel::Off);
    let mut pm = PassManager::new()
        .with_module_pass(Legalize)
        .with_exec_pass(BreakRegisters);
    assert!(pm.run(clean_module(), &mut ctx).is_ok());
}

#[test]
fn report_names_match_executed_sequence() {
    let (_, report) = compile_with_report(mlp_module(), &CompileOptions::default()).unwrap();

    // Every cleanup-trio execution is recorded member by member, in
    // whole-trio multiples.
    let cleanup: Vec<&str> = report
        .pass_names()
        .into_iter()
        .filter(|n| matches!(*n, "const_fold" | "cse" | "dce"))
        .collect();
    assert!(!cleanup.is_empty());
    assert_eq!(cleanup.len() % 3, 0);
    for trio in cleanup.chunks(3) {
        assert_eq!(trio, ["const_fold", "cse", "dce"]);
    }
    assert!(report.fixpoints.iter().all(|f| f.converged));

    // The non-cleanup passes appear exactly in pipeline order.
    let rest: Vec<&str> = report
        .pass_names()
        .into_iter()
        .filter(|n| !matches!(*n, "const_fold" | "cse" | "dce"))
        .collect();
    assert_eq!(
        rest,
        [
            "dispatch_library",
            "legalize",
            "annotate_patterns",
            "fuse_ops",
            "fuse_tensor_ir",
            "annotate_patterns",
            "lift_workspaces",
            "lower_to_vm",
            "schedule_kernels",
            "memory_plan",
            "graph_capture",
        ]
    );

    // Stages are attributed correctly and the trivially-true change bits
    // of the big rewrites are set.
    for p in &report.passes {
        let want = match p.name.as_str() {
            "lower_to_vm" => PassStage::Lower,
            "schedule_kernels" | "memory_plan" | "graph_capture" => PassStage::Exec,
            _ => PassStage::Module,
        };
        assert_eq!(p.stage, want, "stage of {}", p.name);
    }
    let changed = |name: &str| {
        report
            .passes
            .iter()
            .any(|p| p.name == name && p.changed)
    };
    assert!(changed("dispatch_library"));
    assert!(changed("legalize"));
    assert!(changed("memory_plan"));
    assert!(report.total >= report.pass_time());
}

/// `(pass name, "before"/"after", IR text)` as seen by the dump sink.
type DumpedEvents = Rc<RefCell<Vec<(String, &'static str, String)>>>;

#[test]
fn dump_globs_select_fusion_passes_only() {
    let events: DumpedEvents = Rc::new(RefCell::new(Vec::new()));
    let sink_events = Rc::clone(&events);
    let mut ctx = PassContext::new()
        .with_dump_globs(vec!["fuse*".into()])
        .with_dump_sink(Box::new(move |e| {
            sink_events
                .borrow_mut()
                .push((e.pass.clone(), e.when, e.text.clone()));
        }));
    compile_with_context(mlp_module(), &CompileOptions::default(), &mut ctx).unwrap();

    let events = events.borrow();
    assert!(!events.is_empty());
    // Only the fusion passes were dumped, each as a before/after pair.
    assert!(events
        .iter()
        .all(|(pass, ..)| pass == "fuse_ops" || pass == "fuse_tensor_ir"));
    for pair in events.chunks(2) {
        let [(p1, w1, _), (p2, w2, _)] = pair else {
            panic!("unpaired dump event");
        };
        assert_eq!(p1, p2);
        assert_eq!((*w1, *w2), ("before", "after"));
    }
    // Fusion changed the module, so the snapshots differ.
    let fuse_ops: Vec<_> = events.iter().filter(|(p, ..)| p == "fuse_ops").collect();
    assert_eq!(fuse_ops.len(), 2);
    assert_ne!(fuse_ops[0].2, fuse_ops[1].2);
}

/// An elementwise exp "vendor kernel" for the custom-registry test.
fn lib_exp(inputs: &[NDArray], outputs: &[NDArray]) -> Result<(), String> {
    let (x, out) = (&inputs[0], &outputs[0]);
    for (i, v) in x.to_f64_vec().iter().enumerate() {
        out.set(i, relax_tir::Scalar::F(v.exp()))
            .map_err(|e| e.to_string())?;
    }
    Ok(())
}

#[test]
fn injected_registry_must_match_the_target_vm() {
    let mut bb = BlockBuilder::new();
    let p = bb.begin_function(
        "main",
        vec![(
            "x".into(),
            StructInfo::tensor(vec![4.into()], DataType::F32),
        )],
    );
    bb.begin_dataflow();
    let out = bb
        .emit_output(Expr::op_call(Op::Exp, vec![p[0].clone().into()]))
        .unwrap();
    bb.end_dataflow();
    bb.finish_function(out.into(), None).unwrap();
    let module = bb.finish();

    let opts = CompileOptions {
        dispatch_rules: DispatchRules {
            custom: vec![(Op::Exp, "mylib.exp".into())],
            ..DispatchRules::default()
        },
        ..CompileOptions::default()
    };

    // Against the default registry the dispatched callee does not exist —
    // validation fails at the lowering boundary.
    let err = compile_with_context(module.clone(), &opts, &mut PassContext::new()).unwrap_err();
    assert!(matches!(err, PassError::Verify { .. }), "got: {err}");

    // With the custom kernel registered, compilation validates — and the
    // same registry runs the executable.
    let mut registry = Registry::new();
    registry.register_lib_with_signature("mylib.exp", lib_exp, 1, 1);
    let mut ctx = PassContext::new().with_registry(registry.clone());
    let exec = compile_with_context(module, &opts, &mut ctx).unwrap();
    let mut vm = Vm::with_registry(exec, registry);
    let x = NDArray::from_f64(&[4], DataType::F32, vec![0.0, 1.0, -1.0, 2.0]).unwrap();
    let y = vm.run("main", &[Value::Tensor(x)]).unwrap();
    let got = y.as_tensor().unwrap().to_f64_vec();
    assert!((got[0] - 1.0).abs() < 1e-6);
    assert!((got[1] - std::f64::consts::E).abs() < 1e-5);
}
