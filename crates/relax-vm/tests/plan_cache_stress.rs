//! Concurrency stress: 8 threads hammering the shared plan cache while
//! tracing records every probe. Checks the cache's statistical
//! invariants and that concurrent emission never corrupts the trace.

use std::sync::atomic::{AtomicU64, Ordering};

use relax_trace::Capture;
use relax_vm::{CachedPlan, SharedPlanCache};

const THREADS: usize = 8;
const ITERS: usize = 1500;
const KEYS: usize = 24;

/// 8 threads × 1500 iterations of lookup-then-insert-on-miss across a
/// capacity-16 cache (so eviction is constantly active). Invariants:
/// hits + misses equals the number of lookups the cache accepted, and
/// evictions never exceed inserts. The whole run records into the trace
/// buffer; the drained trace must validate and its Chrome export must
/// pass the checker — no interleaved or corrupt records under
/// contention.
#[test]
fn eight_threads_hammering_keeps_stats_and_trace_consistent() {
    let capture = Capture::begin();
    let cache = SharedPlanCache::new(16);
    let probes = AtomicU64::new(0);
    let inserts = AtomicU64::new(0);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = cache.clone();
            let probes = &probes;
            let inserts = &inserts;
            s.spawn(move || {
                for i in 0..ITERS {
                    let key = (t * 7 + i * 13) % KEYS;
                    let func = format!("kernel_{key}");
                    let shapes = vec![vec![key + 1, 8], vec![8, 4]];
                    let sp = relax_trace::span("vm", || format!("probe:{func}"));
                    let found = cache.lookup(&func, &shapes);
                    probes.fetch_add(1, Ordering::Relaxed);
                    if found.is_none() {
                        cache.insert(&func, &shapes, CachedPlan::Unplannable);
                        inserts.fetch_add(1, Ordering::Relaxed);
                    }
                    sp.finish_with(|| relax_trace::Payload::Kernel {
                        kernel: func.clone(),
                        shapes: relax_trace::shape_sig(&shapes),
                        cache: Some(if found.is_some() {
                            relax_trace::CacheOutcome::Hit
                        } else {
                            relax_trace::CacheOutcome::Miss
                        }),
                    });
                }
            });
        }
    });

    let stats = cache.stats();
    let trace = capture.finish();

    // Stats invariants under contention.
    assert_eq!(
        stats.hits + stats.misses,
        probes.load(Ordering::Relaxed),
        "every accepted lookup is exactly one hit or one miss"
    );
    assert!(
        stats.evictions <= inserts.load(Ordering::Relaxed),
        "evictions ({}) must not exceed inserts ({})",
        stats.evictions,
        inserts.load(Ordering::Relaxed)
    );
    assert!(stats.len <= 16 + THREADS, "len {} way over capacity", stats.len);
    assert!(stats.hits > 0 && stats.misses > 0, "stress must exercise both paths");

    // Trace invariants under concurrent emission. The default buffer
    // comfortably holds this run, so nothing may drop and every probe
    // span (and the `plan_cache:` instant its lookup emitted) is there.
    trace.validate().expect("concurrently emitted trace is well-formed");
    assert_eq!(trace.dropped, 0, "default capacity must hold this run");
    let expected = THREADS * ITERS;
    assert_eq!(trace.sync_span_count("vm", "probe:"), expected);
    let chrome = relax_trace::validate_chrome_trace(&trace.chrome_json())
        .expect("chrome export of a contended trace passes the checker");
    assert_eq!(chrome.events, trace.events.len());
    assert_eq!(chrome.sync_pairs, expected);
    // One `plan_cache:` instant per lookup; contended lock sites may emit
    // additional `lock_wait:` instants on top of that.
    assert!(
        chrome.instants >= expected,
        "at least one plan_cache probe instant per lookup ({} < {expected})",
        chrome.instants
    );
    assert!(chrome.threads >= 2, "the stress must actually run multi-threaded");
}

/// A deliberately tiny buffer drops events under contention but the
/// drained trace stays balanced and exportable. Each lookup runs under
/// a sync span (with the lookup's `plan_cache:` instant emitted inside
/// it), so shards fill *between* a span's Begin and its End — the case
/// where a dropped close would unbalance the trace.
#[test]
fn tiny_buffer_under_contention_stays_balanced() {
    let capture = Capture::begin();
    relax_trace::set_capacity(64);
    let cache = SharedPlanCache::new(8);
    std::thread::scope(|s| {
        for t in 0..4 {
            let cache = cache.clone();
            s.spawn(move || {
                for i in 0..500 {
                    let func = format!("k{}", (t + i) % 6);
                    let shapes = vec![vec![i % 5 + 1]];
                    let sp = relax_trace::span("vm", || format!("probe:{func}"));
                    if cache.lookup(&func, &shapes).is_none() {
                        cache.insert(&func, &shapes, CachedPlan::Unplannable);
                    }
                    sp.finish();
                }
            });
        }
    });
    relax_trace::set_capacity(relax_trace::DEFAULT_CAPACITY);
    let trace = capture.finish();
    assert!(trace.dropped > 0, "the tiny buffer must have dropped events");
    trace.validate().expect("dropping must never unbalance the trace");
    relax_trace::validate_chrome_trace(&trace.chrome_json()).unwrap();
}
