//! Static validation of lowered executables.
//!
//! Every lowering and post-lowering transformation (VM lowering, memory
//! planning, graph capture) rewrites instruction sequences, and a bug in
//! any of them produces an executable that fails — or worse, silently
//! misbehaves — only at run time. This module checks the invariants those
//! transformations must preserve, so the pipeline can fail at compile time
//! with a named violation instead:
//!
//! - **def-before-use**: every register is written before it is read, and
//!   register indices are in range (`undefined-register`);
//! - **no use-after-kill**: a killed register is never read again
//!   (`use-after-kill`);
//! - **arity**: `CallTir` argument counts match the tensor program's
//!   parameter list, `CallLib`/`CallBuiltin` counts match the registry's
//!   declared signatures, `CallFunc` counts match the callee
//!   (`arity-mismatch`), and every callee exists (`unknown-callee`);
//! - **live storage**: `TensorFromStorage` reads a register that currently
//!   holds storage produced by `AllocStorage` and not yet killed
//!   (`dead-storage`);
//! - **bound symbolic shapes**: every symbolic variable evaluated at run
//!   time (allocation sizes, shape construction, capture keys) is bound by
//!   an earlier `MatchShape` (`unbound-symbolic-var`);
//! - **return**: every function ends by returning a value
//!   (`missing-return`).
//!
//! The walk mirrors the VM exactly — capture-region bodies are validated
//! inline in execution order against the same state — so a verdict of
//! "valid" means the VM cannot hit one of these faults on any input.

use std::collections::HashSet;
use std::fmt;

use relax_arith::{free_vars, PrimExpr, Var as SymVar};

use crate::exec::{Executable, Instr, Reg, VmFunction};
use crate::registry::Registry;

/// One invariant violation found by [`verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The function containing the violation.
    pub func: String,
    /// Instruction index (capture bodies count from zero).
    pub pc: usize,
    /// The violated rule, e.g. `"use-after-kill"`.
    pub rule: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}[pc {}]: {}",
            self.rule, self.func, self.pc, self.detail
        )
    }
}

/// Validation failure: every violation found in the executable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// All violations, in program order.
    pub violations: Vec<Violation>,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} invariant violation(s)", self.violations.len())?;
        for v in &self.violations {
            write!(f, "\n  {v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyError {}

/// Validates an executable against the invariants listed in the module
/// docs, using `registry` for library/builtin signatures.
///
/// # Errors
///
/// [`VerifyError`] listing every violation (the walk does not stop at the
/// first one).
pub fn verify(exec: &Executable, registry: &Registry) -> Result<(), VerifyError> {
    let mut violations = Vec::new();
    for func in exec.funcs.values() {
        verify_function(func, exec, registry, &mut violations);
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(VerifyError { violations })
    }
}

/// Abstract state of one register during the walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegState {
    /// Never written.
    Unset,
    /// Holds a live value.
    Live,
    /// Holds live storage (written by `AllocStorage`).
    LiveStorage,
    /// Was live, then killed.
    Killed,
}

struct FuncChecker<'a> {
    func: &'a VmFunction,
    exec: &'a Executable,
    registry: &'a Registry,
    regs: Vec<RegState>,
    bound: HashSet<SymVar>,
    violations: &'a mut Vec<Violation>,
}

fn verify_function(
    func: &VmFunction,
    exec: &Executable,
    registry: &Registry,
    violations: &mut Vec<Violation>,
) {
    let mut regs = vec![RegState::Unset; func.num_regs];
    for r in regs.iter_mut().take(func.num_params.min(func.num_regs)) {
        *r = RegState::Live;
    }
    if func.num_params > func.num_regs {
        violations.push(Violation {
            func: func.name.clone(),
            pc: 0,
            rule: "undefined-register",
            detail: format!(
                "{} parameters but only {} registers",
                func.num_params, func.num_regs
            ),
        });
    }
    let mut checker = FuncChecker {
        func,
        exec,
        registry,
        regs,
        bound: HashSet::new(),
        violations,
    };
    let returned = checker.walk(&func.instrs);
    if !returned {
        checker.violations.push(Violation {
            func: func.name.clone(),
            pc: func.instrs.len(),
            rule: "missing-return",
            detail: "function can reach the end without a `ret`".to_string(),
        });
    }
}

impl FuncChecker<'_> {
    fn report(&mut self, pc: usize, rule: &'static str, detail: String) {
        self.violations.push(Violation {
            func: self.func.name.clone(),
            pc,
            rule,
            detail,
        });
    }

    /// Checks a register read.
    fn use_reg(&mut self, pc: usize, reg: Reg, what: &str) {
        match self.regs.get(reg) {
            None => self.report(
                pc,
                "undefined-register",
                format!("{what} %{reg} is out of range (num_regs = {})", self.func.num_regs),
            ),
            Some(RegState::Unset) => self.report(
                pc,
                "undefined-register",
                format!("{what} %{reg} is read before any definition"),
            ),
            Some(RegState::Killed) => self.report(
                pc,
                "use-after-kill",
                format!("{what} %{reg} is read after `kill`"),
            ),
            Some(RegState::Live | RegState::LiveStorage) => {}
        }
    }

    /// Checks a register write; records the new abstract state.
    fn def_reg(&mut self, pc: usize, reg: Reg, state: RegState) {
        match self.regs.get_mut(reg) {
            Some(slot) => *slot = state,
            None => self.report(
                pc,
                "undefined-register",
                format!(
                    "destination %{reg} is out of range (num_regs = {})",
                    self.func.num_regs
                ),
            ),
        }
    }

    /// Checks that every symbolic variable in `e` is bound.
    fn use_expr(&mut self, pc: usize, e: &PrimExpr, what: &str) {
        for v in free_vars(e) {
            if !self.bound.contains(&v) {
                self.report(
                    pc,
                    "unbound-symbolic-var",
                    format!("{what} `{e}` uses `{v}` before any match_shape binds it"),
                );
            }
        }
    }

    fn use_exprs(&mut self, pc: usize, es: &[PrimExpr], what: &str) {
        for e in es {
            self.use_expr(pc, e, what);
        }
    }

    /// Walks a block; returns `true` when it always ends in `Ret`.
    fn walk(&mut self, instrs: &[Instr]) -> bool {
        let mut returned = false;
        for (pc, instr) in instrs.iter().enumerate() {
            match instr {
                Instr::AllocTensor { dst, shape, .. } => {
                    self.use_exprs(pc, shape, "allocation shape");
                    self.def_reg(pc, *dst, RegState::Live);
                }
                Instr::AllocStorage { dst, bytes } => {
                    self.use_expr(pc, bytes, "storage size");
                    self.def_reg(pc, *dst, RegState::LiveStorage);
                }
                Instr::TensorFromStorage {
                    dst,
                    storage,
                    shape,
                    ..
                } => {
                    self.use_exprs(pc, shape, "tensor shape");
                    match self.regs.get(*storage) {
                        Some(RegState::LiveStorage) => {}
                        Some(RegState::Killed) => self.report(
                            pc,
                            "dead-storage",
                            format!("tensor created in storage %{storage} after `kill`"),
                        ),
                        Some(RegState::Live) => self.report(
                            pc,
                            "dead-storage",
                            format!("%{storage} does not hold storage at this point"),
                        ),
                        Some(RegState::Unset) | None => self.report(
                            pc,
                            "dead-storage",
                            format!("storage register %{storage} has no live allocation"),
                        ),
                    }
                    self.def_reg(pc, *dst, RegState::Live);
                }
                Instr::Kill { reg } => {
                    match self.regs.get(*reg) {
                        Some(RegState::Killed) => self.report(
                            pc,
                            "use-after-kill",
                            format!("%{reg} is killed twice"),
                        ),
                        Some(RegState::Unset) | None => self.report(
                            pc,
                            "undefined-register",
                            format!("kill of %{reg} which was never defined"),
                        ),
                        Some(RegState::Live | RegState::LiveStorage) => {}
                    }
                    self.def_reg(pc, *reg, RegState::Killed);
                }
                Instr::CallTir {
                    func,
                    args,
                    dsts,
                    sym_args,
                } => {
                    self.use_exprs(pc, sym_args, "symbolic argument");
                    for r in args {
                        self.use_reg(pc, *r, "argument");
                    }
                    for r in dsts {
                        self.use_reg(pc, *r, "destination");
                    }
                    match self.exec.tir_funcs.get(func) {
                        None => self.report(
                            pc,
                            "unknown-callee",
                            format!("tensor program `{func}` is not in the executable"),
                        ),
                        Some(prim) => {
                            let expected = prim.params().len();
                            let actual = args.len() + dsts.len();
                            if expected != actual {
                                self.report(
                                    pc,
                                    "arity-mismatch",
                                    format!(
                                        "`{func}` has {expected} buffer parameters, \
                                         call passes {actual}"
                                    ),
                                );
                            }
                        }
                    }
                }
                Instr::CallLib { func, args, dsts } => {
                    for r in args {
                        self.use_reg(pc, *r, "argument");
                    }
                    for r in dsts {
                        self.use_reg(pc, *r, "destination");
                    }
                    if !self.registry.has_lib(func) {
                        self.report(
                            pc,
                            "unknown-callee",
                            format!("library kernel `{func}` is not registered"),
                        );
                    } else if let Some((ins, outs)) = self.registry.lib_signature(func) {
                        if args.len() != ins || dsts.len() != outs {
                            self.report(
                                pc,
                                "arity-mismatch",
                                format!(
                                    "`{func}` expects {ins} inputs and {outs} outputs, \
                                     call passes {} and {}",
                                    args.len(),
                                    dsts.len()
                                ),
                            );
                        }
                    }
                }
                Instr::CallBuiltin { func, args, dst } => {
                    for r in args {
                        self.use_reg(pc, *r, "argument");
                    }
                    if !self.registry.has_builtin(func) {
                        self.report(
                            pc,
                            "unknown-callee",
                            format!("builtin `{func}` is not registered"),
                        );
                    } else if let Some(ins) = self.registry.builtin_signature(func) {
                        if args.len() != ins {
                            self.report(
                                pc,
                                "arity-mismatch",
                                format!(
                                    "`{func}` expects {ins} inputs, call passes {}",
                                    args.len()
                                ),
                            );
                        }
                    }
                    self.def_reg(pc, *dst, RegState::Live);
                }
                Instr::CallFunc { func, args, dst } => {
                    for r in args {
                        self.use_reg(pc, *r, "argument");
                    }
                    match self.exec.funcs.get(func) {
                        None => self.report(
                            pc,
                            "unknown-callee",
                            format!("VM function `{func}` is not in the executable"),
                        ),
                        Some(callee) => {
                            if args.len() != callee.num_params {
                                self.report(
                                    pc,
                                    "arity-mismatch",
                                    format!(
                                        "`{func}` takes {} parameters, call passes {}",
                                        callee.num_params,
                                        args.len()
                                    ),
                                );
                            }
                        }
                    }
                    self.def_reg(pc, *dst, RegState::Live);
                }
                Instr::MatchShape { src, dims, ctx: _ } => {
                    self.use_reg(pc, *src, "matched value");
                    // Fresh variables bind; everything else is evaluated
                    // and must already be bound.
                    for d in dims {
                        match d {
                            PrimExpr::Var(v) => {
                                self.bound.insert(v.clone());
                            }
                            e => self.use_expr(pc, e, "checked dimension"),
                        }
                    }
                }
                Instr::LoadConst { dst, index } => {
                    if *index >= self.exec.constants.len() {
                        self.report(
                            pc,
                            "unknown-callee",
                            format!(
                                "constant index {index} out of range ({} constants)",
                                self.exec.constants.len()
                            ),
                        );
                    }
                    self.def_reg(pc, *dst, RegState::Live);
                }
                Instr::MakeTuple { dst, items } => {
                    for r in items {
                        self.use_reg(pc, *r, "tuple field");
                    }
                    self.def_reg(pc, *dst, RegState::Live);
                }
                Instr::GetItem { dst, src, .. } => {
                    self.use_reg(pc, *src, "tuple");
                    self.def_reg(pc, *dst, RegState::Live);
                }
                Instr::MakeShape { dst, dims } => {
                    self.use_exprs(pc, dims, "shape dimension");
                    self.def_reg(pc, *dst, RegState::Live);
                }
                Instr::Copy { dst, src } => {
                    self.use_reg(pc, *src, "source");
                    let state = match self.regs.get(*src) {
                        Some(RegState::LiveStorage) => RegState::LiveStorage,
                        _ => RegState::Live,
                    };
                    self.def_reg(pc, *dst, state);
                }
                Instr::CaptureRegion { keys, body, .. } => {
                    self.use_exprs(pc, keys, "capture key");
                    if self.walk(body) {
                        returned = true;
                    }
                }
                Instr::Ret { src } => {
                    self.use_reg(pc, *src, "returned value");
                    returned = true;
                }
            }
        }
        returned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relax_arith::DataType;

    fn checked(instrs: Vec<Instr>, num_params: usize, num_regs: usize) -> Vec<Violation> {
        let mut exec = Executable::new();
        exec.funcs.insert(
            "f".into(),
            VmFunction {
                name: "f".into(),
                num_params,
                num_regs,
                instrs,
            },
        );
        match verify(&exec, &Registry::new()) {
            Ok(()) => Vec::new(),
            Err(e) => e.violations,
        }
    }

    #[test]
    fn clean_function_passes() {
        let v = checked(
            vec![
                Instr::AllocTensor {
                    dst: 1,
                    shape: vec![4.into()],
                    dtype: DataType::F32,
                },
                Instr::CallLib {
                    func: "cublas.matmul".into(),
                    args: vec![0, 1],
                    dsts: vec![1],
                },
                Instr::Ret { src: 1 },
            ],
            1,
            2,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn use_after_kill_is_named() {
        let v = checked(
            vec![
                Instr::Kill { reg: 0 },
                Instr::Ret { src: 0 },
            ],
            1,
            1,
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "use-after-kill");
        assert_eq!(v[0].pc, 1);
    }

    #[test]
    fn undefined_register_is_named() {
        let v = checked(vec![Instr::Ret { src: 1 }], 1, 2);
        assert_eq!(v[0].rule, "undefined-register");
    }

    #[test]
    fn lib_arity_mismatch_is_named() {
        let v = checked(
            vec![
                Instr::CallLib {
                    func: "cublas.matmul".into(),
                    args: vec![0],
                    dsts: vec![0],
                },
                Instr::Ret { src: 0 },
            ],
            1,
            1,
        );
        assert_eq!(v[0].rule, "arity-mismatch");
    }

    #[test]
    fn unbound_symbolic_var_is_named() {
        let n = SymVar::new("n");
        let v = checked(
            vec![
                Instr::AllocTensor {
                    dst: 1,
                    shape: vec![n.into()],
                    dtype: DataType::F32,
                },
                Instr::Ret { src: 1 },
            ],
            1,
            2,
        );
        assert_eq!(v[0].rule, "unbound-symbolic-var");
    }

    #[test]
    fn dead_storage_is_named() {
        let v = checked(
            vec![
                Instr::AllocStorage {
                    dst: 1,
                    bytes: 64.into(),
                },
                Instr::Kill { reg: 1 },
                Instr::TensorFromStorage {
                    dst: 2,
                    storage: 1,
                    shape: vec![4.into()],
                    dtype: DataType::F32,
                },
                Instr::Ret { src: 2 },
            ],
            1,
            3,
        );
        assert_eq!(v[0].rule, "dead-storage");
        assert_eq!(v[0].pc, 2);
    }

    #[test]
    fn missing_return_is_named() {
        let v = checked(vec![Instr::Kill { reg: 0 }], 1, 1);
        assert!(v.iter().any(|x| x.rule == "missing-return"));
    }

    #[test]
    fn match_shape_binds_for_later_use() {
        let n = SymVar::new("n");
        let v = checked(
            vec![
                Instr::MatchShape {
                    src: 0,
                    dims: vec![n.clone().into()],
                    ctx: "x".into(),
                },
                Instr::AllocTensor {
                    dst: 1,
                    shape: vec![n.into()],
                    dtype: DataType::F32,
                },
                Instr::Ret { src: 1 },
            ],
            1,
            2,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn all_violations_are_collected_not_just_the_first() {
        let n = SymVar::new("n");
        let v = checked(
            vec![
                Instr::Kill { reg: 0 },
                Instr::Copy { dst: 1, src: 0 }, // use-after-kill
                Instr::AllocTensor {
                    dst: 1,
                    shape: vec![n.into()], // unbound
                    dtype: DataType::F32,
                },
                Instr::Ret { src: 1 },
            ],
            1,
            2,
        );
        assert!(v.len() >= 2);
        assert!(v.iter().any(|x| x.rule == "use-after-kill"));
        assert!(v.iter().any(|x| x.rule == "unbound-symbolic-var"));
    }
}
