//! Shape-keyed LRU cache of compiled kernel plans, shareable across VMs.
//!
//! `CallTir` launches are keyed by `(function name, concrete argument
//! dims)`; the first launch of a key pays one plan compilation, every
//! subsequent launch at the same shapes reuses the cached
//! [`KernelPlan`]. Functions the planner cannot express are cached as
//! [`CachedPlan::Unplannable`] so the interpreter fallback does not
//! recompile (and re-fail) per launch. Eviction is least-recently-used via
//! a monotonic touch tick.
//!
//! The cache is a [`SharedPlanCache`]: a cheap `Clone` handle over sharded
//! `RwLock` state, so a pool of serving workers can share one cache — one
//! worker's compile warms every other worker. The hot path (a hit) takes a
//! single shard read lock and allocates nothing: keys are probed through a
//! borrowed [`KeyView`] instead of materializing an owned key per launch,
//! and recency is an atomic store inside the entry.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use relax_tir::KernelPlan;

/// Default number of `(function, shapes)` specializations kept.
pub(crate) const DEFAULT_CAPACITY: usize = 64;

/// Number of independently locked shards. Shard routing hashes the key
/// with a deterministic hasher, so the same key always lands on the same
/// shard in every VM sharing the cache.
const SHARD_COUNT: usize = 8;

/// A cache entry: a compiled plan, or a negative result.
#[derive(Debug, Clone)]
pub enum CachedPlan {
    /// A compiled shape-specialized plan, shared by every VM that hits
    /// this key.
    Ready(Arc<KernelPlan>),
    /// The planner refused this function; callers fall back to the
    /// interpreter without recompiling (and re-failing) per launch.
    Unplannable,
}

/// Owned cache key: `(function name, concrete argument dims)`.
#[derive(Debug, Clone)]
struct PlanKey {
    func: String,
    shapes: Vec<Vec<usize>>,
}

/// Borrowed view of a cache key, so lookups can probe the map with
/// `(&str, &[Vec<usize>])` without allocating an owned `PlanKey`.
trait KeyView {
    fn func(&self) -> &str;
    fn shapes(&self) -> &[Vec<usize>];
}

impl KeyView for PlanKey {
    fn func(&self) -> &str {
        &self.func
    }
    fn shapes(&self) -> &[Vec<usize>] {
        &self.shapes
    }
}

impl KeyView for (&str, &[Vec<usize>]) {
    fn func(&self) -> &str {
        self.0
    }
    fn shapes(&self) -> &[Vec<usize>] {
        self.1
    }
}

impl Hash for dyn KeyView + '_ {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.func().hash(state);
        self.shapes().hash(state);
    }
}

impl PartialEq for dyn KeyView + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.func() == other.func() && self.shapes() == other.shapes()
    }
}

impl Eq for dyn KeyView + '_ {}

// Route the owned key's Hash/Eq through the view so owned and borrowed
// probes are guaranteed to agree.
impl Hash for PlanKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (self as &dyn KeyView).hash(state)
    }
}

impl PartialEq for PlanKey {
    fn eq(&self, other: &Self) -> bool {
        (self as &dyn KeyView) == (other as &dyn KeyView)
    }
}

impl Eq for PlanKey {}

impl<'a> Borrow<dyn KeyView + 'a> for PlanKey {
    fn borrow(&self) -> &(dyn KeyView + 'a) {
        self
    }
}

/// An entry plus its last-touched tick. The tick is atomic so a cache hit
/// can refresh recency under a shard *read* lock.
#[derive(Debug)]
struct Entry {
    touched: AtomicU64,
    plan: CachedPlan,
}

/// Point-in-time counters of a [`SharedPlanCache`]. When the cache is
/// shared, these aggregate over every VM using it (per-VM counts live in
/// [`crate::Telemetry`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups that found a cached plan.
    pub hits: u64,
    /// Lookups that found nothing (each triggers one compilation).
    pub misses: u64,
    /// Entries evicted, least recently used first.
    pub evictions: u64,
    /// Entries currently cached (including negative entries).
    pub len: usize,
    /// Maximum entries kept.
    pub capacity: usize,
}

impl PlanCacheStats {
    /// Fraction of lookups that hit, in `[0, 1]`; `0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct CacheInner {
    shards: Vec<RwLock<HashMap<PlanKey, Entry>>>,
    tick: AtomicU64,
    len: AtomicUsize,
    capacity: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// A shape-keyed LRU plan cache that any number of VMs can share.
///
/// `Clone` is a cheap handle copy: all clones see the same entries and
/// counters, so a worker pool built from clones of one cache shares every
/// compiled plan. A `Vm` created with [`crate::Vm::new`] gets a private
/// cache; [`crate::Vm::from_parts`] accepts a shared one.
#[derive(Debug, Clone)]
pub struct SharedPlanCache {
    inner: Arc<CacheInner>,
}

impl SharedPlanCache {
    /// Creates a cache holding at most `capacity` specializations
    /// (`0` disables caching entirely).
    pub fn new(capacity: usize) -> Self {
        SharedPlanCache {
            inner: Arc::new(CacheInner {
                shards: (0..SHARD_COUNT).map(|_| RwLock::new(HashMap::new())).collect(),
                tick: AtomicU64::new(0),
                len: AtomicUsize::new(0),
                capacity: AtomicUsize::new(capacity),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
            }),
        }
    }

    /// `true` if this handle and `other` share the same underlying cache.
    pub fn shares_with(&self, other: &SharedPlanCache) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// `false` means planning is disabled entirely (capacity 0).
    pub(crate) fn enabled(&self) -> bool {
        self.capacity() > 0
    }

    /// Maximum number of entries kept.
    pub fn capacity(&self) -> usize {
        self.inner.capacity.load(Ordering::Relaxed)
    }

    /// Number of plans (and negative entries) currently cached.
    pub fn len(&self) -> usize {
        self.inner.len.load(Ordering::Relaxed)
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate counters (across every VM sharing the cache).
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            evictions: self.inner.evictions.load(Ordering::Relaxed),
            len: self.len(),
            capacity: self.capacity(),
        }
    }

    /// Changes the capacity, evicting least-recently-used entries if the
    /// cache is now over budget. Returns how many entries were evicted.
    pub fn set_capacity(&self, capacity: usize) -> u64 {
        self.inner.capacity.store(capacity, Ordering::Relaxed);
        let mut evicted = 0;
        while self.len() > capacity && self.evict_lru() {
            evicted += 1;
        }
        evicted
    }

    /// The shard index for a key. Uses the deterministic `DefaultHasher`
    /// seed (not the per-map random state) so every handle agrees.
    fn shard_of(key: &dyn KeyView) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % SHARD_COUNT
    }

    /// Looks up `(func, shapes)`, counting a hit or a miss and refreshing
    /// recency on hit. A hit takes one shard read lock and allocates
    /// nothing (when tracing is off; a probe event is recorded otherwise).
    pub fn lookup(&self, func: &str, shapes: &[Vec<usize>]) -> Option<CachedPlan> {
        if !self.enabled() {
            return None;
        }
        let probe: &dyn KeyView = &(func, shapes);
        let tick = self.inner.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let shard = self.inner.shards[Self::shard_of(probe)]
            .read()
            .unwrap_or_else(|e| e.into_inner());
        let found = match shard.get(probe) {
            Some(entry) => {
                entry.touched.store(tick, Ordering::Relaxed);
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.plan.clone())
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        };
        drop(shard);
        let hit = found.is_some();
        relax_trace::instant(
            "vm",
            || format!("plan_cache:{func}"),
            || relax_trace::Payload::Kernel {
                kernel: func.to_string(),
                shapes: relax_trace::shape_sig(shapes),
                cache: Some(if hit {
                    relax_trace::CacheOutcome::Hit
                } else {
                    relax_trace::CacheOutcome::Miss
                }),
            },
        );
        found
    }

    /// Inserts a freshly compiled (or refused) plan, evicting
    /// least-recently-used entries once the cache is over capacity.
    /// Replacing a key that is already cached is *not* growth and evicts
    /// nothing. Returns how many entries were evicted.
    pub fn insert(&self, func: &str, shapes: &[Vec<usize>], plan: CachedPlan) -> u64 {
        if !self.enabled() {
            return 0;
        }
        let tick = self.inner.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let probe: &dyn KeyView = &(func, shapes);
        let shard_idx = Self::shard_of(probe);
        {
            let mut shard = self.inner.shards[shard_idx]
                .write()
                .unwrap_or_else(|e| e.into_inner());
            if let Some(entry) = shard.get_mut(probe) {
                // In-place replacement: same key, no growth, no eviction.
                entry.plan = plan;
                entry.touched.store(tick, Ordering::Relaxed);
                return 0;
            }
            shard.insert(
                PlanKey {
                    func: func.to_string(),
                    shapes: shapes.to_vec(),
                },
                Entry {
                    touched: AtomicU64::new(tick),
                    plan,
                },
            );
            self.inner.len.fetch_add(1, Ordering::Relaxed);
        }
        let mut evicted = 0;
        while self.len() > self.capacity() && self.evict_lru() {
            evicted += 1;
        }
        evicted
    }

    /// Evicts the globally least-recently-touched entry. `false` if the
    /// cache was empty.
    fn evict_lru(&self) -> bool {
        // Find the globally oldest entry, one shard read lock at a time.
        let mut oldest: Option<(usize, u64, PlanKey)> = None;
        for (i, lock) in self.inner.shards.iter().enumerate() {
            let shard = lock.read().unwrap_or_else(|e| e.into_inner());
            for (key, entry) in shard.iter() {
                let t = entry.touched.load(Ordering::Relaxed);
                if oldest.as_ref().map(|(_, ot, _)| t < *ot).unwrap_or(true) {
                    oldest = Some((i, t, key.clone()));
                }
            }
        }
        let Some((i, _, key)) = oldest else {
            return false;
        };
        let mut shard = self.inner.shards[i]
            .write()
            .unwrap_or_else(|e| e.into_inner());
        if shard.remove(&key as &dyn KeyView).is_some() {
            self.inner.len.fetch_sub(1, Ordering::Relaxed);
            self.inner.evictions.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            // Lost a race with another evictor; report progress anyway so
            // callers re-check the length.
            true
        }
    }
}

impl Default for SharedPlanCache {
    fn default() -> Self {
        SharedPlanCache::new(DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_touched() {
        let c = SharedPlanCache::new(2);
        c.insert("a", &[vec![1]], CachedPlan::Unplannable);
        c.insert("b", &[vec![1]], CachedPlan::Unplannable);
        assert!(c.lookup("a", &[vec![1]]).is_some()); // refresh a
        c.insert("c", &[vec![1]], CachedPlan::Unplannable); // evicts b
        assert_eq!(c.stats().evictions, 1);
        assert!(c.lookup("a", &[vec![1]]).is_some());
        assert!(c.lookup("b", &[vec![1]]).is_none());
        assert!(c.lookup("c", &[vec![1]]).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let c = SharedPlanCache::new(0);
        assert!(!c.enabled());
        c.insert("a", &[vec![1]], CachedPlan::Unplannable);
        assert!(c.lookup("a", &[vec![1]]).is_none());
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats().misses, 0); // disabled lookups are not counted
    }

    #[test]
    fn shrinking_capacity_evicts() {
        let c = SharedPlanCache::new(4);
        for name in ["a", "b", "c", "d"] {
            c.insert(name, &[vec![2, 2]], CachedPlan::Unplannable);
        }
        let evicted = c.set_capacity(1);
        assert_eq!(evicted, 3);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().evictions, 3);
    }

    /// Regression: replacing an existing key while at capacity must not
    /// evict anything — replacement is not growth. The old code evicted
    /// the LRU entry first, which at capacity 1 was the very entry being
    /// replaced.
    #[test]
    fn replacing_existing_key_at_capacity_evicts_nothing() {
        let c = SharedPlanCache::new(1);
        c.insert("a", &[vec![4]], CachedPlan::Unplannable);
        let evicted = c.insert("a", &[vec![4]], CachedPlan::Unplannable);
        assert_eq!(evicted, 0);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.len(), 1);
        assert!(c.lookup("a", &[vec![4]]).is_some());

        // Same at capacity 2 with a second live entry: the untouched
        // neighbour must survive the replacement.
        let c = SharedPlanCache::new(2);
        c.insert("a", &[vec![4]], CachedPlan::Unplannable);
        c.insert("b", &[vec![8]], CachedPlan::Unplannable);
        c.insert("a", &[vec![4]], CachedPlan::Unplannable);
        assert_eq!(c.stats().evictions, 0);
        assert!(c.lookup("b", &[vec![8]]).is_some());
    }

    #[test]
    fn clones_share_entries_and_counters() {
        let a = SharedPlanCache::new(4);
        let b = a.clone();
        assert!(a.shares_with(&b));
        a.insert("f", &[vec![2]], CachedPlan::Unplannable);
        assert!(b.lookup("f", &[vec![2]]).is_some());
        let s = a.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.len, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12 || s.misses == 0);
    }

    #[test]
    fn concurrent_lookups_and_inserts_stay_consistent() {
        let c = SharedPlanCache::new(8);
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..200usize {
                        let shapes = vec![vec![i % 16]];
                        let name = if t % 2 == 0 { "even" } else { "odd" };
                        if c.lookup(name, &shapes).is_none() {
                            c.insert(name, &shapes, CachedPlan::Unplannable);
                        }
                    }
                });
            }
        });
        assert!(c.len() <= 8);
        let s = c.stats();
        assert!(s.hits + s.misses >= 800);
    }
}
