//! Shape-keyed LRU cache of compiled kernel plans, shareable across VMs.
//!
//! `CallTir` launches are keyed by `(function name, concrete argument
//! dims)`; the first launch of a key pays one plan compilation, every
//! subsequent launch at the same shapes reuses the cached
//! [`KernelPlan`]. Functions the planner cannot express are cached as
//! [`CachedPlan::Unplannable`] so the interpreter fallback does not
//! recompile (and re-fail) per launch. Eviction is least-recently-used via
//! a monotonic touch tick.
//!
//! The cache is a [`SharedPlanCache`]: a cheap `Clone` handle over sharded
//! copy-on-write state, so a pool of serving workers can share one cache —
//! one worker's compile warms every other worker. Each shard publishes an
//! immutable `Arc<HashMap>` snapshot plus a version counter; mutation
//! replaces the snapshot and bumps the version. A VM probes through a
//! [`PlanCacheSession`]: while the shard version is unchanged the probe
//! reads the session's cached snapshot with **zero locks and zero shared
//! atomics written** — recency is an atomic store inside the (shared)
//! entry, the LRU tick is drawn from a session-local batch, and hit/miss
//! counters accumulate locally and publish in batches. The direct
//! [`SharedPlanCache::lookup`] keeps the old one-read-lock-per-probe
//! behavior for callers without a session.
//!
//! Batched-tick LRU semantics: a session reserves [`TICK_BATCH`] ticks
//! from the global counter at once, so "least recently used" is exact
//! within a session and approximate (within one batch window) across
//! sessions — an entry last touched by a long-idle worker can look up to
//! `TICK_BATCH` probes more recent than global order. Stats follow the
//! same batching, flushed on session flush (the VM flushes after every
//! program run), so `hits + misses == probes` holds at every flush point.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use relax_tir::KernelPlan;
use relax_trace::LockSite;

/// Default number of `(function, shapes)` specializations kept.
pub(crate) const DEFAULT_CAPACITY: usize = 64;

/// Number of independently versioned shards. Shard routing hashes the key
/// with a deterministic hasher, so the same key always lands on the same
/// shard in every VM sharing the cache.
const SHARD_COUNT: usize = 8;

/// Ticks a session reserves from the global LRU counter per refill, and
/// the stat-publication batch size.
const TICK_BATCH: u64 = 64;

static SHARD_READ_SITE: LockSite = LockSite::new("vm.plan_cache.shard_read");
static SHARD_WRITE_SITE: LockSite = LockSite::new("vm.plan_cache.shard_write");

/// A cache entry: a compiled plan, or a negative result.
#[derive(Debug, Clone)]
pub enum CachedPlan {
    /// A compiled shape-specialized plan, shared by every VM that hits
    /// this key.
    Ready(Arc<KernelPlan>),
    /// The planner refused this function; callers fall back to the
    /// interpreter without recompiling (and re-failing) per launch.
    Unplannable,
}

/// Owned cache key: `(function name, concrete argument dims)`.
#[derive(Debug, Clone)]
struct PlanKey {
    func: String,
    shapes: Vec<Vec<usize>>,
}

/// Borrowed view of a cache key, so lookups can probe the map with
/// `(&str, &[Vec<usize>])` without allocating an owned `PlanKey`.
trait KeyView {
    fn func(&self) -> &str;
    fn shapes(&self) -> &[Vec<usize>];
}

impl KeyView for PlanKey {
    fn func(&self) -> &str {
        &self.func
    }
    fn shapes(&self) -> &[Vec<usize>] {
        &self.shapes
    }
}

impl KeyView for (&str, &[Vec<usize>]) {
    fn func(&self) -> &str {
        self.0
    }
    fn shapes(&self) -> &[Vec<usize>] {
        self.1
    }
}

impl Hash for dyn KeyView + '_ {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.func().hash(state);
        self.shapes().hash(state);
    }
}

impl PartialEq for dyn KeyView + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.func() == other.func() && self.shapes() == other.shapes()
    }
}

impl Eq for dyn KeyView + '_ {}

// Route the owned key's Hash/Eq through the view so owned and borrowed
// probes are guaranteed to agree.
impl Hash for PlanKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (self as &dyn KeyView).hash(state)
    }
}

impl PartialEq for PlanKey {
    fn eq(&self, other: &Self) -> bool {
        (self as &dyn KeyView) == (other as &dyn KeyView)
    }
}

impl Eq for PlanKey {}

impl<'a> Borrow<dyn KeyView + 'a> for PlanKey {
    fn borrow(&self) -> &(dyn KeyView + 'a) {
        self
    }
}

/// An entry plus its last-touched tick. Entries are `Arc`-shared between
/// snapshots, so a recency touch through any (possibly stale) snapshot is
/// seen by the evictor.
#[derive(Debug)]
struct Entry {
    touched: AtomicU64,
    plan: CachedPlan,
}

type ShardMap = Arc<HashMap<PlanKey, Arc<Entry>>>;

/// One shard: an immutable published snapshot plus a version counter.
/// Mutators build a new map, publish it under the write lock, and bump
/// `version` (Release) so sessions detect staleness with one Acquire load.
#[derive(Debug)]
struct Shard {
    version: AtomicU64,
    map: RwLock<ShardMap>,
}

/// Point-in-time counters of a [`SharedPlanCache`]. When the cache is
/// shared, these aggregate over every VM using it (per-VM counts live in
/// [`crate::Telemetry`]). Session-batched counts appear here at flush
/// points (the VM flushes after every program run), where
/// `hits + misses == probes` always holds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups that found a cached plan.
    pub hits: u64,
    /// Lookups that found nothing (each triggers one compilation).
    pub misses: u64,
    /// Total counted lookups (`hits + misses` at every flush point).
    pub probes: u64,
    /// Entries evicted, least recently used first.
    pub evictions: u64,
    /// Entries currently cached (including negative entries).
    pub len: usize,
    /// Maximum entries kept.
    pub capacity: usize,
}

impl PlanCacheStats {
    /// Fraction of lookups that hit, in `[0, 1]`; `0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct CacheInner {
    shards: Vec<Shard>,
    tick: AtomicU64,
    len: AtomicUsize,
    capacity: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    probes: AtomicU64,
    evictions: AtomicU64,
}

/// A shape-keyed LRU plan cache that any number of VMs can share.
///
/// `Clone` is a cheap handle copy: all clones see the same entries and
/// counters, so a worker pool built from clones of one cache shares every
/// compiled plan. A `Vm` created with [`crate::Vm::new`] gets a private
/// cache; [`crate::Vm::from_parts`] accepts a shared one.
#[derive(Debug, Clone)]
pub struct SharedPlanCache {
    inner: Arc<CacheInner>,
}

/// Per-VM probe state: cached shard snapshots, a local LRU-tick batch and
/// batched hit/miss counters. Owned by one thread (the VM), never shared.
#[derive(Debug, Default)]
pub(crate) struct PlanCacheSession {
    /// Per shard: the snapshot and the version it was taken at.
    snapshots: Vec<Option<(u64, ShardMap)>>,
    /// Next tick to hand out, and how many remain before re-reserving.
    tick_next: u64,
    ticks_left: u64,
    /// Counts not yet published to the shared cache.
    pending_hits: u64,
    pending_misses: u64,
}

impl SharedPlanCache {
    /// Creates a cache holding at most `capacity` specializations
    /// (`0` disables caching entirely).
    pub fn new(capacity: usize) -> Self {
        SharedPlanCache {
            inner: Arc::new(CacheInner {
                shards: (0..SHARD_COUNT)
                    .map(|_| Shard {
                        version: AtomicU64::new(0),
                        map: RwLock::new(Arc::new(HashMap::new())),
                    })
                    .collect(),
                tick: AtomicU64::new(0),
                len: AtomicUsize::new(0),
                capacity: AtomicUsize::new(capacity),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                probes: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
            }),
        }
    }

    /// `true` if this handle and `other` share the same underlying cache.
    pub fn shares_with(&self, other: &SharedPlanCache) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// `false` means planning is disabled entirely (capacity 0).
    pub(crate) fn enabled(&self) -> bool {
        self.capacity() > 0
    }

    /// Maximum number of entries kept.
    pub fn capacity(&self) -> usize {
        self.inner.capacity.load(Ordering::Relaxed)
    }

    /// Number of plans (and negative entries) currently cached.
    pub fn len(&self) -> usize {
        self.inner.len.load(Ordering::Relaxed)
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate counters (across every VM sharing the cache). Counts a
    /// session has not yet flushed are not included; the VM flushes after
    /// every program run.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            probes: self.inner.probes.load(Ordering::Relaxed),
            evictions: self.inner.evictions.load(Ordering::Relaxed),
            len: self.len(),
            capacity: self.capacity(),
        }
    }

    /// Changes the capacity, evicting least-recently-used entries if the
    /// cache is now over budget. Returns how many entries were evicted.
    pub fn set_capacity(&self, capacity: usize) -> u64 {
        self.inner.capacity.store(capacity, Ordering::Relaxed);
        let mut evicted = 0;
        while self.len() > capacity && self.evict_lru() {
            evicted += 1;
        }
        evicted
    }

    /// A fresh probe session for one VM.
    pub(crate) fn session(&self) -> PlanCacheSession {
        PlanCacheSession {
            snapshots: (0..SHARD_COUNT).map(|_| None).collect(),
            ..PlanCacheSession::default()
        }
    }

    /// Publishes a session's batched hit/miss counts to the shared
    /// counters. After this, `stats()` satisfies `hits + misses == probes`
    /// with respect to everything this session counted.
    pub(crate) fn flush_session(&self, sess: &mut PlanCacheSession) {
        let (h, m) = (sess.pending_hits, sess.pending_misses);
        if h + m == 0 {
            return;
        }
        sess.pending_hits = 0;
        sess.pending_misses = 0;
        self.inner.hits.fetch_add(h, Ordering::Relaxed);
        self.inner.misses.fetch_add(m, Ordering::Relaxed);
        self.inner.probes.fetch_add(h + m, Ordering::Relaxed);
    }

    /// The shard index for a key. Uses the deterministic `DefaultHasher`
    /// seed (not the per-map random state) so every handle agrees.
    fn shard_of(key: &dyn KeyView) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % SHARD_COUNT
    }

    /// Session lookup: the hot path of `CallTir`. While the shard version
    /// is unchanged this takes **no lock and writes no shared atomic** —
    /// it probes the session's snapshot, stamps recency from the session's
    /// tick batch, and counts locally. A changed version refreshes the
    /// snapshot under one (instrumented) shard read lock.
    pub(crate) fn lookup_with(
        &self,
        sess: &mut PlanCacheSession,
        func: &str,
        shapes: &[Vec<usize>],
    ) -> Option<CachedPlan> {
        if !self.enabled() {
            return None;
        }
        let probe: &dyn KeyView = &(func, shapes);
        let si = Self::shard_of(probe);
        let shard = &self.inner.shards[si];
        let version = shard.version.load(Ordering::Acquire);
        let slot = &mut sess.snapshots[si];
        let stale = slot.as_ref().map(|(v, _)| *v != version).unwrap_or(true);
        if stale {
            let map = Arc::clone(&SHARD_READ_SITE.read(&shard.map));
            *slot = Some((version, map));
        }
        let map = &slot.as_ref().expect("snapshot just refreshed").1;

        if sess.ticks_left == 0 {
            sess.tick_next = self.inner.tick.fetch_add(TICK_BATCH, Ordering::Relaxed) + 1;
            sess.ticks_left = TICK_BATCH;
        }
        let tick = sess.tick_next;
        sess.tick_next += 1;
        sess.ticks_left -= 1;

        let found = map.get(probe).map(|entry| {
            entry.touched.store(tick, Ordering::Relaxed);
            entry.plan.clone()
        });
        if found.is_some() {
            sess.pending_hits += 1;
        } else {
            sess.pending_misses += 1;
        }
        if sess.pending_hits + sess.pending_misses >= TICK_BATCH {
            self.flush_session(sess);
        }
        self.trace_probe(func, shapes, found.is_some());
        found
    }

    /// Looks up `(func, shapes)` without a session: one shard read lock
    /// per probe, counters published immediately. Kept for callers that
    /// probe rarely (tests, tools); the VM hot path probes through its
    /// `PlanCacheSession` instead.
    pub fn lookup(&self, func: &str, shapes: &[Vec<usize>]) -> Option<CachedPlan> {
        if !self.enabled() {
            return None;
        }
        let probe: &dyn KeyView = &(func, shapes);
        let tick = self.inner.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let map = Arc::clone(&SHARD_READ_SITE.read(&self.inner.shards[Self::shard_of(probe)].map));
        let found = map.get(probe).map(|entry| {
            entry.touched.store(tick, Ordering::Relaxed);
            entry.plan.clone()
        });
        if found.is_some() {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inner.misses.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.probes.fetch_add(1, Ordering::Relaxed);
        self.trace_probe(func, shapes, found.is_some());
        found
    }

    fn trace_probe(&self, func: &str, shapes: &[Vec<usize>], hit: bool) {
        relax_trace::instant(
            "vm",
            || format!("plan_cache:{func}"),
            || relax_trace::Payload::Kernel {
                kernel: func.to_string(),
                shapes: relax_trace::shape_sig(shapes),
                cache: Some(if hit {
                    relax_trace::CacheOutcome::Hit
                } else {
                    relax_trace::CacheOutcome::Miss
                }),
            },
        );
    }

    /// Inserts a freshly compiled (or refused) plan, evicting
    /// least-recently-used entries once the cache is over capacity.
    /// Replacing a key that is already cached is *not* growth and evicts
    /// nothing. Returns how many entries were evicted.
    ///
    /// Mutation is copy-on-write: a new snapshot map is published and the
    /// shard version bumped, so sessions refresh on their next probe.
    pub fn insert(&self, func: &str, shapes: &[Vec<usize>], plan: CachedPlan) -> u64 {
        if !self.enabled() {
            return 0;
        }
        let tick = self.inner.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let probe: &dyn KeyView = &(func, shapes);
        let shard = &self.inner.shards[Self::shard_of(probe)];
        {
            let mut guard = SHARD_WRITE_SITE.write(&shard.map);
            let mut map: HashMap<PlanKey, Arc<Entry>> = (**guard).clone();
            let replacing = map
                .insert(
                    PlanKey {
                        func: func.to_string(),
                        shapes: shapes.to_vec(),
                    },
                    Arc::new(Entry {
                        touched: AtomicU64::new(tick),
                        plan,
                    }),
                )
                .is_some();
            *guard = Arc::new(map);
            shard.version.fetch_add(1, Ordering::Release);
            if replacing {
                // In-place replacement: same key, no growth, no eviction.
                return 0;
            }
            self.inner.len.fetch_add(1, Ordering::Relaxed);
        }
        let mut evicted = 0;
        while self.len() > self.capacity() && self.evict_lru() {
            evicted += 1;
        }
        evicted
    }

    /// Evicts the globally least-recently-touched entry. `false` if the
    /// cache was empty.
    fn evict_lru(&self) -> bool {
        // Find the globally oldest entry from the published snapshots.
        let mut oldest: Option<(usize, u64, PlanKey)> = None;
        for (i, shard) in self.inner.shards.iter().enumerate() {
            let map = Arc::clone(&SHARD_READ_SITE.read(&shard.map));
            for (key, entry) in map.iter() {
                let t = entry.touched.load(Ordering::Relaxed);
                if oldest.as_ref().map(|(_, ot, _)| t < *ot).unwrap_or(true) {
                    oldest = Some((i, t, key.clone()));
                }
            }
        }
        let Some((i, _, key)) = oldest else {
            return false;
        };
        let shard = &self.inner.shards[i];
        let mut guard = SHARD_WRITE_SITE.write(&shard.map);
        let mut map: HashMap<PlanKey, Arc<Entry>> = (**guard).clone();
        if map.remove(&key as &dyn KeyView).is_some() {
            *guard = Arc::new(map);
            shard.version.fetch_add(1, Ordering::Release);
            self.inner.len.fetch_sub(1, Ordering::Relaxed);
            self.inner.evictions.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            // Lost a race with another evictor; report progress anyway so
            // callers re-check the length.
            true
        }
    }
}

impl Default for SharedPlanCache {
    fn default() -> Self {
        SharedPlanCache::new(DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_touched() {
        let c = SharedPlanCache::new(2);
        c.insert("a", &[vec![1]], CachedPlan::Unplannable);
        c.insert("b", &[vec![1]], CachedPlan::Unplannable);
        assert!(c.lookup("a", &[vec![1]]).is_some()); // refresh a
        c.insert("c", &[vec![1]], CachedPlan::Unplannable); // evicts b
        assert_eq!(c.stats().evictions, 1);
        assert!(c.lookup("a", &[vec![1]]).is_some());
        assert!(c.lookup("b", &[vec![1]]).is_none());
        assert!(c.lookup("c", &[vec![1]]).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let c = SharedPlanCache::new(0);
        assert!(!c.enabled());
        c.insert("a", &[vec![1]], CachedPlan::Unplannable);
        assert!(c.lookup("a", &[vec![1]]).is_none());
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats().misses, 0); // disabled lookups are not counted
    }

    #[test]
    fn shrinking_capacity_evicts() {
        let c = SharedPlanCache::new(4);
        for name in ["a", "b", "c", "d"] {
            c.insert(name, &[vec![2, 2]], CachedPlan::Unplannable);
        }
        let evicted = c.set_capacity(1);
        assert_eq!(evicted, 3);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().evictions, 3);
    }

    /// Regression: replacing an existing key while at capacity must not
    /// evict anything — replacement is not growth. The old code evicted
    /// the LRU entry first, which at capacity 1 was the very entry being
    /// replaced.
    #[test]
    fn replacing_existing_key_at_capacity_evicts_nothing() {
        let c = SharedPlanCache::new(1);
        c.insert("a", &[vec![4]], CachedPlan::Unplannable);
        let evicted = c.insert("a", &[vec![4]], CachedPlan::Unplannable);
        assert_eq!(evicted, 0);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.len(), 1);
        assert!(c.lookup("a", &[vec![4]]).is_some());

        // Same at capacity 2 with a second live entry: the untouched
        // neighbour must survive the replacement.
        let c = SharedPlanCache::new(2);
        c.insert("a", &[vec![4]], CachedPlan::Unplannable);
        c.insert("b", &[vec![8]], CachedPlan::Unplannable);
        c.insert("a", &[vec![4]], CachedPlan::Unplannable);
        assert_eq!(c.stats().evictions, 0);
        assert!(c.lookup("b", &[vec![8]]).is_some());
    }

    #[test]
    fn clones_share_entries_and_counters() {
        let a = SharedPlanCache::new(4);
        let b = a.clone();
        assert!(a.shares_with(&b));
        a.insert("f", &[vec![2]], CachedPlan::Unplannable);
        assert!(b.lookup("f", &[vec![2]]).is_some());
        let s = a.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.len, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12 || s.misses == 0);
    }

    #[test]
    fn concurrent_lookups_and_inserts_stay_consistent() {
        let c = SharedPlanCache::new(8);
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..200usize {
                        let shapes = vec![vec![i % 16]];
                        let name = if t % 2 == 0 { "even" } else { "odd" };
                        if c.lookup(name, &shapes).is_none() {
                            c.insert(name, &shapes, CachedPlan::Unplannable);
                        }
                    }
                });
            }
        });
        assert!(c.len() <= 8);
        let s = c.stats();
        assert!(s.hits + s.misses >= 800);
        assert_eq!(s.probes, s.hits + s.misses);
    }

    #[test]
    fn session_probe_is_lock_free_on_unchanged_version_and_flushes_batched() {
        let c = SharedPlanCache::new(8);
        c.insert("f", &[vec![2]], CachedPlan::Unplannable);
        let mut sess = c.session();
        // First probe refreshes the snapshot; the rest ride it.
        for _ in 0..10 {
            assert!(c.lookup_with(&mut sess, "f", &[vec![2]]).is_some());
        }
        assert!(c.lookup_with(&mut sess, "g", &[vec![2]]).is_none());
        // Counts are still pending (batch not reached, no flush yet).
        assert_eq!(c.stats().hits, 0);
        c.flush_session(&mut sess);
        let s = c.stats();
        assert_eq!(s.hits, 10);
        assert_eq!(s.misses, 1);
        assert_eq!(s.probes, 11);
        // Flushing twice publishes nothing extra.
        c.flush_session(&mut sess);
        assert_eq!(c.stats().probes, 11);
    }

    #[test]
    fn session_sees_inserts_via_version_bump() {
        let c = SharedPlanCache::new(8);
        let mut sess = c.session();
        assert!(c.lookup_with(&mut sess, "f", &[vec![3]]).is_none());
        c.insert("f", &[vec![3]], CachedPlan::Unplannable);
        // The insert bumped the shard version: the stale snapshot is
        // refreshed and the new entry is visible.
        assert!(c.lookup_with(&mut sess, "f", &[vec![3]]).is_some());
    }

    #[test]
    fn session_tick_batches_keep_recency_exact_within_a_session() {
        let c = SharedPlanCache::new(2);
        c.insert("a", &[vec![1]], CachedPlan::Unplannable);
        c.insert("b", &[vec![1]], CachedPlan::Unplannable);
        let mut sess = c.session();
        // Touch `a` through the session, then insert `c`: `b` is the LRU.
        assert!(c.lookup_with(&mut sess, "a", &[vec![1]]).is_some());
        c.insert("c", &[vec![1]], CachedPlan::Unplannable);
        assert!(c.lookup("a", &[vec![1]]).is_some());
        assert!(c.lookup("b", &[vec![1]]).is_none());
        c.flush_session(&mut sess);
    }
}
