//! Shape-keyed LRU cache of compiled kernel plans.
//!
//! `CallTir` launches are keyed by `(function name, concrete argument
//! dims)`; the first launch of a key pays one plan compilation, every
//! subsequent launch at the same shapes reuses the cached
//! [`KernelPlan`]. Functions the planner cannot express are cached as
//! [`CachedPlan::Unplannable`] so the interpreter fallback does not
//! recompile (and re-fail) per launch. Eviction is least-recently-used via
//! a monotonic touch tick.

use std::collections::HashMap;
use std::rc::Rc;

use relax_tir::KernelPlan;

/// Default number of `(function, shapes)` specializations kept.
pub(crate) const DEFAULT_CAPACITY: usize = 64;

/// A cache entry: a compiled plan, or a negative result.
#[derive(Debug, Clone)]
pub(crate) enum CachedPlan {
    Ready(Rc<KernelPlan>),
    Unplannable,
}

/// Cache key: `(function name, concrete argument dims)`.
type PlanKey = (String, Vec<Vec<usize>>);

#[derive(Debug)]
pub(crate) struct PlanCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<PlanKey, (u64, CachedPlan)>,
    pub(crate) hits: u64,
    pub(crate) misses: u64,
    pub(crate) evictions: u64,
}

impl PlanCache {
    pub(crate) fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            tick: 0,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// `false` means planning is disabled entirely (capacity 0).
    pub(crate) fn enabled(&self) -> bool {
        self.capacity > 0
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Changes the capacity, evicting least-recently-used entries if the
    /// cache is now over budget.
    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.entries.len() > self.capacity {
            self.evict_lru();
        }
    }

    /// Looks up `(func, shapes)`, counting a hit or a miss and refreshing
    /// recency on hit.
    pub(crate) fn lookup(&mut self, func: &str, shapes: &[Vec<usize>]) -> Option<CachedPlan> {
        if !self.enabled() {
            return None;
        }
        self.tick += 1;
        let key = (func.to_string(), shapes.to_vec());
        match self.entries.get_mut(&key) {
            Some((touched, plan)) => {
                *touched = self.tick;
                self.hits += 1;
                Some(plan.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly compiled (or refused) plan, evicting the
    /// least-recently-used entry when full.
    pub(crate) fn insert(&mut self, func: &str, shapes: &[Vec<usize>], plan: CachedPlan) {
        if !self.enabled() {
            return;
        }
        while self.entries.len() >= self.capacity {
            self.evict_lru();
        }
        self.tick += 1;
        self.entries
            .insert((func.to_string(), shapes.to_vec()), (self.tick, plan));
    }

    fn evict_lru(&mut self) {
        let oldest = self
            .entries
            .iter()
            .min_by_key(|(_, (touched, _))| *touched)
            .map(|(k, _)| k.clone());
        if let Some(k) = oldest {
            self.entries.remove(&k);
            self.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_touched() {
        let mut c = PlanCache::new(2);
        c.insert("a", &[vec![1]], CachedPlan::Unplannable);
        c.insert("b", &[vec![1]], CachedPlan::Unplannable);
        assert!(c.lookup("a", &[vec![1]]).is_some()); // refresh a
        c.insert("c", &[vec![1]], CachedPlan::Unplannable); // evicts b
        assert_eq!(c.evictions, 1);
        assert!(c.lookup("a", &[vec![1]]).is_some());
        assert!(c.lookup("b", &[vec![1]]).is_none());
        assert!(c.lookup("c", &[vec![1]]).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = PlanCache::new(0);
        assert!(!c.enabled());
        c.insert("a", &[vec![1]], CachedPlan::Unplannable);
        assert!(c.lookup("a", &[vec![1]]).is_none());
        assert_eq!(c.len(), 0);
        assert_eq!(c.misses, 0); // disabled lookups are not counted
    }

    #[test]
    fn shrinking_capacity_evicts() {
        let mut c = PlanCache::new(4);
        for name in ["a", "b", "c", "d"] {
            c.insert(name, &[vec![2, 2]], CachedPlan::Unplannable);
        }
        c.set_capacity(1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.evictions, 3);
    }
}
