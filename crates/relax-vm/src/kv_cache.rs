//! First-class paged KV caches: the runtime object behind the
//! `vm.builtin.kv_cache.*` builtins.
//!
//! The copy-based `vm.builtin.kv_append` kernel materializes a fresh
//! `(b, h, s+n, hd)` tensor every decode step — O(s²) data movement per
//! sequence over a generation. A [`KvCache`] instead owns fixed-size
//! pages acquired from a shared [`KvPagePool`] (one block table per
//! stream; a stream is one layer's K or V), appends **in place** into
//! the tail page, and serves attention directly over the pages. The
//! copy-based kernel stays registered as the differential-test oracle:
//! the paged path is asserted bitwise-equal to it.
//!
//! Bit-exactness contract: [`KvCache::attention`] mirrors the TIR
//! program produced by `relax_core::legalize` for `Op::Attention` —
//! same five passes, same loop structure, same f32 rounding on every
//! store into the local `scores`/`row_max`/`row_sum` buffers, the same
//! `-1e9` causal mask and grouped-query head mapping — so a paged
//! decode step produces exactly the bits the legalized kernel produces
//! on the gathered cache.

use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

use relax_arith::DataType;
use relax_tir::{round_to_dtype, NDArray, Scalar};

use crate::memory::KvPagePool;
use crate::registry::KernelError;
use crate::value::Value;

/// Name prefix of the builtins the VM routes to [`dispatch`] instead of
/// the tensor-only registry path.
pub const KV_CACHE_PREFIX: &str = "vm.builtin.kv_cache.";

/// Fixed geometry of one cache: every stream holds `(batch, heads,
/// <tokens>, head_dim)` data paged into `(batch, heads, page_tokens,
/// head_dim)` blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvCacheConfig {
    /// Number of independent streams (2 per transformer layer: K and V).
    pub streams: usize,
    /// Batch dimension of every stream.
    pub batch: usize,
    /// KV head count.
    pub heads: usize,
    /// Head dimension.
    pub head_dim: usize,
    /// Element dtype of the cached tensors.
    pub dtype: DataType,
}

struct StreamState {
    /// Logical token count (pages may hold more rows than this).
    len: usize,
    /// The block table: page `i` holds tokens `[i*P, (i+1)*P)`.
    pages: Vec<NDArray>,
}

struct CacheInner {
    cfg: KvCacheConfig,
    pool: Arc<KvPagePool>,
    streams: Mutex<Vec<StreamState>>,
}

impl Drop for CacheInner {
    fn drop(&mut self) {
        let streams = self
            .streams
            .get_mut()
            .map(std::mem::take)
            .unwrap_or_default();
        for st in streams {
            for page in st.pages {
                self.pool.release(page);
            }
        }
    }
}

/// A shared handle to one session's paged KV cache.
///
/// Cloning the handle aliases the same pages (the VM passes it through
/// registers by clone); the last clone to drop releases every page back
/// to the pool — the accounting the chaos harness reconciles.
#[derive(Clone)]
pub struct KvCache {
    inner: Arc<CacheInner>,
}

impl fmt::Debug for KvCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "KvCache(streams={}, lens={:?}, pages={})",
            self.inner.cfg.streams,
            self.lens(),
            self.pages_held()
        )
    }
}

fn kerr(op: &str, detail: impl Into<String>) -> KernelError {
    KernelError {
        kernel: format!("{KV_CACHE_PREFIX}{op}"),
        detail: detail.into(),
    }
}

impl KvCache {
    /// Creates an empty cache drawing pages from `pool`.
    pub fn new(cfg: KvCacheConfig, pool: Arc<KvPagePool>) -> Self {
        let streams = (0..cfg.streams)
            .map(|_| StreamState {
                len: 0,
                pages: Vec::new(),
            })
            .collect();
        KvCache {
            inner: Arc::new(CacheInner {
                cfg,
                pool,
                streams: Mutex::new(streams),
            }),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> KvCacheConfig {
        self.inner.cfg
    }

    /// The pool this cache draws pages from.
    pub fn pool(&self) -> &Arc<KvPagePool> {
        &self.inner.pool
    }

    fn lock(&self) -> MutexGuard<'_, Vec<StreamState>> {
        self.inner
            .streams
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn page_shape(&self) -> [usize; 4] {
        let c = &self.inner.cfg;
        [c.batch, c.heads, self.inner.pool.page_tokens(), c.head_dim]
    }

    /// Logical token count of one stream.
    pub fn len(&self, stream: usize) -> usize {
        self.lock().get(stream).map(|s| s.len).unwrap_or(0)
    }

    /// `true` when no stream holds any token.
    pub fn is_empty(&self) -> bool {
        self.lock().iter().all(|s| s.len == 0)
    }

    /// Logical token count of every stream.
    pub fn lens(&self) -> Vec<usize> {
        self.lock().iter().map(|s| s.len).collect()
    }

    /// Total pages currently held across all streams.
    pub fn pages_held(&self) -> usize {
        self.lock().iter().map(|s| s.pages.len()).sum()
    }

    /// Appends `new` (`(batch, heads, n, head_dim)`) in place onto a
    /// stream's pages, acquiring tail pages from the pool as needed.
    ///
    /// # Errors
    ///
    /// Shape/dtype mismatches and pool exhaustion surface as
    /// [`KernelError`]; on exhaustion no partial append is left behind.
    pub fn append(&self, stream: usize, new: &NDArray) -> Result<(), KernelError> {
        const OP: &str = "append_paged";
        let cfg = self.inner.cfg;
        let ns = new.shape().to_vec();
        if ns.len() != 4 || ns[0] != cfg.batch || ns[1] != cfg.heads || ns[3] != cfg.head_dim {
            return Err(kerr(
                OP,
                format!(
                    "appended tensor {ns:?} does not match cache geometry (batch={}, heads={}, head_dim={})",
                    cfg.batch, cfg.heads, cfg.head_dim
                ),
            ));
        }
        if new.dtype() != cfg.dtype {
            return Err(kerr(
                OP,
                format!("appended dtype {} != cache dtype {}", new.dtype(), cfg.dtype),
            ));
        }
        let n = ns[2];
        let (b, h, hd) = (cfg.batch, cfg.heads, cfg.head_dim);
        let p = self.inner.pool.page_tokens();
        let page_shape = self.page_shape();
        let mut streams = self.lock();
        let n_streams = streams.len();
        let st = streams
            .get_mut(stream)
            .ok_or_else(|| kerr(OP, format!("stream {stream} out of range ({n_streams})")))?;
        // Acquire every page up front so exhaustion cannot leave a
        // half-appended stream: new pages are released again on failure.
        let needed = (st.len + n).div_ceil(p);
        let mut fresh: Vec<NDArray> = Vec::new();
        while st.pages.len() + fresh.len() < needed {
            match self.inner.pool.acquire(&page_shape, cfg.dtype) {
                Ok(page) => fresh.push(page),
                Err(e) => {
                    for page in fresh {
                        self.inner.pool.release(page);
                    }
                    return Err(kerr(OP, e.to_string()));
                }
            }
        }
        st.pages.append(&mut fresh);
        let mut t = 0usize;
        while t < n {
            let pos = st.len + t;
            let page = &st.pages[pos / p];
            let row = pos % p;
            let run = (p - row).min(n - t);
            for bi in 0..b {
                for hi in 0..h {
                    let dst = ((bi * h + hi) * p + row) * hd;
                    let src = ((bi * h + hi) * n + t) * hd;
                    page.copy_range_from(dst, new, src, run * hd)
                        .map_err(|e| kerr(OP, e.to_string()))?;
                }
            }
            t += run;
        }
        st.len += n;
        Ok(())
    }

    /// Gathers one stream into a fresh contiguous `(batch, heads, len,
    /// head_dim)` tensor — the extraction/differential-test path; the
    /// decode hot path never calls this.
    ///
    /// # Errors
    ///
    /// Returns a [`KernelError`] for an out-of-range stream.
    pub fn view(&self, stream: usize) -> Result<NDArray, KernelError> {
        const OP: &str = "view";
        let cfg = self.inner.cfg;
        let (b, h, hd) = (cfg.batch, cfg.heads, cfg.head_dim);
        let p = self.inner.pool.page_tokens();
        let streams = self.lock();
        let n_streams = streams.len();
        let st = streams
            .get(stream)
            .ok_or_else(|| kerr(OP, format!("stream {stream} out of range ({n_streams})")))?;
        let len = st.len;
        let out = NDArray::zeros(&[b, h, len, hd], cfg.dtype);
        let mut t = 0usize;
        while t < len {
            let page = &st.pages[t / p];
            let row = t % p;
            let run = (p - row).min(len - t);
            for bi in 0..b {
                for hi in 0..h {
                    let dst = ((bi * h + hi) * len + t) * hd;
                    let src = ((bi * h + hi) * p + row) * hd;
                    out.copy_range_from(dst, page, src, run * hd)
                        .map_err(|e| kerr(OP, e.to_string()))?;
                }
            }
            t += run;
        }
        Ok(out)
    }

    /// Rolls every stream back to a previously captured length (see
    /// [`KvCache::lens`]), releasing pages that become empty. The
    /// serving scheduler uses this to undo a partially appended
    /// iteration before retrying it after a worker crash, so the retry
    /// cannot double-append.
    ///
    /// # Errors
    ///
    /// Returns a [`KernelError`] when `lens` disagrees with the stream
    /// count or would *grow* a stream.
    pub fn truncate_to(&self, lens: &[usize]) -> Result<(), KernelError> {
        const OP: &str = "truncate";
        let p = self.inner.pool.page_tokens();
        let mut streams = self.lock();
        if lens.len() != streams.len() {
            return Err(kerr(
                OP,
                format!("{} lengths for {} streams", lens.len(), streams.len()),
            ));
        }
        for (st, &target) in streams.iter_mut().zip(lens) {
            if target > st.len {
                return Err(kerr(
                    OP,
                    format!("cannot grow a stream from {} to {target}", st.len),
                ));
            }
            st.len = target;
            let keep = target.div_ceil(p);
            while st.pages.len() > keep {
                let page = st.pages.pop().expect("len checked");
                self.inner.pool.release(page);
            }
        }
        Ok(())
    }

    /// Computes attention of `q` (`(batch, q_heads, s, head_dim)`)
    /// against the K/V streams, reading pages directly — no per-step
    /// gather of the cache into a contiguous tensor.
    ///
    /// Bitwise-mirrors the legalized `Op::Attention` tensor program:
    /// five passes over f32 local buffers with per-store rounding, the
    /// causal mask `j <= i + skv - s` with `-1e9` fill, grouped-query
    /// head mapping `kv_head = h / (q_heads / kv_heads)`, and the scale
    /// `1 / sqrt(head_dim)` the models pass to `Op::Attention`.
    ///
    /// # Errors
    ///
    /// Returns a [`KernelError`] for geometry mismatches, empty or
    /// unequal K/V streams.
    pub fn attention(
        &self,
        q: &NDArray,
        k_stream: usize,
        v_stream: usize,
        causal: bool,
    ) -> Result<NDArray, KernelError> {
        const OP: &str = "attention";
        let cfg = self.inner.cfg;
        let qs = q.shape().to_vec();
        if qs.len() != 4 || qs[0] != cfg.batch || qs[3] != cfg.head_dim {
            return Err(kerr(
                OP,
                format!(
                    "query {qs:?} does not match cache geometry (batch={}, head_dim={})",
                    cfg.batch, cfg.head_dim
                ),
            ));
        }
        let (b, hq, s, hd) = (qs[0], qs[1], qs[2], qs[3]);
        let hkv = cfg.heads;
        if hkv == 0 || hq % hkv != 0 {
            return Err(kerr(
                OP,
                format!("query heads {hq} not a multiple of kv heads {hkv}"),
            ));
        }
        let group = hq / hkv;
        let streams = self.lock();
        let n_streams = streams.len();
        let (kst, vst) = match (streams.get(k_stream), streams.get(v_stream)) {
            (Some(k), Some(v)) => (k, v),
            _ => {
                return Err(kerr(
                    OP,
                    format!("streams ({k_stream}, {v_stream}) out of range ({n_streams})"),
                ))
            }
        };
        let skv = kst.len;
        if vst.len != skv {
            return Err(kerr(
                OP,
                format!("K length {skv} != V length {}", vst.len),
            ));
        }
        if skv == 0 {
            return Err(kerr(OP, "attention over empty streams"));
        }
        let p = self.inner.pool.page_tokens();
        // Flatten pages once per call (f64 host values, already rounded
        // on store, so the bits match a gathered tensor exactly).
        let gather = |st: &StreamState| -> Vec<f64> {
            let len = st.len;
            let mut out = vec![0.0f64; b * hkv * len * hd];
            for (pi, page) in st.pages.iter().enumerate() {
                let rows = (len.saturating_sub(pi * p)).min(p);
                if rows == 0 {
                    break;
                }
                let pv = page.to_f64_vec();
                for bi in 0..b {
                    for hi in 0..hkv {
                        let src = (bi * hkv + hi) * p * hd;
                        let dst = ((bi * hkv + hi) * len + pi * p) * hd;
                        out[dst..dst + rows * hd].copy_from_slice(&pv[src..src + rows * hd]);
                    }
                }
            }
            out
        };
        let kv = gather(kst);
        let vv = gather(vst);
        drop(streams);
        let qv = q.to_f64_vec();
        let scale = 1.0 / (hd as f64).sqrt();
        let r32 = |x: f64| round_to_dtype(x, DataType::F32);
        let odt = q.dtype();
        let out = NDArray::zeros(&[b, hq, s, hd], odt);

        // Local f32 buffers, exactly like the legalized kernel.
        let mut scores = vec![0.0f64; b * hq * s * skv];
        // Pass 1: scores[b,h,i,j] = sum_kd q·k with per-step rounding.
        for bi in 0..b {
            for hi in 0..hq {
                let kvh = if group == 1 { hi } else { hi / group };
                for i in 0..s {
                    let q_base = ((bi * hq + hi) * s + i) * hd;
                    for j in 0..skv {
                        let k_base = ((bi * hkv + kvh) * skv + j) * hd;
                        let mut acc = 0.0f64;
                        for kd in 0..hd {
                            acc = r32(acc + qv[q_base + kd] * kv[k_base + kd]);
                        }
                        scores[((bi * hq + hi) * s + i) * skv + j] = acc;
                    }
                }
            }
        }
        // Pass 2: scale + causal mask (both branches in f64, one store).
        for bi in 0..b {
            for hi in 0..hq {
                for i in 0..s {
                    for j in 0..skv {
                        let idx = ((bi * hq + hi) * s + i) * skv + j;
                        let scaled = scores[idx] * scale;
                        let masked = if causal {
                            let allowed = (j as i64) <= (i as i64) + (skv as i64) - (s as i64);
                            if allowed {
                                scaled
                            } else {
                                -1e9
                            }
                        } else {
                            scaled
                        };
                        scores[idx] = r32(masked);
                    }
                }
            }
        }
        // Passes 3-5 share the (b,h,i) row loop; each pass folds over j
        // in the same order as the legalized grid.
        for bi in 0..b {
            for hi in 0..hq {
                let kvh = if group == 1 { hi } else { hi / group };
                for i in 0..s {
                    let row = ((bi * hq + hi) * s + i) * skv;
                    // Pass 3: row max.
                    let mut rm = r32(f64::NEG_INFINITY);
                    for j in 0..skv {
                        rm = r32(rm.max(scores[row + j]));
                    }
                    // Pass 4: exp-sum.
                    let mut rs = 0.0f64;
                    for j in 0..skv {
                        rs = r32(rs + (scores[row + j] - rm).exp());
                    }
                    // Pass 5: weighted sum over V, accumulated in the
                    // output dtype (j innermost, like the grid).
                    let o_base = ((bi * hq + hi) * s + i) * hd;
                    for kd in 0..hd {
                        let mut acc = round_to_dtype(0.0, odt);
                        for j in 0..skv {
                            let w = (scores[row + j] - rm).exp() / rs;
                            let v_el = vv[((bi * hkv + kvh) * skv + j) * hd + kd];
                            acc = round_to_dtype(acc + w * v_el, odt);
                        }
                        out.set(o_base + kd, Scalar::F(acc))
                            .map_err(|e| kerr(OP, e.to_string()))?;
                    }
                }
            }
        }
        Ok(out)
    }
}

fn want_cache<'a>(op: &str, v: Option<&'a Value>) -> Result<&'a KvCache, KernelError> {
    match v {
        Some(Value::KvCache(c)) => Ok(c),
        Some(other) => Err(kerr(op, format!("expected a kv_cache, got {}", other.kind()))),
        None => Err(kerr(op, "missing kv_cache argument")),
    }
}

fn want_tensor<'a>(op: &str, v: Option<&'a Value>) -> Result<&'a NDArray, KernelError> {
    match v {
        Some(Value::Tensor(t)) => Ok(t),
        Some(other) => Err(kerr(op, format!("expected a tensor, got {}", other.kind()))),
        None => Err(kerr(op, "missing tensor argument")),
    }
}

fn want_shape<'a>(op: &str, v: Option<&'a Value>, dims: usize) -> Result<&'a [i64], KernelError> {
    match v {
        Some(Value::Shape(d)) if d.len() == dims => Ok(d),
        Some(Value::Shape(d)) => Err(kerr(
            op,
            format!("expected a shape of {dims} dims, got {}", d.len()),
        )),
        Some(other) => Err(kerr(op, format!("expected a shape, got {}", other.kind()))),
        None => Err(kerr(op, "missing shape argument")),
    }
}

fn dim(op: &str, d: i64, what: &str) -> Result<usize, KernelError> {
    usize::try_from(d).map_err(|_| kerr(op, format!("negative {what}: {d}")))
}

/// Decodes the dtype code used by `kv_cache.create` shape args.
fn dtype_from_code(op: &str, code: i64) -> Result<DataType, KernelError> {
    match code {
        0 => Ok(DataType::F32),
        1 => Ok(DataType::F16),
        other => Err(kerr(op, format!("unknown dtype code {other} (0=f32, 1=f16)"))),
    }
}

/// Executes one `vm.builtin.kv_cache.<op>` builtin on register values.
/// Called by the VM's `CallBuiltin` arm before the tensor-only registry
/// path; `pool` is the VM's shared page pool.
///
/// # Errors
///
/// Returns a [`KernelError`] on unknown ops or argument/geometry
/// mismatches.
pub fn dispatch(op: &str, args: &[Value], pool: &Arc<KvPagePool>) -> Result<Value, KernelError> {
    match op {
        // create(shape[streams, batch, heads, head_dim, dtype_code])
        "create" => {
            let d = want_shape(op, args.first(), 5)?;
            let cfg = KvCacheConfig {
                streams: dim(op, d[0], "stream count")?,
                batch: dim(op, d[1], "batch")?,
                heads: dim(op, d[2], "head count")?,
                head_dim: dim(op, d[3], "head dim")?,
                dtype: dtype_from_code(op, d[4])?,
            };
            Ok(Value::KvCache(KvCache::new(cfg, Arc::clone(pool))))
        }
        // append_paged(cache, new, shape[stream]) -> cache
        "append_paged" => {
            let cache = want_cache(op, args.first())?;
            let new = want_tensor(op, args.get(1))?;
            let d = want_shape(op, args.get(2), 1)?;
            cache.append(dim(op, d[0], "stream")?, new)?;
            Ok(Value::KvCache(cache.clone()))
        }
        // view(cache, shape[stream]) -> tensor
        "view" => {
            let cache = want_cache(op, args.first())?;
            let d = want_shape(op, args.get(1), 1)?;
            Ok(Value::Tensor(cache.view(dim(op, d[0], "stream")?)?))
        }
        // attention(q, cache, shape[k_stream, v_stream, causal]) -> tensor
        "attention" => {
            let q = want_tensor(op, args.first())?;
            let cache = want_cache(op, args.get(1))?;
            let d = want_shape(op, args.get(2), 3)?;
            let out = cache.attention(
                q,
                dim(op, d[0], "k stream")?,
                dim(op, d[1], "v stream")?,
                d[2] != 0,
            )?;
            Ok(Value::Tensor(out))
        }
        other => Err(kerr(other, "unknown kv_cache builtin")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn rand_tensor(shape: &[usize], seed: &mut u64) -> NDArray {
        let n: usize = shape.iter().product();
        // f32-rounded, like every kernel-produced tensor in the pipeline.
        let vals: Vec<f64> = (0..n)
            .map(|_| {
                round_to_dtype(
                    (xorshift(seed) as f64 / u64::MAX as f64) * 2.0 - 1.0,
                    DataType::F32,
                )
            })
            .collect();
        NDArray::from_f64(shape, DataType::F32, vals).unwrap()
    }

    fn tiny_cache(pool: &Arc<KvPagePool>) -> KvCache {
        KvCache::new(
            KvCacheConfig {
                streams: 2,
                batch: 2,
                heads: 2,
                head_dim: 4,
                dtype: DataType::F32,
            },
            Arc::clone(pool),
        )
    }

    /// Random chunked appends through pages match the copy-based
    /// `vm.builtin.kv_append` oracle bitwise, page-boundary crossings
    /// included.
    #[test]
    fn paged_append_matches_copy_oracle_bitwise() {
        let registry = Registry::new();
        let pool = Arc::new(KvPagePool::unbounded(3)); // odd size: crossings
        let cache = tiny_cache(&pool);
        let mut seed = 0xC0FFEE;
        let mut oracle = NDArray::zeros(&[2, 2, 0, 4], DataType::F32);
        for chunk in [1usize, 4, 2, 3, 1, 5] {
            let new = rand_tensor(&[2, 2, chunk, 4], &mut seed);
            cache.append(0, &new).unwrap();
            let grown = NDArray::zeros(
                &[2, 2, oracle.shape()[2] + chunk, 4],
                DataType::F32,
            );
            registry
                .call_lib(
                    "vm.builtin.kv_append",
                    &[oracle.clone(), new],
                    std::slice::from_ref(&grown),
                )
                .unwrap();
            oracle = grown;
            assert_eq!(cache.view(0).unwrap(), oracle);
        }
        assert_eq!(cache.len(0), 16);
        assert_eq!(cache.len(1), 0);
        // 16 tokens at 3 tokens/page = 6 pages for stream 0.
        assert_eq!(cache.pages_held(), 6);
    }

    /// The paged attention builtin is bitwise-identical to the TIR
    /// program `relax_core::legalize` emits for `Op::Attention`, run by
    /// the reference interpreter — GQA and causal masking included.
    #[test]
    fn paged_attention_matches_legalized_tir_bitwise() {
        use relax_core::{legalize, Op, OpAttrs, StructInfo};
        use relax_tir::interp;

        let (b, hq, hkv, hd) = (2usize, 4usize, 2usize, 8usize);
        let pool = Arc::new(KvPagePool::unbounded(3));
        let cache = KvCache::new(
            KvCacheConfig {
                streams: 2,
                batch: b,
                heads: hkv,
                head_dim: hd,
                dtype: DataType::F32,
            },
            Arc::clone(&pool),
        );
        let mut seed = 0xBADBEEF;
        for (s, skv_extra, causal) in [(1usize, 6usize, true), (3, 4, true), (2, 5, false)] {
            // Grow the cache so skv = s + skv_extra, appending in chunks.
            let cache = cache.clone();
            let pre = rand_tensor(&[b, hkv, skv_extra, hd], &mut seed);
            let step = rand_tensor(&[b, hkv, s, hd], &mut seed);
            let base = cache.lens();
            cache.append(0, &pre).unwrap();
            cache.append(0, &step).unwrap();
            cache.append(1, &pre).unwrap();
            cache.append(1, &step).unwrap();
            let q = rand_tensor(&[b, hq, s, hd], &mut seed);
            let got = cache.attention(&q, 0, 1, causal).unwrap();

            // Oracle: legalized Op::Attention on the gathered streams.
            let skv = s + skv_extra + base[0];
            let sinfo = |h: usize, n: usize| {
                StructInfo::tensor(
                    vec![
                        (b as i64).into(),
                        (h as i64).into(),
                        (n as i64).into(),
                        (hd as i64).into(),
                    ],
                    DataType::F32,
                )
            };
            let mut attrs = OpAttrs::new();
            attrs.insert("scale".into(), format!("{}", 1.0 / (hd as f64).sqrt()));
            attrs.insert("causal".into(), if causal { "true" } else { "false" }.into());
            let prim = legalize(
                Op::Attention,
                &attrs,
                &[sinfo(hq, s), sinfo(hkv, skv), sinfo(hkv, skv)],
                "attn_oracle",
            )
            .unwrap();
            let expected = NDArray::zeros(&[b, hq, s, hd], DataType::F32);
            interp::run(
                &prim,
                &[
                    q,
                    cache.view(0).unwrap(),
                    cache.view(1).unwrap(),
                    expected.clone(),
                ],
            )
            .unwrap();
            assert_eq!(got, expected, "s={s} skv={skv} causal={causal}");
        }
    }

    /// Truncation rolls back logical lengths, releases now-empty pages,
    /// and re-appending after the rollback reproduces identical bits.
    #[test]
    fn truncate_releases_pages_and_replays_bitwise() {
        let pool = Arc::new(KvPagePool::with_capacity(2, 64));
        let cache = tiny_cache(&pool);
        let mut seed = 42;
        let a = rand_tensor(&[2, 2, 3, 4], &mut seed);
        let tail = rand_tensor(&[2, 2, 2, 4], &mut seed);
        cache.append(0, &a).unwrap();
        let mark = cache.lens();
        cache.append(0, &tail).unwrap();
        let full = cache.view(0).unwrap();
        let pages_full = cache.pages_held();
        // Roll back, then replay the same append: bitwise identical.
        cache.truncate_to(&mark).unwrap();
        assert_eq!(cache.len(0), 3);
        assert!(cache.pages_held() < pages_full);
        cache.append(0, &tail).unwrap();
        assert_eq!(cache.view(0).unwrap(), full);
        // Growing via truncate is rejected.
        assert!(cache.truncate_to(&[10, 0]).is_err());
        // Dropping the last handle returns every page.
        let held = cache.pages_held();
        assert!(held > 0);
        drop(cache);
        let st = pool.stats();
        assert_eq!(st.in_use, 0);
        assert!(st.reconciles());
    }

    /// Pool exhaustion mid-append leaves no partial append and no
    /// leaked pages.
    #[test]
    fn exhausted_append_is_atomic() {
        let pool = Arc::new(KvPagePool::with_capacity(2, 3));
        let cache = tiny_cache(&pool);
        let mut seed = 7;
        cache.append(0, &rand_tensor(&[2, 2, 4, 4], &mut seed)).unwrap(); // 2 pages
        let before = cache.view(0).unwrap();
        // Needs 2 more pages; only 1 left.
        let err = cache
            .append(0, &rand_tensor(&[2, 2, 4, 4], &mut seed))
            .unwrap_err();
        assert!(err.detail.contains("exhausted"), "{err}");
        assert_eq!(cache.len(0), 4);
        assert_eq!(cache.view(0).unwrap(), before);
        let st = pool.stats();
        assert!(st.reconciles());
        assert_eq!(st.in_use, 2);
    }

    /// Dispatch wires the builtins end to end: create → append → view /
    /// attention, with handles flowing as `Value`s.
    #[test]
    fn dispatch_roundtrip() {
        let pool = Arc::new(KvPagePool::unbounded(4));
        let cache_v = dispatch(
            "create",
            &[Value::Shape(vec![2, 1, 2, 4, 0])],
            &pool,
        )
        .unwrap();
        let mut seed = 99;
        let new = rand_tensor(&[1, 2, 3, 4], &mut seed);
        let cache_v = dispatch(
            "append_paged",
            &[cache_v, Value::Tensor(new.clone()), Value::Shape(vec![0])],
            &pool,
        )
        .unwrap();
        let viewed = dispatch(
            "view",
            &[cache_v.clone(), Value::Shape(vec![0])],
            &pool,
        )
        .unwrap();
        assert_eq!(viewed.as_tensor().unwrap(), &new);
        // Attention needs both streams; mirror K into V.
        let cache_v = dispatch(
            "append_paged",
            &[cache_v, Value::Tensor(new.clone()), Value::Shape(vec![1])],
            &pool,
        )
        .unwrap();
        let q = rand_tensor(&[1, 2, 1, 4], &mut seed);
        let out = dispatch(
            "attention",
            &[
                Value::Tensor(q),
                cache_v,
                Value::Shape(vec![0, 1, 1]),
            ],
            &pool,
        )
        .unwrap();
        assert_eq!(out.as_tensor().unwrap().shape(), &[1, 2, 1, 4]);
        // Unknown ops and bad arities are errors, not panics.
        assert!(dispatch("nope", &[], &pool).is_err());
        assert!(dispatch("view", &[Value::Prim(3)], &pool).is_err());
    }
}
