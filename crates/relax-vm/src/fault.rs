//! Deterministic fault injection for the VM.
//!
//! Robustness claims are only as good as the error paths that back them,
//! and error paths are exactly the code that ordinary test workloads never
//! execute. This module lets a test (or a chaos-testing harness) schedule
//! failures at precise points of an execution: *the Nth allocation*, *the
//! Nth kernel call*, or *the Nth runtime shape check* across the lifetime
//! of a [`crate::Vm`]. Injection is fully deterministic — the same plan
//! against the same executable and inputs fails at the same instruction —
//! so every test failure reproduces.
//!
//! Injected faults surface as ordinary [`crate::VmError`]s (an allocation
//! fault becomes `StorageOverflow`, a kernel fault `Kernel`, a shape-check
//! fault `ShapeCheck`), carrying the same frame trace real failures would,
//! which is what makes them usable for exercising recovery logic end to
//! end.

use std::fmt;

/// A point in VM execution where a fault can be scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultSite {
    /// Memory allocation: `AllocTensor`, `AllocStorage` growth, and
    /// overflow-fallback pool allocations.
    Alloc,
    /// Kernel invocation: `CallTir`, `CallLib` and `CallBuiltin`.
    Kernel,
    /// A runtime shape check (`MatchShape` instruction).
    ShapeCheck,
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSite::Alloc => f.write_str("allocation"),
            FaultSite::Kernel => f.write_str("kernel call"),
            FaultSite::ShapeCheck => f.write_str("shape check"),
        }
    }
}

/// A schedule of faults to inject: pairs of (site, 1-based occurrence
/// index). Counters span the VM's lifetime, not a single `run` call, so a
/// plan can target "the third allocation of the second run".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    scheduled: Vec<(FaultSite, u64)>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a failure of the `nth` (1-based) event at `site`.
    pub fn fail_at(mut self, site: FaultSite, nth: u64) -> Self {
        self.scheduled.push((site, nth.max(1)));
        self
    }

    /// Schedules the `nth` allocation to fail.
    pub fn fail_alloc(self, nth: u64) -> Self {
        self.fail_at(FaultSite::Alloc, nth)
    }

    /// Schedules the `nth` kernel call to fail.
    pub fn fail_kernel(self, nth: u64) -> Self {
        self.fail_at(FaultSite::Kernel, nth)
    }

    /// Schedules the `nth` runtime shape check to fail.
    pub fn fail_shape_check(self, nth: u64) -> Self {
        self.fail_at(FaultSite::ShapeCheck, nth)
    }

    /// `true` if the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.scheduled.is_empty()
    }
}

/// Executes a [`FaultPlan`]: counts events per site and reports when a
/// scheduled fault fires. Each scheduled fault fires exactly once.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Events seen so far per site, indexed by [`FaultInjector::slot`].
    counts: [u64; 3],
    /// Which scheduled entries have already fired.
    fired: Vec<bool>,
}

impl FaultInjector {
    /// Creates an injector for a plan.
    pub fn new(plan: FaultPlan) -> Self {
        let fired = vec![false; plan.scheduled.len()];
        FaultInjector {
            plan,
            counts: [0; 3],
            fired,
        }
    }

    fn slot(site: FaultSite) -> usize {
        match site {
            FaultSite::Alloc => 0,
            FaultSite::Kernel => 1,
            FaultSite::ShapeCheck => 2,
        }
    }

    /// Records one event at `site`; returns `true` when a scheduled fault
    /// fires on this event.
    pub fn on_event(&mut self, site: FaultSite) -> bool {
        let slot = Self::slot(site);
        self.counts[slot] += 1;
        let count = self.counts[slot];
        let mut fire = false;
        for (i, (s, nth)) in self.plan.scheduled.iter().enumerate() {
            if *s == site && *nth == count && !self.fired[i] {
                self.fired[i] = true;
                fire = true;
            }
        }
        fire
    }

    /// Number of events observed at a site so far.
    pub fn events(&self, site: FaultSite) -> u64 {
        self.counts[Self::slot(site)]
    }

    /// `true` once every scheduled fault has fired.
    pub fn exhausted(&self) -> bool {
        self.fired.iter().all(|f| *f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_once_at_the_scheduled_event() {
        let mut inj = FaultInjector::new(FaultPlan::new().fail_alloc(3));
        assert!(!inj.on_event(FaultSite::Alloc)); // 1st
        assert!(!inj.on_event(FaultSite::Kernel)); // other site
        assert!(!inj.on_event(FaultSite::Alloc)); // 2nd
        assert!(inj.on_event(FaultSite::Alloc)); // 3rd fires
        assert!(!inj.on_event(FaultSite::Alloc)); // does not re-fire
        assert!(inj.exhausted());
        assert_eq!(inj.events(FaultSite::Alloc), 4);
    }

    #[test]
    fn sites_count_independently() {
        let mut inj =
            FaultInjector::new(FaultPlan::new().fail_kernel(1).fail_shape_check(2));
        assert!(inj.on_event(FaultSite::Kernel));
        assert!(!inj.on_event(FaultSite::ShapeCheck));
        assert!(!inj.on_event(FaultSite::Alloc));
        assert!(inj.on_event(FaultSite::ShapeCheck));
        assert!(inj.exhausted());
    }

    #[test]
    fn zeroth_occurrence_clamps_to_first() {
        let mut inj = FaultInjector::new(FaultPlan::new().fail_at(FaultSite::Alloc, 0));
        assert!(inj.on_event(FaultSite::Alloc));
    }
}
