//! Deterministic fault injection for the VM and the serving layer.
//!
//! Robustness claims are only as good as the error paths that back them,
//! and error paths are exactly the code that ordinary test workloads never
//! execute. This module lets a test (or a chaos-testing harness) schedule
//! failures at precise points of an execution: *the Nth allocation*, *the
//! Nth kernel call*, or *the Nth runtime shape check* across the lifetime
//! of a [`crate::Vm`]. Injection is fully deterministic — the same plan
//! against the same executable and inputs fails at the same instruction —
//! so every test failure reproduces.
//!
//! Injected VM faults surface as ordinary [`crate::VmError`]s (an
//! allocation fault becomes `StorageOverflow`, a kernel fault `Kernel`, a
//! shape-check fault `ShapeCheck`), carrying the same frame trace real
//! failures would, which is what makes them usable for exercising
//! recovery logic end to end.
//!
//! Beyond the VM, the same schedule language covers the *serving* layer
//! (`relax-serve`), whose failure modes are not VM errors at all: a
//! worker thread panicking mid-request ([`FaultSite::WorkerPanic`]), a
//! worker wedging without making progress ([`FaultSite::WorkerStall`],
//! carrying the stall duration), and a reply channel silently lost
//! ([`FaultSite::ReplyDrop`]). Those sites count *requests handled by a
//! worker*, and the serving engine consumes them with its own
//! [`FaultInjector`] — [`FaultPlan::split_serving`] partitions one plan
//! into the VM half and the serving half.

use std::fmt;
use std::time::Duration;

/// A point in execution where a fault can be scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultSite {
    /// Memory allocation: `AllocTensor`, `AllocStorage` growth, and
    /// overflow-fallback pool allocations.
    Alloc,
    /// Kernel invocation: `CallTir`, `CallLib` and `CallBuiltin`.
    Kernel,
    /// A runtime shape check (`MatchShape` instruction).
    ShapeCheck,
    /// Serving layer: the worker thread panics while handling a request
    /// (exercises panic containment and supervision, never the VM).
    WorkerPanic,
    /// Serving layer: the worker wedges (sleeps) before handling a
    /// request, long enough for heartbeat monitoring to notice.
    WorkerStall,
    /// Serving layer: the worker drops the request's reply channel
    /// without answering — the client-visible "lost reply".
    ReplyDrop,
}

impl FaultSite {
    /// `true` for sites consumed by the serving engine's per-worker
    /// injector rather than the VM (they count requests, not VM events).
    pub fn is_serving(self) -> bool {
        matches!(
            self,
            FaultSite::WorkerPanic | FaultSite::WorkerStall | FaultSite::ReplyDrop
        )
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSite::Alloc => f.write_str("allocation"),
            FaultSite::Kernel => f.write_str("kernel call"),
            FaultSite::ShapeCheck => f.write_str("shape check"),
            FaultSite::WorkerPanic => f.write_str("worker panic"),
            FaultSite::WorkerStall => f.write_str("worker stall"),
            FaultSite::ReplyDrop => f.write_str("reply drop"),
        }
    }
}

/// One scheduled fault: the site, the 1-based occurrence index at which
/// it fires, and (for [`FaultSite::WorkerStall`]) how long to stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    site: FaultSite,
    nth: u64,
    stall: Option<Duration>,
}

/// A schedule of faults to inject: (site, 1-based occurrence index)
/// pairs. Counters span the injector's lifetime, not a single `run`
/// call, so a plan can target "the third allocation of the second run"
/// — or "the fifth request this worker handles".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    scheduled: Vec<Scheduled>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a failure of the `nth` (1-based) event at `site`.
    pub fn fail_at(mut self, site: FaultSite, nth: u64) -> Self {
        self.scheduled.push(Scheduled {
            site,
            nth: nth.max(1),
            stall: None,
        });
        self
    }

    /// Schedules the `nth` allocation to fail.
    pub fn fail_alloc(self, nth: u64) -> Self {
        self.fail_at(FaultSite::Alloc, nth)
    }

    /// Schedules the `nth` kernel call to fail.
    pub fn fail_kernel(self, nth: u64) -> Self {
        self.fail_at(FaultSite::Kernel, nth)
    }

    /// Schedules the `nth` runtime shape check to fail.
    pub fn fail_shape_check(self, nth: u64) -> Self {
        self.fail_at(FaultSite::ShapeCheck, nth)
    }

    /// Schedules the worker to panic on its `nth` handled request.
    pub fn fail_worker_panic(self, nth: u64) -> Self {
        self.fail_at(FaultSite::WorkerPanic, nth)
    }

    /// Schedules the worker to stall for `stall` before its `nth`
    /// handled request.
    pub fn stall_worker(mut self, nth: u64, stall: Duration) -> Self {
        self.scheduled.push(Scheduled {
            site: FaultSite::WorkerStall,
            nth: nth.max(1),
            stall: Some(stall),
        });
        self
    }

    /// Schedules the worker to drop the reply channel of its `nth`
    /// handled request without answering.
    pub fn drop_reply(self, nth: u64) -> Self {
        self.fail_at(FaultSite::ReplyDrop, nth)
    }

    /// `true` if the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.scheduled.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.scheduled.len()
    }

    /// Splits the plan into `(vm_plan, serving_plan)`: VM sites
    /// (allocation / kernel / shape check) in the first half, serving
    /// sites (worker panic / stall / reply drop) in the second. The
    /// serving engine installs the first on the worker's `Vm` and
    /// consumes the second with its own per-worker injector.
    pub fn split_serving(self) -> (FaultPlan, FaultPlan) {
        let (serving, vm): (Vec<_>, Vec<_>) = self
            .scheduled
            .into_iter()
            .partition(|s| s.site.is_serving());
        (FaultPlan { scheduled: vm }, FaultPlan { scheduled: serving })
    }
}

/// A fault that fired: its site and, for a worker stall, the duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiredFault {
    /// Where the fault fired.
    pub site: FaultSite,
    /// Stall duration ([`FaultSite::WorkerStall`] only).
    pub stall: Option<Duration>,
}

/// Executes a [`FaultPlan`]: counts events per site and reports when a
/// scheduled fault fires. Each scheduled fault fires exactly once.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Events seen so far per site, indexed by [`FaultInjector::slot`].
    counts: [u64; 6],
    /// Which scheduled entries have already fired.
    fired: Vec<bool>,
}

impl FaultInjector {
    /// Creates an injector for a plan.
    pub fn new(plan: FaultPlan) -> Self {
        let fired = vec![false; plan.scheduled.len()];
        FaultInjector {
            plan,
            counts: [0; 6],
            fired,
        }
    }

    fn slot(site: FaultSite) -> usize {
        match site {
            FaultSite::Alloc => 0,
            FaultSite::Kernel => 1,
            FaultSite::ShapeCheck => 2,
            FaultSite::WorkerPanic => 3,
            FaultSite::WorkerStall => 4,
            FaultSite::ReplyDrop => 5,
        }
    }

    /// Records one event at `site`; returns the fired fault (with its
    /// stall payload) when a scheduled fault fires on this event.
    pub fn check(&mut self, site: FaultSite) -> Option<FiredFault> {
        let slot = Self::slot(site);
        self.counts[slot] += 1;
        let count = self.counts[slot];
        let mut hit = None;
        for (i, s) in self.plan.scheduled.iter().enumerate() {
            if s.site == site && s.nth == count && !self.fired[i] {
                self.fired[i] = true;
                hit.get_or_insert(FiredFault {
                    site,
                    stall: s.stall,
                });
            }
        }
        hit
    }

    /// Records one event at `site`; returns `true` when a scheduled fault
    /// fires on this event.
    pub fn on_event(&mut self, site: FaultSite) -> bool {
        self.check(site).is_some()
    }

    /// Number of events observed at a site so far.
    pub fn events(&self, site: FaultSite) -> u64 {
        self.counts[Self::slot(site)]
    }

    /// `true` once every scheduled fault has fired.
    pub fn exhausted(&self) -> bool {
        self.fired.iter().all(|f| *f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_once_at_the_scheduled_event() {
        let mut inj = FaultInjector::new(FaultPlan::new().fail_alloc(3));
        assert!(!inj.on_event(FaultSite::Alloc)); // 1st
        assert!(!inj.on_event(FaultSite::Kernel)); // other site
        assert!(!inj.on_event(FaultSite::Alloc)); // 2nd
        assert!(inj.on_event(FaultSite::Alloc)); // 3rd fires
        assert!(!inj.on_event(FaultSite::Alloc)); // does not re-fire
        assert!(inj.exhausted());
        assert_eq!(inj.events(FaultSite::Alloc), 4);
    }

    #[test]
    fn sites_count_independently() {
        let mut inj =
            FaultInjector::new(FaultPlan::new().fail_kernel(1).fail_shape_check(2));
        assert!(inj.on_event(FaultSite::Kernel));
        assert!(!inj.on_event(FaultSite::ShapeCheck));
        assert!(!inj.on_event(FaultSite::Alloc));
        assert!(inj.on_event(FaultSite::ShapeCheck));
        assert!(inj.exhausted());
    }

    #[test]
    fn zeroth_occurrence_clamps_to_first() {
        let mut inj = FaultInjector::new(FaultPlan::new().fail_at(FaultSite::Alloc, 0));
        assert!(inj.on_event(FaultSite::Alloc));
    }

    #[test]
    fn stall_fault_carries_its_duration() {
        let d = Duration::from_millis(25);
        let mut inj = FaultInjector::new(FaultPlan::new().stall_worker(2, d));
        assert_eq!(inj.check(FaultSite::WorkerStall), None);
        let fired = inj.check(FaultSite::WorkerStall).expect("2nd fires");
        assert_eq!(fired.site, FaultSite::WorkerStall);
        assert_eq!(fired.stall, Some(d));
        assert!(inj.exhausted());
    }

    #[test]
    fn split_serving_partitions_sites() {
        let plan = FaultPlan::new()
            .fail_kernel(1)
            .fail_worker_panic(2)
            .stall_worker(3, Duration::from_millis(1))
            .drop_reply(4)
            .fail_alloc(5);
        let (vm, serving) = plan.split_serving();
        assert_eq!(vm.len(), 2);
        assert_eq!(serving.len(), 3);
        assert!(vm.scheduled.iter().all(|s| !s.site.is_serving()));
        assert!(serving.scheduled.iter().all(|s| s.site.is_serving()));
    }

    #[test]
    fn serving_sites_do_not_perturb_vm_counters() {
        // A combined plan run through the VM half only fires VM sites.
        let (vm_plan, _) = FaultPlan::new()
            .fail_kernel(1)
            .fail_worker_panic(1)
            .split_serving();
        let mut inj = FaultInjector::new(vm_plan);
        assert!(inj.on_event(FaultSite::Kernel));
        assert!(inj.exhausted());
    }
}
