//! Runtime memory management: the pooled allocator used when static
//! planning is disabled, and byte-accounting shared with the planned path.
//!
//! The Table 2 experiment compares "Relax w/o planning" (this pool) against
//! "Relax w/ planning" (static `AllocStorage`); what it reports is the
//! *total allocated memory* each strategy ends up holding.

use std::collections::BTreeMap;

/// Statistics of an allocator's behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryStats {
    /// Bytes currently handed out to live tensors.
    pub in_use: usize,
    /// Total bytes of distinct blocks ever allocated (pool footprint).
    pub footprint: usize,
    /// Peak of `in_use`.
    pub peak_in_use: usize,
    /// Number of fresh block allocations (pool misses).
    pub fresh_allocations: usize,
    /// Number of requests served by recycling an existing block.
    pub reuses: usize,
}

/// A size-bucketed recycling pool: requests are served by the smallest free
/// block that fits, otherwise a fresh block is allocated. This models the
/// "runtime memory pool to recycle unused memory" baseline of §5.2.
#[derive(Debug, Default)]
pub struct PooledAllocator {
    // free blocks: size -> count
    free: BTreeMap<usize, usize>,
    next_id: u64,
    stats: MemoryStats,
}

impl PooledAllocator {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a block of at least `bytes`; recycles a free block when one
    /// fits, else grows the footprint.
    pub fn alloc(&mut self, bytes: usize) -> (u64, usize) {
        let id = self.next_id;
        self.next_id += 1;
        // Smallest free block with size >= bytes.
        let candidate = self.free.range(bytes..).next().map(|(size, _)| *size);
        let size = match candidate {
            Some(size) => {
                let cnt = self.free.get_mut(&size).expect("key exists");
                *cnt -= 1;
                if *cnt == 0 {
                    self.free.remove(&size);
                }
                self.stats.reuses += 1;
                size
            }
            None => {
                self.stats.footprint += bytes;
                self.stats.fresh_allocations += 1;
                bytes
            }
        };
        self.stats.in_use += size;
        self.stats.peak_in_use = self.stats.peak_in_use.max(self.stats.in_use);
        (id, size)
    }

    /// Returns a block of the given size to the pool.
    pub fn free(&mut self, size: usize) {
        *self.free.entry(size).or_insert(0) += 1;
        self.stats.in_use = self.stats.in_use.saturating_sub(size);
    }

    /// Current statistics.
    pub fn stats(&self) -> MemoryStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_then_reuse() {
        let mut pool = PooledAllocator::new();
        let (_, s1) = pool.alloc(100);
        assert_eq!(s1, 100);
        pool.free(100);
        let (_, s2) = pool.alloc(80); // fits in the 100-byte block
        assert_eq!(s2, 100);
        let st = pool.stats();
        assert_eq!(st.footprint, 100);
        assert_eq!(st.fresh_allocations, 1);
        assert_eq!(st.reuses, 1);
    }

    #[test]
    fn growth_when_nothing_fits() {
        let mut pool = PooledAllocator::new();
        pool.alloc(64);
        pool.free(64);
        pool.alloc(128); // 64 does not fit
        let st = pool.stats();
        assert_eq!(st.footprint, 64 + 128);
        assert_eq!(st.fresh_allocations, 2);
    }

    #[test]
    fn peak_tracking() {
        let mut pool = PooledAllocator::new();
        pool.alloc(10);
        pool.alloc(20);
        pool.free(10);
        pool.alloc(5);
        assert_eq!(pool.stats().peak_in_use, 30);
        assert_eq!(pool.stats().in_use, 30); // 20 + 10 (5 served by 10-block)
    }
}
