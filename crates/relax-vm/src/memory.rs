//! Runtime memory management: the pooled allocator used when static
//! planning is disabled, and byte-accounting shared with the planned path.
//!
//! The Table 2 experiment compares "Relax w/o planning" (this pool) against
//! "Relax w/ planning" (static `AllocStorage`); what it reports is the
//! *total allocated memory* each strategy ends up holding.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

use relax_arith::DataType;
use relax_tir::NDArray;

/// Statistics of an allocator's behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryStats {
    /// Bytes currently handed out to live tensors.
    pub in_use: usize,
    /// Total bytes of distinct blocks ever allocated (pool footprint).
    pub footprint: usize,
    /// Peak of `in_use`.
    pub peak_in_use: usize,
    /// Number of fresh block allocations (pool misses).
    pub fresh_allocations: usize,
    /// Number of requests served by recycling an existing block.
    pub reuses: usize,
}

/// A size-bucketed recycling pool: requests are served by the smallest free
/// block that fits, otherwise a fresh block is allocated. This models the
/// "runtime memory pool to recycle unused memory" baseline of §5.2.
#[derive(Debug, Default)]
pub struct PooledAllocator {
    // free blocks: size -> count
    free: BTreeMap<usize, usize>,
    next_id: u64,
    stats: MemoryStats,
}

impl PooledAllocator {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a block of at least `bytes`; recycles a free block when one
    /// fits, else grows the footprint.
    pub fn alloc(&mut self, bytes: usize) -> (u64, usize) {
        let id = self.next_id;
        self.next_id += 1;
        // Smallest free block with size >= bytes.
        let candidate = self.free.range(bytes..).next().map(|(size, _)| *size);
        let size = match candidate {
            Some(size) => {
                let cnt = self.free.get_mut(&size).expect("key exists");
                *cnt -= 1;
                if *cnt == 0 {
                    self.free.remove(&size);
                }
                self.stats.reuses += 1;
                size
            }
            None => {
                self.stats.footprint += bytes;
                self.stats.fresh_allocations += 1;
                bytes
            }
        };
        self.stats.in_use += size;
        self.stats.peak_in_use = self.stats.peak_in_use.max(self.stats.in_use);
        (id, size)
    }

    /// Returns a block of the given size to the pool.
    pub fn free(&mut self, size: usize) {
        *self.free.entry(size).or_insert(0) += 1;
        self.stats.in_use = self.stats.in_use.saturating_sub(size);
    }

    /// Current statistics.
    pub fn stats(&self) -> MemoryStats {
        self.stats
    }
}

/// Statistics of a [`KvPagePool`]. The accounting invariant is
/// `allocated == in_use + free`: every page ever materialized is either
/// held by a live cache or parked on the free list — the reconciliation
/// check the chaos harness asserts after healing a crashed worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KvPageStats {
    /// Tokens per page (the fixed block size).
    pub page_tokens: usize,
    /// Maximum pages the pool may hand out (`usize::MAX` = unbounded).
    pub capacity: usize,
    /// Pages with live backing buffers (`in_use + free`).
    pub allocated: usize,
    /// Pages currently held by caches.
    pub in_use: usize,
    /// Pages parked on the free list, ready for reuse.
    pub free: usize,
    /// Peak of `in_use`.
    pub peak_in_use: usize,
    /// Total acquire calls.
    pub acquires: u64,
    /// Total release calls.
    pub releases: u64,
    /// Acquires served by recycling a free page instead of allocating.
    pub reuses: u64,
    /// Acquires refused because the pool was at capacity.
    pub exhaustions: u64,
}

impl KvPageStats {
    /// `true` when the accounting invariant `allocated == in_use + free`
    /// holds.
    pub fn reconciles(&self) -> bool {
        self.allocated == self.in_use + self.free
    }

    /// Fraction of capacity currently in use (0.0 for an unbounded pool).
    pub fn utilization(&self) -> f64 {
        if self.capacity == usize::MAX || self.capacity == 0 {
            0.0
        } else {
            self.in_use as f64 / self.capacity as f64
        }
    }
}

/// The pool refused an acquire because every page is in use; the serving
/// scheduler reacts by evicting a session and retrying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvPoolExhausted {
    /// Pages the pool may hand out.
    pub capacity: usize,
    /// Pages in use at the time of the refused acquire.
    pub in_use: usize,
}

impl fmt::Display for KvPoolExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kv page pool exhausted: {} of {} pages in use",
            self.in_use, self.capacity
        )
    }
}

impl std::error::Error for KvPoolExhausted {}

struct KvPoolInner {
    /// Recycled pages, bucketed by (shape, dtype). A serving deployment
    /// usually has one bucket (one model config); linear scan is fine.
    free: Vec<(Vec<usize>, DataType, Vec<NDArray>)>,
    stats: KvPageStats,
}

/// A fixed-size page allocator for KV caches, shared by every VM and
/// session of a serving engine.
///
/// Pages are `(batch, heads, page_tokens, head_dim)` tensors handed to
/// [`crate::kv_cache::KvCache`] block tables. Released pages are parked
/// on a free list and recycled (zero-filled) on the next acquire, so
/// steady-state serving allocates nothing; a bounded pool refuses
/// acquires beyond `capacity_pages`, which is the backpressure signal
/// the continuous-batching scheduler turns into session eviction.
///
/// All methods take `&self`; the pool is shared as an `Arc` across
/// worker threads. The interior mutex is poison-tolerant: a panicking
/// worker (chaos harness) cannot wedge the allocator for survivors.
pub struct KvPagePool {
    page_tokens: usize,
    capacity: usize,
    inner: Mutex<KvPoolInner>,
}

impl fmt::Debug for KvPagePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.stats();
        write!(
            f,
            "KvPagePool(page_tokens={}, in_use={}/{}, free={})",
            st.page_tokens,
            st.in_use,
            if st.capacity == usize::MAX {
                "∞".to_string()
            } else {
                st.capacity.to_string()
            },
            st.free
        )
    }
}

impl KvPagePool {
    /// A pool handing out pages of `page_tokens` tokens, at most
    /// `capacity_pages` at a time.
    pub fn with_capacity(page_tokens: usize, capacity_pages: usize) -> Self {
        KvPagePool {
            page_tokens: page_tokens.max(1),
            capacity: capacity_pages,
            inner: Mutex::new(KvPoolInner {
                free: Vec::new(),
                stats: KvPageStats {
                    page_tokens: page_tokens.max(1),
                    capacity: capacity_pages,
                    ..KvPageStats::default()
                },
            }),
        }
    }

    /// An unbounded pool (capacity `usize::MAX`).
    pub fn unbounded(page_tokens: usize) -> Self {
        Self::with_capacity(page_tokens, usize::MAX)
    }

    /// Tokens per page.
    pub fn page_tokens(&self) -> usize {
        self.page_tokens
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, KvPoolInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires one zeroed page of the given shape, recycling a free page
    /// when one matches.
    ///
    /// # Errors
    ///
    /// Returns [`KvPoolExhausted`] when `in_use` has reached the
    /// capacity.
    pub fn acquire(&self, shape: &[usize], dtype: DataType) -> Result<NDArray, KvPoolExhausted> {
        let mut inner = self.lock();
        if inner.stats.in_use >= self.capacity {
            inner.stats.exhaustions += 1;
            return Err(KvPoolExhausted {
                capacity: self.capacity,
                in_use: inner.stats.in_use,
            });
        }
        inner.stats.acquires += 1;
        let recycled = inner
            .free
            .iter_mut()
            .find(|(s, d, pages)| s == shape && *d == dtype && !pages.is_empty())
            .and_then(|(_, _, pages)| pages.pop());
        let page = match recycled {
            Some(page) => {
                inner.stats.reuses += 1;
                inner.stats.free -= 1;
                page.fill(relax_tir::Scalar::F(0.0));
                page
            }
            None => {
                inner.stats.allocated += 1;
                NDArray::zeros(shape, dtype)
            }
        };
        inner.stats.in_use += 1;
        inner.stats.peak_in_use = inner.stats.peak_in_use.max(inner.stats.in_use);
        Ok(page)
    }

    /// Returns a page to the free list for reuse.
    pub fn release(&self, page: NDArray) {
        let mut inner = self.lock();
        inner.stats.releases += 1;
        inner.stats.in_use = inner.stats.in_use.saturating_sub(1);
        inner.stats.free += 1;
        let shape = page.shape().to_vec();
        let dtype = page.dtype();
        match inner
            .free
            .iter_mut()
            .find(|(s, d, _)| *s == shape && *d == dtype)
        {
            Some((_, _, pages)) => pages.push(page),
            None => inner.free.push((shape, dtype, vec![page])),
        }
    }

    /// Current statistics (see [`KvPageStats`] for the invariant).
    pub fn stats(&self) -> KvPageStats {
        self.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_then_reuse() {
        let mut pool = PooledAllocator::new();
        let (_, s1) = pool.alloc(100);
        assert_eq!(s1, 100);
        pool.free(100);
        let (_, s2) = pool.alloc(80); // fits in the 100-byte block
        assert_eq!(s2, 100);
        let st = pool.stats();
        assert_eq!(st.footprint, 100);
        assert_eq!(st.fresh_allocations, 1);
        assert_eq!(st.reuses, 1);
    }

    #[test]
    fn growth_when_nothing_fits() {
        let mut pool = PooledAllocator::new();
        pool.alloc(64);
        pool.free(64);
        pool.alloc(128); // 64 does not fit
        let st = pool.stats();
        assert_eq!(st.footprint, 64 + 128);
        assert_eq!(st.fresh_allocations, 2);
    }

    #[test]
    fn kv_pool_reuses_and_reconciles() {
        let pool = KvPagePool::with_capacity(4, 2);
        let shape = [1usize, 2, 4, 8];
        let a = pool.acquire(&shape, DataType::F32).unwrap();
        let b = pool.acquire(&shape, DataType::F32).unwrap();
        // At capacity: the third acquire is refused and counted.
        let err = pool.acquire(&shape, DataType::F32).unwrap_err();
        assert_eq!(err.in_use, 2);
        assert_eq!(err.capacity, 2);
        // Dirty a page, release it, and reacquire: recycled and zeroed.
        a.set(0, relax_tir::Scalar::F(7.0)).unwrap();
        pool.release(a);
        let c = pool.acquire(&shape, DataType::F32).unwrap();
        assert_eq!(c.get(0).unwrap(), relax_tir::Scalar::F(0.0));
        let st = pool.stats();
        assert!(st.reconciles(), "{st:?}");
        assert_eq!(st.allocated, 2);
        assert_eq!(st.in_use, 2);
        assert_eq!(st.free, 0);
        assert_eq!(st.reuses, 1);
        assert_eq!(st.exhaustions, 1);
        assert_eq!(st.peak_in_use, 2);
        assert!((st.utilization() - 1.0).abs() < 1e-9);
        pool.release(b);
        pool.release(c);
        let st = pool.stats();
        assert!(st.reconciles());
        assert_eq!(st.in_use, 0);
        assert_eq!(st.free, 2);
    }

    #[test]
    fn kv_pool_buckets_by_shape_and_dtype() {
        let pool = KvPagePool::unbounded(4);
        let p1 = pool.acquire(&[1, 1, 4, 2], DataType::F32).unwrap();
        pool.release(p1);
        // A different shape cannot recycle the parked page.
        let _p2 = pool.acquire(&[1, 2, 4, 2], DataType::F32).unwrap();
        let st = pool.stats();
        assert_eq!(st.reuses, 0);
        assert_eq!(st.allocated, 2);
        assert!(st.reconciles());
        assert_eq!(st.utilization(), 0.0); // unbounded
    }

    #[test]
    fn peak_tracking() {
        let mut pool = PooledAllocator::new();
        pool.alloc(10);
        pool.alloc(20);
        pool.free(10);
        pool.alloc(5);
        assert_eq!(pool.stats().peak_in_use, 30);
        assert_eq!(pool.stats().in_use, 30); // 20 + 10 (5 served by 10-block)
    }
}
