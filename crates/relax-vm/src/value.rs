//! Runtime values held in VM registers.

use std::fmt;

use relax_tir::NDArray;

use crate::kv_cache::KvCache;

/// A runtime value in a VM register.
#[derive(Debug, Clone)]
pub enum Value {
    /// An uninitialized register.
    None,
    /// A tensor.
    Tensor(NDArray),
    /// A tuple of values.
    Tuple(Vec<Value>),
    /// A first-class shape value (concrete at runtime).
    Shape(Vec<i64>),
    /// A scalar integer.
    Prim(i64),
    /// A storage block produced by static memory planning.
    Storage {
        /// Identity assigned by the allocator.
        id: u64,
        /// Size in bytes.
        bytes: usize,
    },
    /// A paged KV-cache handle (cloning aliases the same pages).
    KvCache(KvCache),
}

impl Value {
    /// Returns the tensor, if this value is one.
    pub fn as_tensor(&self) -> Option<&NDArray> {
        match self {
            Value::Tensor(t) => Some(t),
            _ => None,
        }
    }

    /// Returns the tuple fields, if this value is a tuple.
    pub fn as_tuple(&self) -> Option<&[Value]> {
        match self {
            Value::Tuple(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the shape dims, if this value is a shape.
    pub fn as_shape(&self) -> Option<&[i64]> {
        match self {
            Value::Shape(dims) => Some(dims),
            _ => None,
        }
    }

    /// Returns the KV-cache handle, if this value is one.
    pub fn as_kv_cache(&self) -> Option<&KvCache> {
        match self {
            Value::KvCache(c) => Some(c),
            _ => None,
        }
    }

    /// A short description of the value kind for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::None => "none",
            Value::Tensor(_) => "tensor",
            Value::Tuple(_) => "tuple",
            Value::Shape(_) => "shape",
            Value::Prim(_) => "prim",
            Value::Storage { .. } => "storage",
            Value::KvCache(_) => "kv_cache",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::None => f.write_str("none"),
            Value::Tensor(t) => write!(f, "Tensor(shape={:?}, \"{}\")", t.shape(), t.dtype()),
            Value::Tuple(items) => {
                write!(f, "(")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Value::Shape(dims) => write!(f, "shape{dims:?}"),
            Value::Prim(v) => write!(f, "{v}"),
            Value::Storage { id, bytes } => write!(f, "storage#{id}({bytes}B)"),
            Value::KvCache(c) => write!(f, "{c:?}"),
        }
    }
}

impl From<NDArray> for Value {
    fn from(t: NDArray) -> Self {
        Value::Tensor(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relax_arith::DataType;

    #[test]
    fn accessors() {
        let t = NDArray::zeros(&[2], DataType::F32);
        let v = Value::Tensor(t.clone());
        assert!(v.as_tensor().is_some());
        assert!(v.as_tuple().is_none());
        assert_eq!(v.kind(), "tensor");
        let tup = Value::Tuple(vec![v, Value::Prim(3)]);
        assert_eq!(tup.as_tuple().unwrap().len(), 2);
        assert_eq!(Value::Shape(vec![1, 2]).as_shape().unwrap(), &[1, 2]);
    }
}
