//! Mixture-of-experts routing builtins: the runtime half of the
//! data-dependent dispatch pattern (§2, §4.2).
//!
//! An MoE layer routes each token to one expert, so the number of rows
//! an expert's FFN sees — `n_e` — is decided by the router's argmax at
//! runtime, not by the compiler. The graph expresses this with a coarse
//! `Tensor(ndim=2)` gather output refined through `match_cast` into a
//! fresh symbolic dim, exactly like `unique` in the paper's Figure 3;
//! these builtins supply the data-dependent kernels behind that shape:
//!
//! - `route(logits (t, E)) -> (t,) i64` — per-token argmax (first
//!   maximum wins, strict `>` comparison, so ties are deterministic).
//! - `gather(tokens (t, d), assign (t,), shape[e]) -> (n_e, d)` — the
//!   rows assigned to expert `e`, in token order. `n_e` may be zero.
//! - `scatter(rows (n_e, d), assign (t,), shape[e, t]) -> (t, d)` —
//!   the inverse placement: row `i` of `rows` lands at the `i`-th token
//!   assigned to `e`; unassigned positions are zero, so summing the
//!   per-expert scatters reassembles the full batch (adding zeros is
//!   bitwise-exact in f32: `r32(x + 0) == x`).
//!
//! Like the KV-cache builtins, these run inside the VM's `CallBuiltin`
//! handle dispatcher (shape args arrive as first-class `Value::Shape`s)
//! and are registered in the [`crate::registry::Registry`] only so the
//! validator can check existence and arity.

use relax_arith::DataType;
use relax_tir::{NDArray, Scalar};

use crate::registry::KernelError;
use crate::value::Value;

/// Name prefix of the builtins the VM routes to [`dispatch`] instead of
/// the tensor-only registry path.
pub const MOE_PREFIX: &str = "vm.builtin.moe.";

fn kerr(op: &str, detail: impl Into<String>) -> KernelError {
    KernelError {
        kernel: format!("{MOE_PREFIX}{op}"),
        detail: detail.into(),
    }
}

fn want_tensor<'a>(op: &str, v: Option<&'a Value>) -> Result<&'a NDArray, KernelError> {
    match v {
        Some(Value::Tensor(t)) => Ok(t),
        Some(other) => Err(kerr(op, format!("expected a tensor, got {}", other.kind()))),
        None => Err(kerr(op, "missing tensor argument")),
    }
}

fn want_shape<'a>(op: &str, v: Option<&'a Value>, dims: usize) -> Result<&'a [i64], KernelError> {
    match v {
        Some(Value::Shape(d)) if d.len() == dims => Ok(d),
        Some(Value::Shape(d)) => Err(kerr(
            op,
            format!("expected a shape of {dims} dims, got {}", d.len()),
        )),
        Some(other) => Err(kerr(op, format!("expected a shape, got {}", other.kind()))),
        None => Err(kerr(op, "missing shape argument")),
    }
}

fn want_rank<'a>(op: &str, t: &'a NDArray, rank: usize, what: &str) -> Result<&'a [usize], KernelError> {
    let s = t.shape();
    if s.len() != rank {
        return Err(kerr(op, format!("{what} must be rank {rank}, got {s:?}")));
    }
    Ok(s)
}

/// Per-token argmax over the expert axis; strict `>` so the first
/// maximum wins and ties are deterministic across runs and workers.
fn route(logits: &NDArray) -> Result<NDArray, KernelError> {
    const OP: &str = "route";
    let s = want_rank(OP, logits, 2, "router logits")?;
    let (t, e) = (s[0], s[1]);
    if e == 0 {
        return Err(kerr(OP, "router logits have zero experts"));
    }
    let v = logits.to_f64_vec();
    let out = NDArray::zeros(&[t], DataType::I64);
    for i in 0..t {
        let row = &v[i * e..(i + 1) * e];
        let mut best = 0usize;
        for (j, &x) in row.iter().enumerate() {
            if x > row[best] {
                best = j;
            }
        }
        out.set(i, Scalar::I(best as i64))
            .map_err(|err| kerr(OP, err.to_string()))?;
    }
    Ok(out)
}

/// Positions (token indices, ascending) assigned to expert `e`.
fn positions(op: &str, assign: &NDArray, expert: i64) -> Result<Vec<usize>, KernelError> {
    want_rank(op, assign, 1, "assignment vector")?;
    if assign.dtype() != DataType::I64 {
        return Err(kerr(
            op,
            format!("assignment dtype {} != i64", assign.dtype()),
        ));
    }
    Ok(assign
        .to_i64_vec()
        .iter()
        .enumerate()
        .filter(|(_, &a)| a == expert)
        .map(|(i, _)| i)
        .collect())
}

/// Gathers the rows of `tokens` assigned to one expert. The output row
/// count `n_e` is data-dependent — the `MatchShape` that follows this
/// call in lowered code binds it to a fresh symbolic variable.
fn gather(tokens: &NDArray, assign: &NDArray, expert: i64) -> Result<NDArray, KernelError> {
    const OP: &str = "gather";
    let ts = want_rank(OP, tokens, 2, "token matrix")?;
    let (t, d) = (ts[0], ts[1]);
    if assign.shape() != [t] {
        return Err(kerr(
            OP,
            format!(
                "assignment {:?} does not cover {t} tokens",
                assign.shape()
            ),
        ));
    }
    let pos = positions(OP, assign, expert)?;
    let out = NDArray::zeros(&[pos.len(), d], tokens.dtype());
    for (row, &p) in pos.iter().enumerate() {
        out.copy_range_from(row * d, tokens, p * d, d)
            .map_err(|e| kerr(OP, e.to_string()))?;
    }
    Ok(out)
}

/// Scatters expert output rows back to their token positions; rows not
/// assigned to this expert stay zero.
fn scatter(rows: &NDArray, assign: &NDArray, expert: i64, tokens: usize) -> Result<NDArray, KernelError> {
    const OP: &str = "scatter";
    let rs = want_rank(OP, rows, 2, "expert output")?;
    let d = rs[1];
    if assign.shape() != [tokens] {
        return Err(kerr(
            OP,
            format!(
                "assignment {:?} does not cover {tokens} tokens",
                assign.shape()
            ),
        ));
    }
    let pos = positions(OP, assign, expert)?;
    if pos.len() != rs[0] {
        return Err(kerr(
            OP,
            format!(
                "expert {expert} produced {} rows for {} assigned tokens",
                rs[0],
                pos.len()
            ),
        ));
    }
    let out = NDArray::zeros(&[tokens, d], rows.dtype());
    for (row, &p) in pos.iter().enumerate() {
        out.copy_range_from(p * d, rows, row * d, d)
            .map_err(|e| kerr(OP, e.to_string()))?;
    }
    Ok(out)
}

/// Executes one `vm.builtin.moe.<op>` builtin on register values.
/// Called by the VM's `CallBuiltin` arm before the tensor-only registry
/// path (shape args arrive as `Value::Shape`).
///
/// # Errors
///
/// Returns a [`KernelError`] on unknown ops or argument mismatches.
pub fn dispatch(op: &str, args: &[Value]) -> Result<Value, KernelError> {
    match op {
        // route(logits) -> assignment
        "route" => Ok(Value::Tensor(route(want_tensor(op, args.first())?)?)),
        // gather(tokens, assign, shape[expert]) -> (n_e, d)
        "gather" => {
            let tokens = want_tensor(op, args.first())?;
            let assign = want_tensor(op, args.get(1))?;
            let d = want_shape(op, args.get(2), 1)?;
            Ok(Value::Tensor(gather(tokens, assign, d[0])?))
        }
        // scatter(rows, assign, shape[expert, tokens]) -> (t, d)
        "scatter" => {
            let rows = want_tensor(op, args.first())?;
            let assign = want_tensor(op, args.get(1))?;
            let d = want_shape(op, args.get(2), 2)?;
            let tokens = usize::try_from(d[1])
                .map_err(|_| kerr(op, format!("negative token count {}", d[1])))?;
            Ok(Value::Tensor(scatter(rows, assign, d[0], tokens)?))
        }
        other => Err(kerr(other, "unknown moe builtin")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f32s(shape: &[usize], vals: Vec<f64>) -> NDArray {
        NDArray::from_f64(shape, DataType::F32, vals).unwrap()
    }

    #[test]
    fn route_is_first_max_argmax() {
        let logits = f32s(&[3, 3], vec![1., 3., 2., 5., 5., 4., -1., -2., -1.]);
        let a = route(&logits).unwrap();
        // Row 1 ties at index 0/1 -> first wins; row 2 ties 0/2 -> 0.
        assert_eq!(a.to_i64_vec(), vec![1, 0, 0]);
    }

    #[test]
    fn gather_scatter_roundtrip_including_empty_expert() {
        let tokens = f32s(&[4, 2], vec![0., 1., 10., 11., 20., 21., 30., 31.]);
        let assign = NDArray::from_i64(&[4], DataType::I64, vec![2, 0, 2, 0]).unwrap();
        let g2 = gather(&tokens, &assign, 2).unwrap();
        assert_eq!(g2.shape(), &[2, 2]);
        assert_eq!(g2.to_f64_vec(), vec![0., 1., 20., 21.]);
        // Expert 1 receives nothing: a genuinely empty gather.
        let g1 = gather(&tokens, &assign, 1).unwrap();
        assert_eq!(g1.shape(), &[0, 2]);
        // Scattering every expert back and summing rebuilds the batch.
        let mut sum = vec![0.0f64; 8];
        for e in 0..3 {
            let ge = gather(&tokens, &assign, e).unwrap();
            let se = scatter(&ge, &assign, e, 4).unwrap();
            for (acc, v) in sum.iter_mut().zip(se.to_f64_vec()) {
                *acc += v;
            }
        }
        assert_eq!(sum, tokens.to_f64_vec());
    }

    #[test]
    fn scatter_rejects_row_count_mismatch() {
        let rows = f32s(&[2, 2], vec![0.; 4]);
        let assign = NDArray::from_i64(&[3], DataType::I64, vec![0, 1, 0]).unwrap();
        // Expert 1 has 1 assigned token but 2 rows arrive.
        assert!(scatter(&rows, &assign, 1, 3).is_err());
    }

    #[test]
    fn dispatch_checks_arguments() {
        assert!(dispatch("nope", &[]).is_err());
        assert!(dispatch("route", &[Value::Prim(1)]).is_err());
        let tokens = f32s(&[1, 1], vec![1.0]);
        let assign = NDArray::from_i64(&[1], DataType::I64, vec![0]).unwrap();
        let out = dispatch(
            "gather",
            &[
                Value::Tensor(tokens),
                Value::Tensor(assign),
                Value::Shape(vec![0]),
            ],
        )
        .unwrap();
        assert_eq!(out.as_tensor().unwrap().shape(), &[1, 1]);
    }
}
