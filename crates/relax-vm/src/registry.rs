//! The foreign-function registry: "vendor library" kernels callable through
//! `call_dps_library`, and value-returning runtime builtins.
//!
//! Library functions are supplied by a registry and linked into the final
//! runnable module (§3.3). In this reproduction the kernels are native Rust
//! reference implementations; the performance simulator assigns them the
//! higher efficiency a tuned vendor kernel would have.

use std::collections::HashMap;
use std::fmt;

use relax_tir::{NDArray, Scalar};

/// Error raised by a library kernel or builtin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelError {
    /// The kernel name.
    pub kernel: String,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel `{}` failed: {}", self.kernel, self.detail)
    }
}

impl std::error::Error for KernelError {}

/// A destination-passing library kernel: reads `inputs`, writes `outputs`.
pub type LibKernel = fn(&[NDArray], &[NDArray]) -> Result<(), String>;

/// A value-returning builtin (used for data-dependent operators whose
/// output must be allocated by the callee, e.g. `unique`).
pub type BuiltinFn = fn(&[NDArray]) -> Result<NDArray, String>;

/// Registry of library kernels and builtins.
#[derive(Clone)]
pub struct Registry {
    libs: HashMap<String, LibKernel>,
    builtins: HashMap<String, BuiltinFn>,
    /// Declared (inputs, outputs) arity per library kernel, used by the
    /// executable validator ([`crate::verify`]).
    lib_sigs: HashMap<String, (usize, usize)>,
    /// Declared input arity per builtin.
    builtin_sigs: HashMap<String, usize>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Registry({} libs, {} builtins)",
            self.libs.len(),
            self.builtins.len()
        )
    }
}

impl Default for Registry {
    fn default() -> Self {
        let mut r = Registry {
            libs: HashMap::new(),
            builtins: HashMap::new(),
            lib_sigs: HashMap::new(),
            builtin_sigs: HashMap::new(),
        };
        r.register_lib_with_signature("cublas.matmul", lib_matmul, 2, 1);
        r.register_lib_with_signature("cublas.matmul_relu", lib_matmul_relu, 2, 1);
        r.register_lib_with_signature("cutlass.rms_norm", lib_rms_norm, 2, 1);
        r.register_lib_with_signature("vm.builtin.kv_append", lib_kv_append, 2, 1);
        r.register_builtin_with_signature("builtin.unique", builtin_unique, 1);
        // The paged KV-cache builtins execute inside the VM (they pass
        // first-class handle values, which the tensor-only registry path
        // cannot carry); they are registered here so the executable
        // validator can check existence and arity.
        r.register_builtin_with_signature("vm.builtin.kv_cache.create", builtin_kv_vm_only, 1);
        r.register_builtin_with_signature("vm.builtin.kv_cache.append_paged", builtin_kv_vm_only, 3);
        r.register_builtin_with_signature("vm.builtin.kv_cache.view", builtin_kv_vm_only, 2);
        r.register_builtin_with_signature("vm.builtin.kv_cache.attention", builtin_kv_vm_only, 3);
        // The MoE routing builtins likewise run in the VM's handle
        // dispatcher (their shape args are first-class values); the
        // registry entries only carry validator-checkable signatures.
        r.register_builtin_with_signature("vm.builtin.moe.route", builtin_moe_vm_only, 1);
        r.register_builtin_with_signature("vm.builtin.moe.gather", builtin_moe_vm_only, 3);
        r.register_builtin_with_signature("vm.builtin.moe.scatter", builtin_moe_vm_only, 3);
        r
    }
}

impl Registry {
    /// Creates the default registry (cuBLAS/CUTLASS-style kernels plus the
    /// runtime builtins).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a library kernel. Without a declared
    /// signature the validator skips arity checks for it; prefer
    /// [`Registry::register_lib_with_signature`].
    pub fn register_lib(&mut self, name: impl Into<String>, kernel: LibKernel) {
        self.libs.insert(name.into(), kernel);
    }

    /// Registers a library kernel along with its destination-passing
    /// signature: `inputs` argument tensors, `outputs` result tensors.
    pub fn register_lib_with_signature(
        &mut self,
        name: impl Into<String>,
        kernel: LibKernel,
        inputs: usize,
        outputs: usize,
    ) {
        let name = name.into();
        self.lib_sigs.insert(name.clone(), (inputs, outputs));
        self.libs.insert(name, kernel);
    }

    /// Registers (or replaces) a builtin.
    pub fn register_builtin(&mut self, name: impl Into<String>, func: BuiltinFn) {
        self.builtins.insert(name.into(), func);
    }

    /// Registers a builtin along with its input arity.
    pub fn register_builtin_with_signature(
        &mut self,
        name: impl Into<String>,
        func: BuiltinFn,
        inputs: usize,
    ) {
        let name = name.into();
        self.builtin_sigs.insert(name.clone(), inputs);
        self.builtins.insert(name, func);
    }

    /// `true` if a library kernel with this name exists.
    pub fn has_lib(&self, name: &str) -> bool {
        self.libs.contains_key(name)
    }

    /// `true` if a builtin with this name exists.
    pub fn has_builtin(&self, name: &str) -> bool {
        self.builtins.contains_key(name)
    }

    /// Declared (inputs, outputs) arity of a library kernel, if known.
    pub fn lib_signature(&self, name: &str) -> Option<(usize, usize)> {
        self.lib_sigs.get(name).copied()
    }

    /// Declared input arity of a builtin, if known.
    pub fn builtin_signature(&self, name: &str) -> Option<usize> {
        self.builtin_sigs.get(name).copied()
    }

    /// Invokes a library kernel in destination-passing style.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] for unknown kernels or kernel failures.
    pub fn call_lib(
        &self,
        name: &str,
        inputs: &[NDArray],
        outputs: &[NDArray],
    ) -> Result<(), KernelError> {
        let kernel = self.libs.get(name).ok_or_else(|| KernelError {
            kernel: name.to_string(),
            detail: "not registered".to_string(),
        })?;
        kernel(inputs, outputs).map_err(|detail| KernelError {
            kernel: name.to_string(),
            detail,
        })
    }

    /// Invokes a value-returning builtin.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] for unknown builtins or failures.
    pub fn call_builtin(&self, name: &str, inputs: &[NDArray]) -> Result<NDArray, KernelError> {
        let func = self.builtins.get(name).ok_or_else(|| KernelError {
            kernel: name.to_string(),
            detail: "not registered".to_string(),
        })?;
        func(inputs).map_err(|detail| KernelError {
            kernel: name.to_string(),
            detail,
        })
    }
}

/// `out = a @ b` with `a: [.., m, k]` and `b: [k, n]` or equal-rank batched.
fn lib_matmul(inputs: &[NDArray], outputs: &[NDArray]) -> Result<(), String> {
    matmul_impl(inputs, outputs, false)
}

/// Matmul with fused ReLU epilogue (the "matmul with epilogue" pattern of
/// §4.6).
fn lib_matmul_relu(inputs: &[NDArray], outputs: &[NDArray]) -> Result<(), String> {
    matmul_impl(inputs, outputs, true)
}

fn matmul_impl(inputs: &[NDArray], outputs: &[NDArray], relu: bool) -> Result<(), String> {
    let [a, b] = inputs else {
        return Err(format!("expected 2 inputs, got {}", inputs.len()));
    };
    let [out] = outputs else {
        return Err(format!("expected 1 output, got {}", outputs.len()));
    };
    let (ashape, bshape) = (a.shape().to_vec(), b.shape().to_vec());
    if ashape.len() < 2 || bshape.len() < 2 {
        return Err("matmul operands must have rank >= 2".to_string());
    }
    let k = ashape[ashape.len() - 1];
    if bshape[bshape.len() - 2] != k {
        return Err(format!(
            "inner dimension mismatch: {k} vs {}",
            bshape[bshape.len() - 2]
        ));
    }
    let m = ashape[ashape.len() - 2];
    let n = bshape[bshape.len() - 1];
    let batch: usize = ashape[..ashape.len() - 2].iter().product();
    let b_batched = bshape.len() == ashape.len();
    let av = a.to_f64_vec();
    let bv = b.to_f64_vec();
    // Accumulate with per-step destination-dtype rounding, exactly like
    // the generated tensor program (which accumulates through the f32
    // output buffer) — keeps library and codegen paths bit-identical, so
    // the pipeline ablations can assert exact output equality.
    let out_dt = out.dtype();
    for bi in 0..batch {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    let aidx = (bi * m + i) * k + kk;
                    let bidx = if b_batched {
                        (bi * k + kk) * n + j
                    } else {
                        kk * n + j
                    };
                    acc = relax_tir::round_to_dtype(acc + av[aidx] * bv[bidx], out_dt);
                }
                if relu {
                    acc = acc.max(0.0);
                }
                out.set((bi * m + i) * n + j, Scalar::F(acc))
                    .map_err(|e| e.to_string())?;
            }
        }
    }
    Ok(())
}

/// RMS normalization over the last axis: `out = x * w / sqrt(mean(x^2) + eps)`.
fn lib_rms_norm(inputs: &[NDArray], outputs: &[NDArray]) -> Result<(), String> {
    let [x, w] = inputs else {
        return Err(format!("expected 2 inputs, got {}", inputs.len()));
    };
    let [out] = outputs else {
        return Err(format!("expected 1 output, got {}", outputs.len()));
    };
    let shape = x.shape().to_vec();
    let d = *shape.last().ok_or("rms_norm needs rank >= 1")?;
    let rows = x.numel() / d.max(1);
    let xv = x.to_f64_vec();
    let wv = w.to_f64_vec();
    if wv.len() != d {
        return Err(format!("weight length {} != {d}", wv.len()));
    }
    const EPS: f64 = 1e-5;
    for r in 0..rows {
        let row = &xv[r * d..(r + 1) * d];
        // The generated program accumulates the squared sum through an
        // f32 local buffer and divides by `d` cast to f32 — mirror both
        // so this kernel stays bit-identical to the codegen path.
        let mut sq_sum = 0.0;
        for v in row {
            sq_sum = relax_tir::round_to_dtype(sq_sum + v * v, relax_arith::DataType::F32);
        }
        let ms = sq_sum / (d as f32 as f64);
        let denom = (ms + EPS).sqrt();
        for (c, v) in row.iter().enumerate() {
            out.set(r * d + c, Scalar::F(v * wv[c] / denom))
                .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// The paged KV-cache builtins never reach the registry: the VM routes
/// the `vm.builtin.kv_cache.` prefix to its handle dispatcher first.
/// This stub exists so the names carry validator-checkable signatures.
fn builtin_kv_vm_only(_inputs: &[NDArray]) -> Result<NDArray, String> {
    Err("kv_cache builtins require VM handle dispatch".to_string())
}

/// Same arrangement for the MoE routing builtins: the VM routes the
/// `vm.builtin.moe.` prefix to `crate::moe::dispatch` before this path.
fn builtin_moe_vm_only(_inputs: &[NDArray]) -> Result<NDArray, String> {
    Err("moe builtins require VM handle dispatch".to_string())
}

fn kv_append_validate(
    inputs: &[NDArray],
    outputs: &[NDArray],
) -> Result<(NDArray, NDArray, NDArray), String> {
    let [cache, new] = inputs else {
        return Err(format!("expected 2 inputs, got {}", inputs.len()));
    };
    let [out] = outputs else {
        return Err(format!("expected 1 output, got {}", outputs.len()));
    };
    let cs = cache.shape();
    let ns = new.shape();
    let os = out.shape();
    if cs.len() != 4 || ns.len() != 4 || os.len() != 4 {
        return Err("kv_append expects rank-4 tensors".to_string());
    }
    if os[2] != cs[2] + ns[2] {
        return Err(format!(
            "output length {} != cache {} + new {}",
            os[2], cs[2], ns[2]
        ));
    }
    let (b, h, hd) = (os[0], os[1], os[3]);
    if cs[0] != b || cs[1] != h || cs[3] != hd || ns[0] != b || ns[1] != h || ns[3] != hd {
        return Err("kv_append operand shape mismatch".to_string());
    }
    Ok((cache.clone(), new.clone(), out.clone()))
}

/// KV-cache append along axis 2: `out[.., 0..s, ..] = cache`,
/// `out[.., s.., ..] = new`. The runtime KV cache of real deployments
/// appends in place into pre-allocated pages (`vm.builtin.kv_cache.*`);
/// this copy-based kernel is the differential-test oracle, so it must
/// stay fast at long contexts: for each `(b, h)` row block the cache
/// and new segments are contiguous in both source and destination, so
/// the whole kernel is `2·b·h` bulk bit copies instead of a 4-deep
/// scalar loop (see [`kv_append_reference`] for the scalar original).
fn lib_kv_append(inputs: &[NDArray], outputs: &[NDArray]) -> Result<(), String> {
    let (cache, new, out) = kv_append_validate(inputs, outputs)?;
    let (cs2, ns2) = (cache.shape()[2], new.shape()[2]);
    let os = out.shape().to_vec();
    if cache.dtype() != out.dtype() || new.dtype() != out.dtype() {
        // Mixed dtypes cannot bit-copy; keep the converting scalar path.
        return kv_append_reference(inputs, outputs);
    }
    let (b, h, hd) = (os[0], os[1], os[3]);
    for bi in 0..b {
        for hi in 0..h {
            let row = bi * h + hi;
            let dst = row * os[2] * hd;
            out.copy_range_from(dst, &cache, row * cs2 * hd, cs2 * hd)
                .map_err(|e| e.to_string())?;
            out.copy_range_from(dst + cs2 * hd, &new, row * ns2 * hd, ns2 * hd)
                .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// The original per-element `kv_append`: a 4-deep scalar loop with one
/// `set` per element. Kept as the micro-benchmark baseline for the
/// row-copy rewrite and as the conversion fallback for mixed dtypes;
/// bitwise-identical to the registered `vm.builtin.kv_append` row-copy
/// implementation on same-dtype inputs.
pub fn kv_append_reference(inputs: &[NDArray], outputs: &[NDArray]) -> Result<(), String> {
    let (cache, new, out) = kv_append_validate(inputs, outputs)?;
    let (cs2, ns2) = (cache.shape()[2], new.shape()[2]);
    let os = out.shape().to_vec();
    let (b, h, hd) = (os[0], os[1], os[3]);
    let cv = cache.to_f64_vec();
    let nv = new.to_f64_vec();
    for bi in 0..b {
        for hi in 0..h {
            for si in 0..os[2] {
                for di in 0..hd {
                    let v = if si < cs2 {
                        cv[((bi * h + hi) * cs2 + si) * hd + di]
                    } else {
                        nv[((bi * h + hi) * ns2 + (si - cs2)) * hd + di]
                    };
                    out.set(((bi * h + hi) * os[2] + si) * hd + di, Scalar::F(v))
                        .map_err(|e| e.to_string())?;
                }
            }
        }
    }
    Ok(())
}

/// Sorted deduplication; the canonical data-dependent operator (Figure 3).
fn builtin_unique(inputs: &[NDArray]) -> Result<NDArray, String> {
    let [x] = inputs else {
        return Err(format!("expected 1 input, got {}", inputs.len()));
    };
    let mut vals = x.to_f64_vec();
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    vals.dedup();
    NDArray::from_f64(&[vals.len()], x.dtype(), vals).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use relax_arith::DataType;

    #[test]
    fn matmul_kernel_matches_reference() {
        let r = Registry::new();
        let a = NDArray::from_f64(&[2, 3], DataType::F32, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = NDArray::from_f64(&[3, 2], DataType::F32, vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let out = NDArray::zeros(&[2, 2], DataType::F32);
        r.call_lib("cublas.matmul", &[a, b], std::slice::from_ref(&out))
            .unwrap();
        assert_eq!(out.to_f64_vec(), vec![58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_relu_clamps() {
        let r = Registry::new();
        let a = NDArray::from_f64(&[1, 1], DataType::F32, vec![-3.0]).unwrap();
        let b = NDArray::from_f64(&[1, 1], DataType::F32, vec![2.0]).unwrap();
        let out = NDArray::zeros(&[1, 1], DataType::F32);
        r.call_lib("cublas.matmul_relu", &[a, b], std::slice::from_ref(&out))
            .unwrap();
        assert_eq!(out.to_f64_vec(), vec![0.0]);
    }

    #[test]
    fn batched_matmul() {
        let r = Registry::new();
        // 2 batches of 1x2 @ 2x1
        let a = NDArray::from_f64(&[2, 1, 2], DataType::F32, vec![1., 2., 3., 4.]).unwrap();
        let b = NDArray::from_f64(&[2, 2, 1], DataType::F32, vec![1., 1., 2., 2.]).unwrap();
        let out = NDArray::zeros(&[2, 1, 1], DataType::F32);
        r.call_lib("cublas.matmul", &[a, b], std::slice::from_ref(&out))
            .unwrap();
        assert_eq!(out.to_f64_vec(), vec![3., 14.]);
    }

    #[test]
    fn unique_builtin_dedups_sorted() {
        let r = Registry::new();
        let x = NDArray::from_f64(&[5], DataType::F32, vec![3., 1., 3., 2., 1.]).unwrap();
        let out = r.call_builtin("builtin.unique", &[x]).unwrap();
        assert_eq!(out.shape(), &[3]);
        assert_eq!(out.to_f64_vec(), vec![1., 2., 3.]);
    }

    #[test]
    fn unknown_kernel_is_an_error() {
        let r = Registry::new();
        let err = r.call_lib("nope", &[], &[]).unwrap_err();
        assert_eq!(err.kernel, "nope");
        assert!(r.call_builtin("nope", &[]).is_err());
        assert!(r.has_lib("cublas.matmul"));
        assert!(!r.has_lib("nope"));
    }

    #[test]
    fn kv_append_row_copy_matches_scalar_reference() {
        let r = Registry::new();
        let (b, h, s, n, hd) = (2usize, 3usize, 5usize, 2usize, 4usize);
        let mut x = 0.5f64;
        // Values as kernels produce them: rounded to the dtype on store.
        let mut next = || {
            x = (x * 1103515245.0 + 12345.0) % 1.0e6;
            relax_tir::round_to_dtype(x / 1.0e6 - 0.5, DataType::F32)
        };
        let cache = NDArray::from_f64(
            &[b, h, s, hd],
            DataType::F32,
            (0..b * h * s * hd).map(|_| next()).collect(),
        )
        .unwrap();
        let new = NDArray::from_f64(
            &[b, h, n, hd],
            DataType::F32,
            (0..b * h * n * hd).map(|_| next()).collect(),
        )
        .unwrap();
        let fast = NDArray::zeros(&[b, h, s + n, hd], DataType::F32);
        let slow = NDArray::zeros(&[b, h, s + n, hd], DataType::F32);
        r.call_lib(
            "vm.builtin.kv_append",
            &[cache.clone(), new.clone()],
            std::slice::from_ref(&fast),
        )
        .unwrap();
        kv_append_reference(&[cache, new], std::slice::from_ref(&slow)).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn kv_cache_builtins_have_signatures_but_need_the_vm() {
        let r = Registry::new();
        for (name, arity) in [
            ("vm.builtin.kv_cache.create", 1),
            ("vm.builtin.kv_cache.append_paged", 3),
            ("vm.builtin.kv_cache.view", 2),
            ("vm.builtin.kv_cache.attention", 3),
        ] {
            assert!(r.has_builtin(name), "{name}");
            assert_eq!(r.builtin_signature(name), Some(arity), "{name}");
            // Direct registry calls fail: handles only exist in the VM.
            assert!(r.call_builtin(name, &[]).is_err());
        }
    }

    #[test]
    fn rms_norm_kernel_matches_reference() {
        let r = Registry::new();
        let x = NDArray::from_f64(&[1, 4], DataType::F32, vec![1., 2., 3., 4.]).unwrap();
        let w = NDArray::from_f64(&[4], DataType::F32, vec![1., 1., 1., 1.]).unwrap();
        let out = NDArray::zeros(&[1, 4], DataType::F32);
        r.call_lib("cutlass.rms_norm", &[x, w], std::slice::from_ref(&out))
            .unwrap();
        let denom = ((1. + 4. + 9. + 16.) / 4.0f64 + 1e-5).sqrt();
        for (g, e) in out.to_f64_vec().iter().zip([1., 2., 3., 4.]) {
            assert!((g - e / denom).abs() < 1e-5);
        }
    }
}
