//! The virtual machine interpreter.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use relax_arith::{DataType, EvalError, PrimExpr, Var as SymVar};
use relax_tir::interp::{self, InterpError};
use relax_tir::{NDArray, PlanError};

use crate::exec::{Executable, Instr, Reg, VmFunction};
use crate::fault::{FaultInjector, FaultPlan, FaultSite};
use crate::kv_cache::{self, KV_CACHE_PREFIX};
use crate::memory::{KvPagePool, MemoryStats, PooledAllocator};
use crate::moe::{self, MOE_PREFIX};
use crate::plan_cache::{CachedPlan, PlanCacheSession, SharedPlanCache};
use crate::registry::{KernelError, Registry};
use crate::value::Value;

/// What went wrong during VM execution (the error taxonomy; see
/// DESIGN.md "Robustness & error taxonomy").
#[derive(Debug)]
pub enum VmErrorKind {
    /// No function with the given name.
    UnknownFunction(String),
    /// No tensor program with the given name.
    UnknownTir(String),
    /// Wrong argument count for a function call.
    ArgCount {
        /// Function name.
        func: String,
        /// Expected count.
        expected: usize,
        /// Provided count.
        actual: usize,
    },
    /// A register held a value of the wrong kind.
    TypeMismatch {
        /// What was needed.
        expected: &'static str,
        /// What was found.
        actual: &'static str,
    },
    /// A runtime shape check (function boundary or `match_cast`) failed.
    ShapeCheck {
        /// Context (which check).
        ctx: String,
        /// Detail.
        detail: String,
    },
    /// A tensor did not fit its planned storage (strict mode or memory
    /// capacity exhausted; in the default configuration a planned-storage
    /// overflow degrades to the pooled allocator instead).
    StorageOverflow {
        /// Bytes required.
        required: usize,
        /// Bytes available.
        available: usize,
    },
    /// A symbolic expression could not be evaluated.
    Eval(EvalError),
    /// A tensor program failed.
    Interp(InterpError),
    /// A library kernel or builtin failed.
    Kernel(KernelError),
    /// Function ended without `Ret`.
    NoReturn(String),
}

impl fmt::Display for VmErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmErrorKind::UnknownFunction(n) => write!(f, "unknown VM function `{n}`"),
            VmErrorKind::UnknownTir(n) => write!(f, "unknown tensor program `{n}`"),
            VmErrorKind::ArgCount {
                func,
                expected,
                actual,
            } => write!(f, "`{func}` expects {expected} args, got {actual}"),
            VmErrorKind::TypeMismatch { expected, actual } => {
                write!(f, "expected a {expected} value, got {actual}")
            }
            VmErrorKind::ShapeCheck { ctx, detail } => {
                write!(f, "runtime shape check failed at {ctx}: {detail}")
            }
            VmErrorKind::StorageOverflow {
                required,
                available,
            } => write!(
                f,
                "tensor needs {required} bytes but storage holds {available}"
            ),
            VmErrorKind::Eval(e) => write!(f, "shape evaluation failed: {e}"),
            VmErrorKind::Interp(e) => write!(f, "tensor program failed: {e}"),
            VmErrorKind::Kernel(e) => write!(f, "{e}"),
            VmErrorKind::NoReturn(n) => write!(f, "function `{n}` ended without returning"),
        }
    }
}

/// One frame of error provenance: which function, which program counter,
/// and the rendered instruction that was executing when the error crossed
/// this frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameEntry {
    /// The VM function.
    pub func: String,
    /// Instruction index within its block (capture-region bodies count
    /// from zero).
    pub pc: usize,
    /// The instruction, rendered.
    pub instr: String,
}

impl fmt::Display for FrameEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at {}[pc {}]: {}", self.func, self.pc, self.instr)
    }
}

/// Error raised during VM execution: the failure [`VmErrorKind`] plus a
/// frame trace recording where it happened, innermost frame first.
///
/// The trace is what turns "tensor program failed" into an actionable
/// report: the exact instruction, its index, and the chain of VM calls
/// that reached it.
#[derive(Debug)]
pub struct VmError {
    /// What failed.
    pub kind: VmErrorKind,
    /// Provenance frames, innermost first.
    pub trace: Vec<FrameEntry>,
}

impl VmError {
    /// Creates an error with an empty trace (frames are appended as it
    /// propagates out of the interpreter loop).
    pub fn new(kind: VmErrorKind) -> Self {
        VmError {
            kind,
            trace: Vec::new(),
        }
    }

    /// The innermost frame, if the error was raised while executing an
    /// instruction.
    pub fn origin(&self) -> Option<&FrameEntry> {
        self.trace.first()
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        for frame in &self.trace {
            write!(f, "\n  {frame}")?;
        }
        Ok(())
    }
}

impl std::error::Error for VmError {}

impl From<VmErrorKind> for VmError {
    fn from(kind: VmErrorKind) -> Self {
        VmError::new(kind)
    }
}

impl From<EvalError> for VmError {
    fn from(e: EvalError) -> Self {
        VmError::new(VmErrorKind::Eval(e))
    }
}

impl From<InterpError> for VmError {
    fn from(e: InterpError) -> Self {
        VmError::new(VmErrorKind::Interp(e))
    }
}

impl From<KernelError> for VmError {
    fn from(e: KernelError) -> Self {
        VmError::new(VmErrorKind::Kernel(e))
    }
}

/// Execution counters used by the experiments: kernel launches (for the
/// CUDA-graph ablation), memory behaviour (Table 2), runtime shape
/// checks, and the robustness counters (fallbacks, injected faults,
/// recoveries).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Telemetry {
    /// Individual kernel launches charged to the device (graph replay
    /// charges one per region).
    pub kernel_launches: u64,
    /// Tensor-program invocations.
    pub tir_calls: u64,
    /// Library kernel invocations.
    pub lib_calls: u64,
    /// Runtime builtin invocations.
    pub builtin_calls: u64,
    /// Graph-capture events (first executions of capture regions).
    pub captures: u64,
    /// Graph replays.
    pub replays: u64,
    /// Launches avoided thanks to replay.
    pub launches_saved: u64,
    /// Runtime shape checks executed.
    pub shape_checks: u64,
    /// Pooled-allocator statistics (unplanned path).
    pub pool: MemoryStats,
    /// Total bytes held by planned static storage.
    pub planned_bytes: usize,
    /// Planned-storage overflows that degraded to the pooled allocator
    /// instead of failing the run.
    pub fallback_allocs: u64,
    /// Faults injected by the fault-injection harness.
    pub faults_injected: u64,
    /// Successful runs completed immediately after a failed run — the
    /// observable form of the "clean state after error" guarantee.
    pub recoveries: u64,
    /// Kernel-plan cache hits: `CallTir` launches that reused a compiled
    /// plan for their exact (function, shapes) key.
    pub plan_cache_hits: u64,
    /// Kernel-plan cache misses (each triggers one plan compilation).
    pub plan_cache_misses: u64,
    /// Plans evicted from the cache (least recently used first).
    pub plan_cache_evictions: u64,
    /// Kernel plans compiled (shape-specialized lowerings of tensor
    /// programs).
    pub plan_compiles: u64,
    /// `CallTir` launches executed by the reference interpreter because
    /// the tensor program is outside the planner's supported subset.
    pub plan_fallbacks: u64,
}

/// Per-kernel execution statistics, split into plan-compile time (paid
/// once per (function, shapes) specialization) and run time (paid per
/// launch).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStat {
    /// Launches of this kernel.
    pub calls: u64,
    /// Accumulated host execution time across launches.
    pub run_time: std::time::Duration,
    /// Shape-specialized plan compilations for this kernel.
    pub plan_compiles: u64,
    /// Accumulated plan-compilation time.
    pub compile_time: std::time::Duration,
}

/// The Relax virtual machine.
///
/// A VM is split into *shared, read-only* state — the executable, the
/// foreign-function registry, and the kernel-plan cache, all behind cheap
/// `Arc`/handle clones so many VMs (e.g. a serving worker pool) can share
/// them — and *per-invocation* state (frames, the pooled allocator,
/// telemetry, capture and fault bookkeeping) that stays private to this
/// VM. `Vm` is `Send`, so each worker thread can own one.
///
/// # Examples
///
/// See the crate-level documentation and the `quickstart` example; a VM is
/// normally created from the output of the compilation pipeline.
#[derive(Debug)]
pub struct Vm {
    exec: Arc<Executable>,
    registry: Arc<Registry>,
    pool: PooledAllocator,
    telemetry: Telemetry,
    /// Capture regions that have been captured (by region id).
    captured: std::collections::HashSet<(usize, Vec<i64>)>,
    /// Static storages allocated once ahead of time: (func, instr idx) ->
    /// (storage id, bytes).
    static_storage: HashMap<(String, usize), (u64, usize)>,
    next_storage_id: u64,
    /// Per-kernel launch counts and compile/run time split.
    kernel_stats: HashMap<String, KernelStat>,
    /// Shape-keyed LRU cache of compiled kernel plans (possibly shared
    /// with other VMs).
    plan_cache: SharedPlanCache,
    /// This VM's probe session: lock-free cache hits via shard snapshots,
    /// batched LRU ticks and hit/miss counts (flushed after every `run`).
    cache_session: PlanCacheSession,
    /// Worker threads for parallelizable kernel plans (1 = serial).
    parallelism: usize,
    /// The page pool backing `vm.builtin.kv_cache.*` handles — shared
    /// across a serving engine's VMs so occupancy accounting is global.
    kv_pool: Arc<KvPagePool>,
    /// Scheduled fault injection (tests and chaos harnesses).
    fault: Option<FaultInjector>,
    /// Device memory capacity in bytes; allocations beyond it fail.
    memory_capacity: Option<u64>,
    /// When set, a planned-storage overflow is an error instead of
    /// degrading to the pooled allocator.
    strict_storage: bool,
    /// The previous `run` failed; the next success counts as a recovery.
    poisoned: bool,
}

impl Vm {
    /// Creates a VM for an executable with the default registry and a
    /// private plan cache.
    pub fn new(exec: Executable) -> Self {
        Self::with_registry(exec, Registry::new())
    }

    /// Creates a VM with a custom foreign-function registry and a private
    /// plan cache.
    pub fn with_registry(exec: Executable, registry: Registry) -> Self {
        Self::from_parts(
            Arc::new(exec),
            Arc::new(registry),
            SharedPlanCache::default(),
        )
    }

    /// Creates a VM from shared read-only parts: one immutable executable
    /// and registry can back many VMs, and a [`SharedPlanCache`] handle
    /// lets them all reuse each other's compiled kernel plans — the
    /// executable/VM split that makes multi-session serving possible.
    pub fn from_parts(
        exec: Arc<Executable>,
        registry: Arc<Registry>,
        plan_cache: SharedPlanCache,
    ) -> Self {
        let cache_session = plan_cache.session();
        Vm {
            exec,
            registry,
            pool: PooledAllocator::new(),
            telemetry: Telemetry::default(),
            captured: std::collections::HashSet::new(),
            static_storage: HashMap::new(),
            next_storage_id: 0,
            kernel_stats: HashMap::new(),
            plan_cache,
            cache_session,
            parallelism: 1,
            kv_pool: Arc::new(KvPagePool::unbounded(DEFAULT_KV_PAGE_TOKENS)),
            fault: None,
            memory_capacity: None,
            strict_storage: false,
            poisoned: false,
        }
    }

    /// Replaces the KV page pool used by `vm.builtin.kv_cache.create`.
    /// A serving engine installs one shared bounded pool in every worker
    /// VM so page occupancy is accounted globally.
    pub fn set_kv_pool(&mut self, pool: Arc<KvPagePool>) {
        self.kv_pool = pool;
    }

    /// The KV page pool backing this VM's cache handles.
    pub fn kv_pool(&self) -> &Arc<KvPagePool> {
        &self.kv_pool
    }

    /// Schedules deterministic fault injection (see [`crate::fault`]).
    /// Replaces any previously installed plan; counters restart.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        self.fault = if plan.is_empty() {
            None
        } else {
            Some(FaultInjector::new(plan))
        };
    }

    /// Removes any installed fault plan.
    pub fn clear_faults(&mut self) {
        self.fault = None;
    }

    /// Limits total runtime memory (pooled in-use plus planned storage) to
    /// `bytes`, as a device memory capacity would (see
    /// `relax_sim::DeviceSpec::memory_capacity`). `None` removes the
    /// limit.
    pub fn set_memory_capacity(&mut self, bytes: Option<u64>) {
        self.memory_capacity = bytes;
    }

    /// Controls overflow behaviour of planned storage: strict mode fails
    /// with [`VmErrorKind::StorageOverflow`]; the default degrades to the
    /// pooled allocator and counts
    /// [`Telemetry::fallback_allocs`].
    pub fn set_strict_storage(&mut self, strict: bool) {
        self.strict_storage = strict;
    }

    /// Per-kernel profile: `(name, calls, total seconds)` sorted by time
    /// descending. Times are host interpreter times — useful for finding
    /// hot kernels, not for performance claims (use `relax-sim` for
    /// those).
    pub fn profile(&self) -> Vec<(String, u64, f64)> {
        let mut rows: Vec<(String, u64, f64)> = self
            .kernel_stats
            .iter()
            .map(|(k, s)| (k.clone(), s.calls, s.run_time.as_secs_f64()))
            .collect();
        rows.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        rows
    }

    /// Per-kernel statistics with the compile-vs-run time split (see
    /// [`KernelStat`]). Plan compilations are charged to the kernel they
    /// specialize.
    pub fn kernel_stats(&self) -> &HashMap<String, KernelStat> {
        &self.kernel_stats
    }

    /// Sets how many `(function, shapes)` kernel-plan specializations the
    /// plan cache keeps (LRU eviction beyond that). `0` disables planning
    /// entirely: every `CallTir` launch runs on the reference
    /// interpreter. The default is 64. When the cache is shared, the new
    /// capacity applies to every VM sharing it.
    pub fn set_plan_cache_capacity(&mut self, capacity: usize) {
        self.telemetry.plan_cache_evictions += self.plan_cache.set_capacity(capacity);
    }

    /// Current plan-cache capacity.
    pub fn plan_cache_capacity(&self) -> usize {
        self.plan_cache.capacity()
    }

    /// Number of plans (and negative entries) currently cached.
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.len()
    }

    /// A handle to this VM's plan cache (clone it into other VMs to share
    /// compiled plans).
    pub fn plan_cache(&self) -> &SharedPlanCache {
        &self.plan_cache
    }

    /// Sets the number of worker threads used to execute parallelizable
    /// kernel plans. `1` (the default) runs serially on the calling
    /// thread; values above 1 chunk the outermost parallelizable loop
    /// across scoped threads. Chunks never share output elements, so
    /// results are bit-identical at any thread count.
    pub fn set_parallelism(&mut self, threads: usize) {
        self.parallelism = threads.max(1);
    }

    /// Current execution counters. Plan-cache hits/misses/evictions are
    /// *this VM's* counts; with a shared cache, the aggregate across all
    /// sharers is [`SharedPlanCache::stats`].
    pub fn telemetry(&self) -> Telemetry {
        let mut t = self.telemetry;
        t.pool = self.pool.stats();
        t.planned_bytes = self.planned_total();
        t
    }

    /// The executable being run.
    pub fn executable(&self) -> &Executable {
        &self.exec
    }

    /// Runs a function on the given arguments.
    ///
    /// After an error the VM remains in a clean, reusable state: pool
    /// blocks held by the failed invocation are returned, and a
    /// subsequent successful `run` counts as a
    /// [`Telemetry::recoveries`].
    ///
    /// # Errors
    ///
    /// Any [`VmError`]; in particular a `ShapeCheck` kind when a
    /// `match_cast` or boundary check fails at runtime. Errors carry a
    /// frame trace (function, pc, instruction).
    pub fn run(&mut self, func: &str, args: &[Value]) -> Result<Value, VmError> {
        let result = self.run_inner(func, args);
        // Publish this run's batched cache counts so shared stats satisfy
        // `hits + misses == probes` at every run boundary.
        self.plan_cache.flush_session(&mut self.cache_session);
        match &result {
            Ok(_) => {
                if self.poisoned {
                    self.poisoned = false;
                    self.telemetry.recoveries += 1;
                }
            }
            Err(_) => self.poisoned = true,
        }
        result
    }

    fn run_inner(&mut self, func: &str, args: &[Value]) -> Result<Value, VmError> {
        let vmf = self
            .exec
            .funcs
            .get(func)
            .cloned()
            .ok_or_else(|| VmError::new(VmErrorKind::UnknownFunction(func.to_string())))?;
        if args.len() != vmf.num_params {
            let mut e = VmError::new(VmErrorKind::ArgCount {
                func: func.to_string(),
                expected: vmf.num_params,
                actual: args.len(),
            });
            e.trace.push(FrameEntry {
                func: func.to_string(),
                pc: 0,
                instr: "<function entry>".to_string(),
            });
            return Err(e);
        }
        if vmf.num_params > vmf.num_regs {
            let mut e = VmError::new(VmErrorKind::TypeMismatch {
                expected: "a frame with registers for every parameter",
                actual: "out-of-range register",
            });
            e.trace.push(FrameEntry {
                func: func.to_string(),
                pc: 0,
                instr: "<function entry>".to_string(),
            });
            return Err(e);
        }
        let mut frame = Frame {
            regs: vec![Value::None; vmf.num_regs],
            heap: HashMap::new(),
            alloc_sizes: HashMap::new(),
        };
        for (i, a) in args.iter().enumerate() {
            frame.regs[i] = a.clone();
        }
        let result = self.exec_block(&vmf, &vmf.instrs, &mut frame, false);
        // Return pool blocks still held by this invocation — on success
        // *and* on error, so a failed run cannot leak pool memory.
        for (_, size) in frame.alloc_sizes.drain() {
            self.pool.free(size);
        }
        match result? {
            Some(v) => Ok(v),
            None => {
                let mut e = VmError::new(VmErrorKind::NoReturn(func.to_string()));
                e.trace.push(FrameEntry {
                    func: func.to_string(),
                    pc: vmf.instrs.len(),
                    instr: "<end of function>".to_string(),
                });
                Err(e)
            }
        }
    }

    /// Records a fault-site event; `true` when a scheduled fault fires.
    fn fault_fires(&mut self, site: FaultSite) -> bool {
        if let Some(inj) = &mut self.fault {
            if inj.on_event(site) {
                self.telemetry.faults_injected += 1;
                return true;
            }
        }
        false
    }

    /// Total bytes held by planned static storage.
    fn planned_total(&self) -> usize {
        self.static_storage.values().map(|(_, b)| *b).sum()
    }

    /// Allocates `bytes` from the pool, honouring the fault schedule and
    /// the configured memory capacity. Returns the granted block size.
    fn runtime_alloc(&mut self, bytes: usize) -> Result<usize, VmError> {
        if self.fault_fires(FaultSite::Alloc) {
            return Err(VmErrorKind::StorageOverflow {
                required: bytes,
                available: 0,
            }
            .into());
        }
        if let Some(cap) = self.memory_capacity {
            let used = (self.pool.stats().in_use + self.planned_total()) as u64;
            if used + bytes as u64 > cap {
                return Err(VmErrorKind::StorageOverflow {
                    required: bytes,
                    available: cap.saturating_sub(used) as usize,
                }
                .into());
            }
        }
        let (_, granted) = self.pool.alloc(bytes);
        Ok(granted)
    }

    fn exec_block(
        &mut self,
        vmf: &VmFunction,
        instrs: &[Instr],
        frame: &mut Frame,
        in_replay: bool,
    ) -> Result<Option<Value>, VmError> {
        for (idx, instr) in instrs.iter().enumerate() {
            let flow = self
                .exec_instr(vmf, idx, instr, frame, in_replay)
                .map_err(|mut e| {
                    e.trace.push(FrameEntry {
                        func: vmf.name.clone(),
                        pc: idx,
                        instr: render_instr(instr),
                    });
                    e
                })?;
            if let Some(v) = flow {
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    fn exec_instr(
        &mut self,
        vmf: &VmFunction,
        idx: usize,
        instr: &Instr,
        frame: &mut Frame,
        in_replay: bool,
    ) -> Result<Option<Value>, VmError> {
        match instr {
            Instr::AllocTensor { dst, shape, dtype } => {
                let dims = self.eval_dims(shape, &frame.heap)?;
                let bytes = checked_tensor_bytes(&dims, *dtype)?;
                let granted = self.runtime_alloc(bytes)?;
                if let Some(old) = frame.alloc_sizes.insert(*dst, granted) {
                    self.pool.free(old);
                }
                frame.set(*dst, Value::Tensor(NDArray::zeros(&dims, *dtype)))?;
            }
            Instr::AllocStorage { dst, bytes } => {
                let size = bytes.eval(&frame.heap)?.max(0) as usize;
                if self.fault_fires(FaultSite::Alloc) {
                    return Err(VmErrorKind::StorageOverflow {
                        required: size,
                        available: 0,
                    }
                    .into());
                }
                let key = (vmf.name.clone(), idx);
                let current = self.static_storage.get(&key).map(|(_, b)| *b);
                // Grow if a larger dynamic size arrives (static plans with
                // upper bounds never grow) — the growth is charged against
                // the memory capacity like any other allocation.
                if size > current.unwrap_or(0) {
                    if let Some(cap) = self.memory_capacity {
                        let extra = (size - current.unwrap_or(0)) as u64;
                        let used = (self.pool.stats().in_use + self.planned_total()) as u64;
                        if used + extra > cap {
                            return Err(VmErrorKind::StorageOverflow {
                                required: size,
                                available: cap.saturating_sub(used) as usize,
                            }
                            .into());
                        }
                    }
                }
                let entry = self.static_storage.entry(key).or_insert_with(|| {
                    let id = self.next_storage_id;
                    self.next_storage_id += 1;
                    (id, 0)
                });
                if size > entry.1 {
                    entry.1 = size;
                }
                let v = Value::Storage {
                    id: entry.0,
                    bytes: entry.1,
                };
                frame.set(*dst, v)?;
            }
            Instr::TensorFromStorage {
                dst,
                storage,
                shape,
                dtype,
            } => {
                let avail = match frame.get(*storage)? {
                    Value::Storage { bytes, .. } => *bytes,
                    other => {
                        return Err(VmErrorKind::TypeMismatch {
                            expected: "storage",
                            actual: other.kind(),
                        }
                        .into())
                    }
                };
                let dims = self.eval_dims(shape, &frame.heap)?;
                let required = checked_tensor_bytes(&dims, *dtype)?;
                if required > avail {
                    if self.strict_storage {
                        return Err(VmErrorKind::StorageOverflow {
                            required,
                            available: avail,
                        }
                        .into());
                    }
                    // Graceful degradation (§4.3): the runtime shape
                    // exceeded its declared upper bound. Instead of
                    // failing the run, take the tensor from the pooled
                    // allocator — the unplanned path — and count it.
                    let granted = self.runtime_alloc(required)?;
                    if let Some(old) = frame.alloc_sizes.insert(*dst, granted) {
                        self.pool.free(old);
                    }
                    self.telemetry.fallback_allocs += 1;
                    relax_trace::instant(
                        "vm",
                        || "alloc_fallback".to_string(),
                        || relax_trace::Payload::None,
                    );
                }
                frame.set(*dst, Value::Tensor(NDArray::zeros(&dims, *dtype)))?;
            }
            Instr::Kill { reg } => {
                if let Some(size) = frame.alloc_sizes.remove(reg) {
                    self.pool.free(size);
                }
                frame.set(*reg, Value::None)?;
            }
            Instr::CallTir {
                func,
                args,
                dsts,
                sym_args: _,
            } => {
                if !self.exec.tir_funcs.contains_key(func) {
                    return Err(VmError::new(VmErrorKind::UnknownTir(func.clone())));
                }
                if self.fault_fires(FaultSite::Kernel) {
                    return Err(injected_kernel_fault(func));
                }
                let mut tensors = Vec::with_capacity(args.len() + dsts.len());
                for r in args.iter().chain(dsts) {
                    tensors.push(frame.tensor(*r)?.clone());
                }
                let shapes: Vec<Vec<usize>> =
                    tensors.iter().map(|t| t.shape().to_vec()).collect();
                // Resolve a shape-specialized plan through the LRU cache;
                // a miss compiles once and is charged separately from run
                // time. Capacity 0 disables planning entirely. The trace
                // spans are the timing source for the kernel stats, so
                // the per-kernel report and the trace share one clock.
                let mut cache_outcome = None;
                let cached = if self.plan_cache.enabled() {
                    match self
                        .plan_cache
                        .lookup_with(&mut self.cache_session, func, &shapes)
                    {
                        Some(c) => {
                            self.telemetry.plan_cache_hits += 1;
                            cache_outcome = Some(relax_trace::CacheOutcome::Hit);
                            Some(c)
                        }
                        None => {
                            self.telemetry.plan_cache_misses += 1;
                            let sp = relax_trace::span("vm", || format!("plan:{func}"));
                            let compiled =
                                relax_tir::plan::compile(&self.exec.tir_funcs[func], &shapes);
                            let dt = sp.finish_with(|| relax_trace::Payload::Kernel {
                                kernel: func.clone(),
                                shapes: relax_trace::shape_sig(&shapes),
                                cache: Some(relax_trace::CacheOutcome::Miss),
                            });
                            let stat = self.kernel_stats.entry(func.clone()).or_default();
                            stat.plan_compiles += 1;
                            stat.compile_time += dt;
                            self.telemetry.plan_compiles += 1;
                            let entry = match compiled {
                                Ok(plan) => CachedPlan::Ready(Arc::new(plan)),
                                Err(PlanError::Unsupported(_)) => CachedPlan::Unplannable,
                                Err(PlanError::Interp(e)) => return Err(e.into()),
                            };
                            self.telemetry.plan_cache_evictions +=
                                self.plan_cache.insert(func, &shapes, entry.clone());
                            cache_outcome = Some(relax_trace::CacheOutcome::Miss);
                            Some(entry)
                        }
                    }
                } else {
                    None
                };
                if matches!(&cached, Some(CachedPlan::Unplannable)) {
                    cache_outcome = Some(relax_trace::CacheOutcome::Unplannable);
                }
                let sp = relax_trace::span("vm", || format!("kernel:{func}"));
                match cached {
                    Some(CachedPlan::Ready(plan)) => {
                        plan.run(&tensors, self.parallelism)?;
                    }
                    Some(CachedPlan::Unplannable) => {
                        self.telemetry.plan_fallbacks += 1;
                        interp::run(&self.exec.tir_funcs[func], &tensors)?;
                    }
                    None => {
                        interp::run(&self.exec.tir_funcs[func], &tensors)?;
                    }
                }
                let dt = sp.finish_with(|| relax_trace::Payload::Kernel {
                    kernel: func.clone(),
                    shapes: relax_trace::shape_sig(&shapes),
                    cache: cache_outcome,
                });
                let stat = self.kernel_stats.entry(func.clone()).or_default();
                stat.calls += 1;
                stat.run_time += dt;
                self.telemetry.tir_calls += 1;
                if !in_replay {
                    self.telemetry.kernel_launches += 1;
                } else {
                    self.telemetry.launches_saved += 1;
                }
            }
            Instr::CallLib { func, args, dsts } => {
                if self.fault_fires(FaultSite::Kernel) {
                    return Err(injected_kernel_fault(func));
                }
                let inputs: Result<Vec<_>, _> =
                    args.iter().map(|r| frame.tensor(*r).cloned()).collect();
                let (inputs, outputs): (Vec<_>, Vec<_>) = (
                    inputs?,
                    dsts.iter()
                        .map(|r| frame.tensor(*r).cloned())
                        .collect::<Result<Vec<_>, _>>()?,
                );
                let sp = relax_trace::span("vm", || format!("lib:{func}"));
                self.registry.call_lib(func, &inputs, &outputs)?;
                let dt = sp.finish_with(|| relax_trace::Payload::Kernel {
                    kernel: func.clone(),
                    shapes: relax_trace::shape_sig(
                        &inputs.iter().map(|t| t.shape().to_vec()).collect::<Vec<_>>(),
                    ),
                    cache: None,
                });
                let stat = self.kernel_stats.entry(func.clone()).or_default();
                stat.calls += 1;
                stat.run_time += dt;
                self.telemetry.lib_calls += 1;
                if !in_replay {
                    self.telemetry.kernel_launches += 1;
                } else {
                    self.telemetry.launches_saved += 1;
                }
            }
            Instr::CallBuiltin { func, args, dst } => {
                if self.fault_fires(FaultSite::Kernel) {
                    return Err(injected_kernel_fault(func));
                }
                // KV-cache builtins operate on first-class handle values
                // (and shapes), not just tensors: route them to the paged
                // dispatcher before the tensor-only registry path.
                if let Some(op) = func.strip_prefix(KV_CACHE_PREFIX) {
                    let vals: Result<Vec<Value>, VmError> =
                        args.iter().map(|r| frame.get(*r).cloned()).collect();
                    let out = kv_cache::dispatch(op, &vals?, &self.kv_pool)?;
                    self.telemetry.builtin_calls += 1;
                    frame.set(*dst, out)?;
                } else if let Some(op) = func.strip_prefix(MOE_PREFIX) {
                    // MoE routing builtins also take shape values (the
                    // expert index), so they use the handle dispatcher.
                    let vals: Result<Vec<Value>, VmError> =
                        args.iter().map(|r| frame.get(*r).cloned()).collect();
                    let out = moe::dispatch(op, &vals?)?;
                    self.telemetry.builtin_calls += 1;
                    frame.set(*dst, out)?;
                } else {
                    let inputs: Result<Vec<_>, _> =
                        args.iter().map(|r| frame.tensor(*r).cloned()).collect();
                    let out = self.registry.call_builtin(func, &inputs?)?;
                    self.telemetry.builtin_calls += 1;
                    frame.set(*dst, Value::Tensor(out))?;
                }
            }
            Instr::CallFunc { func, args, dst } => {
                let mut vals = Vec::with_capacity(args.len());
                for r in args {
                    vals.push(frame.get(*r)?.clone());
                }
                let out = self.run_inner(func, &vals)?;
                frame.set(*dst, out)?;
            }
            Instr::MatchShape { src, dims, ctx } => {
                if self.fault_fires(FaultSite::ShapeCheck) {
                    return Err(VmErrorKind::ShapeCheck {
                        ctx: ctx.clone(),
                        detail: "injected fault".to_string(),
                    }
                    .into());
                }
                let actual: Vec<i64> = match frame.get(*src)? {
                    Value::Tensor(t) => t.shape().iter().map(|&d| d as i64).collect(),
                    Value::Shape(dims) => dims.clone(),
                    other => {
                        return Err(VmErrorKind::TypeMismatch {
                            expected: "tensor or shape",
                            actual: other.kind(),
                        }
                        .into())
                    }
                };
                self.match_shape(&actual, dims, ctx, &mut frame.heap)?;
            }
            Instr::LoadConst { dst, index } => {
                let c = self.exec.constants.get(*index).cloned().ok_or_else(|| {
                    VmError::new(VmErrorKind::TypeMismatch {
                        expected: "a constant-pool entry",
                        actual: "out-of-range constant index",
                    })
                })?;
                frame.set(*dst, Value::Tensor(c))?;
            }
            Instr::MakeTuple { dst, items } => {
                let mut vals = Vec::with_capacity(items.len());
                for r in items {
                    vals.push(frame.get(*r)?.clone());
                }
                frame.set(*dst, Value::Tuple(vals))?;
            }
            Instr::GetItem { dst, src, index } => {
                let items = match frame.get(*src)? {
                    Value::Tuple(items) => items.clone(),
                    other => {
                        return Err(VmErrorKind::TypeMismatch {
                            expected: "tuple",
                            actual: other.kind(),
                        }
                        .into())
                    }
                };
                frame.set(*dst, items.get(*index).cloned().unwrap_or(Value::None))?;
            }
            Instr::MakeShape { dst, dims } => {
                let vals: Result<Vec<i64>, EvalError> =
                    dims.iter().map(|d| d.eval(&frame.heap)).collect();
                frame.set(*dst, Value::Shape(vals?))?;
            }
            Instr::Copy { dst, src } => {
                let v = frame.get(*src)?.clone();
                frame.set(*dst, v)?;
            }
            Instr::CaptureRegion { id, keys, body } => {
                let key_vals: Result<Vec<i64>, EvalError> =
                    keys.iter().map(|k| k.eval(&frame.heap)).collect();
                let cache_key = (*id, key_vals?);
                let replaying = self.captured.contains(&cache_key);
                if replaying {
                    self.telemetry.replays += 1;
                    // A replay costs a single launch for the region.
                    self.telemetry.kernel_launches += 1;
                } else {
                    self.captured.insert(cache_key);
                    self.telemetry.captures += 1;
                }
                if let Some(v) = self.exec_block(vmf, body, frame, replaying)? {
                    return Ok(Some(v));
                }
            }
            Instr::Ret { src } => {
                return Ok(Some(frame.get(*src)?.clone()));
            }
        }
        Ok(None)
    }

    fn eval_dims(
        &self,
        shape: &[PrimExpr],
        heap: &HashMap<SymVar, i64>,
    ) -> Result<Vec<usize>, VmError> {
        shape
            .iter()
            .map(|d| Ok(d.eval(heap)?.max(0) as usize))
            .collect()
    }

    fn match_shape(
        &mut self,
        actual_dims: &[i64],
        dims: &[PrimExpr],
        ctx: &str,
        heap: &mut HashMap<SymVar, i64>,
    ) -> Result<(), VmError> {
        if actual_dims.len() != dims.len() {
            return Err(VmErrorKind::ShapeCheck {
                ctx: ctx.to_string(),
                detail: format!(
                    "rank mismatch: expected {}, got {}",
                    dims.len(),
                    actual_dims.len()
                ),
            }
            .into());
        }
        for (expr, &actual) in dims.iter().zip(actual_dims) {
            self.telemetry.shape_checks += 1;
            match expr {
                PrimExpr::Var(v) if !heap.contains_key(v) => {
                    heap.insert(v.clone(), actual);
                }
                e => {
                    let expected = e.eval(heap)?;
                    if expected != actual {
                        return Err(VmErrorKind::ShapeCheck {
                            ctx: ctx.to_string(),
                            detail: format!("dimension `{e}` = {expected}, runtime value {actual}"),
                        }
                        .into());
                    }
                }
            }
        }
        Ok(())
    }
}

/// Default tokens per KV page when no shared pool is installed (matches
/// vLLM's default block size).
const DEFAULT_KV_PAGE_TOKENS: usize = 16;

/// Byte size of a tensor, with overflow-checked arithmetic: adversarial
/// shapes whose element count times element size exceeds `usize` must
/// surface as a [`VmErrorKind::StorageOverflow`], not a debug panic or a
/// release-mode wraparound that under-allocates.
fn checked_tensor_bytes(dims: &[usize], dtype: DataType) -> Result<usize, VmError> {
    dims.iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .and_then(|n| n.checked_mul(dtype.size_bytes()))
        .ok_or_else(|| {
            VmError::new(VmErrorKind::StorageOverflow {
                required: usize::MAX,
                available: 0,
            })
        })
}

/// An injected kernel failure, attributed to the faulting kernel.
fn injected_kernel_fault(kernel: &str) -> VmError {
    VmErrorKind::Kernel(KernelError {
        kernel: kernel.to_string(),
        detail: "injected fault".to_string(),
    })
    .into()
}

/// Renders an instruction for a frame-trace entry. Capture regions print
/// a one-line summary instead of their whole body.
fn render_instr(instr: &Instr) -> String {
    match instr {
        Instr::CaptureRegion { id, body, .. } => {
            format!("capture_region #{id} {{ {} instrs }}", body.len())
        }
        other => other.to_string(),
    }
}

struct Frame {
    regs: Vec<Value>,
    heap: HashMap<SymVar, i64>,
    /// Pool block sizes granted to registers (for recycling on `Kill`).
    alloc_sizes: HashMap<Reg, usize>,
}

const OUT_OF_RANGE: VmErrorKind = VmErrorKind::TypeMismatch {
    expected: "a value in a frame register",
    actual: "out-of-range register",
};

impl Frame {
    fn get(&self, reg: Reg) -> Result<&Value, VmError> {
        self.regs.get(reg).ok_or_else(|| VmError::new(OUT_OF_RANGE))
    }

    fn set(&mut self, reg: Reg, v: Value) -> Result<(), VmError> {
        match self.regs.get_mut(reg) {
            Some(slot) => {
                *slot = v;
                Ok(())
            }
            None => Err(VmError::new(OUT_OF_RANGE)),
        }
    }

    fn tensor(&self, reg: Reg) -> Result<&NDArray, VmError> {
        match self.get(reg)? {
            Value::Tensor(t) => Ok(t),
            other => Err(VmErrorKind::TypeMismatch {
                expected: "tensor",
                actual: other.kind(),
            }
            .into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relax_arith::DataType;
    use relax_tir::{grid, Buffer, PrimFunc, Stmt, TirExpr};

    /// Hand-assembles: main(x: (n,)) { y = alloc (n,); relu(x) -> y; ret y }
    fn relu_exec() -> Executable {
        let n = SymVar::new("n");
        let xb = Buffer::new("X", vec![n.clone().into()], DataType::F32);
        let yb = Buffer::new("Y", vec![n.clone().into()], DataType::F32);
        let (iv, nest) = grid(&[("i", n.clone().into())]);
        let body = nest.build(Stmt::store(
            &yb,
            vec![iv[0].clone().into()],
            TirExpr::Max(
                Box::new(TirExpr::load(&xb, vec![iv[0].clone().into()])),
                Box::new(TirExpr::FloatImm(0.0)),
            ),
        ));
        let relu = PrimFunc::new("relu", vec![xb, yb], 1, body);

        let m = SymVar::new("n"); // the graph-level n
        let mut exec = Executable::new();
        exec.tir_funcs.insert("relu".into(), relu);
        exec.funcs.insert(
            "main".into(),
            VmFunction {
                name: "main".into(),
                num_params: 1,
                num_regs: 3,
                instrs: vec![
                    Instr::MatchShape {
                        src: 0,
                        dims: vec![m.clone().into()],
                        ctx: "param x".into(),
                    },
                    Instr::AllocTensor {
                        dst: 1,
                        shape: vec![m.into()],
                        dtype: DataType::F32,
                    },
                    Instr::CallTir {
                        func: "relu".into(),
                        args: vec![0],
                        dsts: vec![1],
                        sym_args: vec![],
                    },
                    Instr::Ret { src: 1 },
                ],
            },
        );
        exec
    }

    #[test]
    fn end_to_end_relu() {
        let mut vm = Vm::new(relu_exec());
        let x = NDArray::from_f64(&[4], DataType::F32, vec![-1., 2., -3., 4.]).unwrap();
        let out = vm.run("main", &[Value::Tensor(x)]).unwrap();
        let t = out.as_tensor().unwrap();
        assert_eq!(t.to_f64_vec(), vec![0., 2., 0., 4.]);
        let tel = vm.telemetry();
        assert_eq!(tel.kernel_launches, 1);
        assert_eq!(tel.tir_calls, 1);
        assert!(tel.shape_checks >= 1);
        assert!(tel.pool.footprint >= 16);
    }

    #[test]
    fn plan_cache_hits_on_repeated_shape() {
        let mut vm = Vm::new(relu_exec());
        let x = NDArray::from_f64(&[4], DataType::F32, vec![-1., 2., -3., 4.]).unwrap();
        vm.run("main", &[Value::Tensor(x.clone())]).unwrap();
        let out = vm.run("main", &[Value::Tensor(x)]).unwrap();
        assert_eq!(out.as_tensor().unwrap().to_f64_vec(), vec![0., 2., 0., 4.]);
        let tel = vm.telemetry();
        assert_eq!(tel.plan_cache_misses, 1);
        assert_eq!(tel.plan_cache_hits, 1);
        assert_eq!(tel.plan_compiles, 1);
        assert_eq!(tel.plan_fallbacks, 0);
        let stat = vm.kernel_stats()["relu"];
        assert_eq!(stat.calls, 2);
        assert_eq!(stat.plan_compiles, 1);
        assert!(stat.compile_time > std::time::Duration::ZERO);
    }

    #[test]
    fn plan_cache_misses_on_new_shape() {
        let mut vm = Vm::new(relu_exec());
        for n in [4usize, 8, 4, 8] {
            let x = NDArray::zeros(&[n], DataType::F32);
            vm.run("main", &[Value::Tensor(x)]).unwrap();
        }
        let tel = vm.telemetry();
        // One compile per distinct shape; repeats hit.
        assert_eq!(tel.plan_cache_misses, 2);
        assert_eq!(tel.plan_cache_hits, 2);
        assert_eq!(tel.plan_compiles, 2);
        assert_eq!(vm.plan_cache_len(), 2);
    }

    #[test]
    fn plan_cache_evicts_lru_when_over_capacity() {
        let mut vm = Vm::new(relu_exec());
        vm.set_plan_cache_capacity(1);
        for n in [4usize, 8, 4] {
            let x = NDArray::zeros(&[n], DataType::F32);
            vm.run("main", &[Value::Tensor(x)]).unwrap();
        }
        let tel = vm.telemetry();
        // Each shape change evicts the previous single entry, so the
        // third run (shape 4 again) must recompile.
        assert_eq!(tel.plan_cache_misses, 3);
        assert_eq!(tel.plan_cache_evictions, 2);
        assert_eq!(tel.plan_compiles, 3);
        assert_eq!(vm.plan_cache_len(), 1);
    }

    #[test]
    fn zero_capacity_disables_planning() {
        let mut vm = Vm::new(relu_exec());
        vm.set_plan_cache_capacity(0);
        let x = NDArray::from_f64(&[3], DataType::F32, vec![-5., 0., 5.]).unwrap();
        let out = vm.run("main", &[Value::Tensor(x)]).unwrap();
        assert_eq!(out.as_tensor().unwrap().to_f64_vec(), vec![0., 0., 5.]);
        let tel = vm.telemetry();
        assert_eq!(tel.plan_compiles, 0);
        assert_eq!(tel.plan_cache_misses, 0);
        assert_eq!(tel.plan_fallbacks, 0);
        assert_eq!(tel.tir_calls, 1);
    }

    #[test]
    fn parallel_execution_matches_serial() {
        let data: Vec<f64> = (0..1024).map(|i| (i as f64) - 512.0).collect();
        let x = NDArray::from_f64(&[1024], DataType::F32, data).unwrap();
        let mut serial = Vm::new(relu_exec());
        let a = serial.run("main", &[Value::Tensor(x.clone())]).unwrap();
        let mut parallel = Vm::new(relu_exec());
        parallel.set_parallelism(4);
        let b = parallel.run("main", &[Value::Tensor(x)]).unwrap();
        assert_eq!(
            a.as_tensor().unwrap().to_f64_vec(),
            b.as_tensor().unwrap().to_f64_vec()
        );
    }

    #[test]
    fn capture_region_replays_after_first_run() {
        let mut exec = relu_exec();
        // Wrap the alloc+call in a capture region.
        let f = exec.funcs.get_mut("main").unwrap();
        let body: Vec<Instr> = f.instrs.drain(1..3).collect();
        f.instrs.insert(
            1,
            Instr::CaptureRegion {
                id: 0,
                keys: vec![],
                body,
            },
        );
        let mut vm = Vm::new(exec);
        let x = NDArray::from_f64(&[2], DataType::F32, vec![1., -1.]).unwrap();
        vm.run("main", &[Value::Tensor(x.clone())]).unwrap();
        let t1 = vm.telemetry();
        assert_eq!(t1.captures, 1);
        assert_eq!(t1.replays, 0);
        assert_eq!(t1.kernel_launches, 1);
        let out = vm.run("main", &[Value::Tensor(x)]).unwrap();
        assert_eq!(out.as_tensor().unwrap().to_f64_vec(), vec![1., 0.]);
        let t2 = vm.telemetry();
        assert_eq!(t2.replays, 1);
        // Replay charged one launch for the whole region, and saved the
        // individual kernel launch inside it.
        assert_eq!(t2.kernel_launches, 2);
        assert_eq!(t2.launches_saved, 1);
    }

    #[test]
    fn shape_check_violation_raises_with_trace() {
        // Force a check failure: constant dim 4, runtime dim 3.
        let n = SymVar::new("n");
        let mut exec = relu_exec();
        exec.funcs.get_mut("main").unwrap().instrs[0] = Instr::MatchShape {
            src: 0,
            dims: vec![4.into()],
            ctx: "param x".into(),
        };
        // Rebind alloc to n is now unbound; replace with const too.
        exec.funcs.get_mut("main").unwrap().instrs[1] = Instr::AllocTensor {
            dst: 1,
            shape: vec![4.into()],
            dtype: DataType::F32,
        };
        let _ = n;
        let mut vm = Vm::new(exec);
        let x = NDArray::zeros(&[3], DataType::F32);
        let err = vm.run("main", &[Value::Tensor(x)]).unwrap_err();
        assert!(matches!(err.kind, VmErrorKind::ShapeCheck { .. }));
        // Provenance: function, pc and rendered instruction.
        let origin = err.origin().expect("frame trace");
        assert_eq!(origin.func, "main");
        assert_eq!(origin.pc, 0);
        assert!(origin.instr.contains("match_shape"), "{}", origin.instr);
        assert!(err.to_string().contains("at main[pc 0]"));
    }

    #[test]
    fn planned_storage_is_allocated_once_and_checked() {
        let n = SymVar::new("n");
        let mut exec = relu_exec();
        let f = exec.funcs.get_mut("main").unwrap();
        f.num_regs = 4;
        f.instrs[1] = Instr::AllocStorage {
            dst: 3,
            bytes: 64.into(),
        };
        f.instrs.insert(
            2,
            Instr::TensorFromStorage {
                dst: 1,
                storage: 3,
                shape: vec![n.into()],
                dtype: DataType::F32,
            },
        );
        // NOTE: the shape var in instrs[0] is a different identity than `n`
        // here; rebuild MatchShape to bind our n.
        let n2 = match &f.instrs[2] {
            Instr::TensorFromStorage { shape, .. } => shape[0].clone(),
            _ => unreachable!(),
        };
        f.instrs[0] = Instr::MatchShape {
            src: 0,
            dims: vec![n2],
            ctx: "param x".into(),
        };
        let mut vm = Vm::new(exec);
        vm.set_strict_storage(true);
        let x = NDArray::from_f64(&[4], DataType::F32, vec![1., 2., 3., 4.]).unwrap();
        vm.run("main", &[Value::Tensor(x.clone())]).unwrap();
        vm.run("main", &[Value::Tensor(x)]).unwrap();
        let tel = vm.telemetry();
        // One static storage of 64 bytes, allocated once across both runs.
        assert_eq!(tel.planned_bytes, 64);
        // Overflow: 32 floats need 128 bytes > 64 — an error in strict
        // mode.
        let big = NDArray::zeros(&[32], DataType::F32);
        let err = vm.run("main", &[Value::Tensor(big.clone())]).unwrap_err();
        assert!(matches!(err.kind, VmErrorKind::StorageOverflow { .. }));

        // Default mode: the same overflow degrades to the pooled
        // allocator and the run completes.
        vm.set_strict_storage(false);
        let out = vm.run("main", &[Value::Tensor(big)]).unwrap();
        assert_eq!(out.as_tensor().unwrap().shape(), &[32]);
        let tel = vm.telemetry();
        assert_eq!(tel.fallback_allocs, 1);
        // The failed strict run left a clean state; this success after an
        // error counts as a recovery.
        assert_eq!(tel.recoveries, 1);
    }

    #[test]
    fn per_kernel_profile_accumulates() {
        let mut vm = Vm::new(relu_exec());
        let x = NDArray::from_f64(&[4], DataType::F32, vec![1., -1., 2., -2.]).unwrap();
        vm.run("main", &[Value::Tensor(x.clone())]).unwrap();
        vm.run("main", &[Value::Tensor(x)]).unwrap();
        let profile = vm.profile();
        assert_eq!(profile.len(), 1);
        assert_eq!(profile[0].0, "relu");
        assert_eq!(profile[0].1, 2);
        assert!(profile[0].2 >= 0.0);
    }

    #[test]
    fn builtin_unique_via_vm() {
        let mut exec = Executable::new();
        exec.funcs.insert(
            "u".into(),
            VmFunction {
                name: "u".into(),
                num_params: 1,
                num_regs: 2,
                instrs: vec![
                    Instr::CallBuiltin {
                        func: "builtin.unique".into(),
                        args: vec![0],
                        dst: 1,
                    },
                    Instr::Ret { src: 1 },
                ],
            },
        );
        let mut vm = Vm::new(exec);
        let x = NDArray::from_f64(&[4], DataType::F32, vec![2., 1., 2., 1.]).unwrap();
        let out = vm.run("u", &[Value::Tensor(x)]).unwrap();
        assert_eq!(out.as_tensor().unwrap().shape(), &[2]);
    }

    #[test]
    fn injected_alloc_fault_fails_then_recovers() {
        let mut vm = Vm::new(relu_exec());
        vm.inject_faults(FaultPlan::new().fail_alloc(1));
        let x = NDArray::from_f64(&[2], DataType::F32, vec![1., -1.]).unwrap();
        let err = vm.run("main", &[Value::Tensor(x.clone())]).unwrap_err();
        assert!(matches!(err.kind, VmErrorKind::StorageOverflow { .. }));
        assert_eq!(err.origin().unwrap().pc, 1);
        // The failed run returned its pool blocks.
        assert_eq!(vm.telemetry().pool.in_use, 0);
        assert_eq!(vm.telemetry().faults_injected, 1);
        // The schedule is exhausted: the next run succeeds and counts as
        // a recovery.
        let out = vm.run("main", &[Value::Tensor(x)]).unwrap();
        assert_eq!(out.as_tensor().unwrap().to_f64_vec(), vec![1., 0.]);
        assert_eq!(vm.telemetry().recoveries, 1);
    }

    #[test]
    fn memory_capacity_bounds_the_pool() {
        let mut vm = Vm::new(relu_exec());
        vm.set_memory_capacity(Some(8)); // two f32s
        let small = NDArray::from_f64(&[2], DataType::F32, vec![1., -1.]).unwrap();
        vm.run("main", &[Value::Tensor(small)]).unwrap();
        let big = NDArray::zeros(&[64], DataType::F32);
        let err = vm.run("main", &[Value::Tensor(big)]).unwrap_err();
        match err.kind {
            VmErrorKind::StorageOverflow {
                required,
                available,
            } => {
                assert_eq!(required, 256);
                assert!(available <= 8);
            }
            other => panic!("expected StorageOverflow, got {other}"),
        }
    }

    /// The VM is `Send`: a serving engine moves one VM into each worker
    /// thread (compile-time assertion).
    #[test]
    fn vm_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Vm>();
        assert_send::<Executable>();
        fn assert_sync<T: Sync>() {}
        assert_sync::<crate::SharedPlanCache>();
        assert_sync::<Executable>();
    }

    /// Regression: `dims.product() * dtype.size_bytes()` overflowed on
    /// adversarial shapes (debug panic / release wraparound that
    /// under-allocates). Both alloc paths must return `StorageOverflow`.
    #[test]
    fn adversarial_shape_byte_overflow_is_an_error() {
        // AllocTensor path: (2^40) x (2^40) elements overflows usize.
        let huge = PrimExpr::Int(1i64 << 40);
        let mut exec = relu_exec();
        exec.funcs.get_mut("main").unwrap().instrs[1] = Instr::AllocTensor {
            dst: 1,
            shape: vec![huge.clone(), huge.clone()],
            dtype: DataType::F32,
        };
        let mut vm = Vm::new(exec);
        let x = NDArray::zeros(&[2], DataType::F32);
        let err = vm.run("main", &[Value::Tensor(x.clone())]).unwrap_err();
        assert!(matches!(err.kind, VmErrorKind::StorageOverflow { .. }), "{err}");
        assert_eq!(err.origin().unwrap().pc, 1);

        // TensorFromStorage path: same shape viewed into a small storage.
        let mut exec = relu_exec();
        let f = exec.funcs.get_mut("main").unwrap();
        f.num_regs = 4;
        f.instrs[1] = Instr::AllocStorage {
            dst: 3,
            bytes: 64.into(),
        };
        f.instrs.insert(
            2,
            Instr::TensorFromStorage {
                dst: 1,
                storage: 3,
                shape: vec![huge.clone(), huge],
                dtype: DataType::F32,
            },
        );
        let mut vm = Vm::new(exec);
        let err = vm.run("main", &[Value::Tensor(x)]).unwrap_err();
        assert!(matches!(err.kind, VmErrorKind::StorageOverflow { .. }), "{err}");
        // The failed run left a clean, reusable state.
        assert_eq!(vm.telemetry().pool.in_use, 0);
    }

    /// Two VMs built from the same shared parts reuse each other's
    /// compiled plans: the second VM's first launch is a cache hit.
    #[test]
    fn shared_plan_cache_warms_across_vms() {
        let exec = Arc::new(relu_exec());
        let registry = Arc::new(Registry::new());
        let cache = SharedPlanCache::default();
        let mut a = Vm::from_parts(exec.clone(), registry.clone(), cache.clone());
        let mut b = Vm::from_parts(exec, registry, cache.clone());
        let x = NDArray::from_f64(&[4], DataType::F32, vec![-1., 2., -3., 4.]).unwrap();
        a.run("main", &[Value::Tensor(x.clone())]).unwrap();
        let out = b.run("main", &[Value::Tensor(x)]).unwrap();
        assert_eq!(out.as_tensor().unwrap().to_f64_vec(), vec![0., 2., 0., 4.]);
        // VM `a` compiled; VM `b` hit the shared entry without compiling.
        assert_eq!(a.telemetry().plan_compiles, 1);
        assert_eq!(b.telemetry().plan_compiles, 0);
        assert_eq!(b.telemetry().plan_cache_hits, 1);
        assert_eq!(b.telemetry().plan_cache_misses, 0);
        let agg = cache.stats();
        assert_eq!(agg.hits, 1);
        assert_eq!(agg.misses, 1);
        assert_eq!(agg.len, 1);
    }

    #[test]
    fn corrupt_register_index_is_an_error_not_a_panic() {
        let mut exec = relu_exec();
        exec.funcs.get_mut("main").unwrap().instrs[3] = Instr::Ret { src: 99 };
        let mut vm = Vm::new(exec);
        let x = NDArray::from_f64(&[2], DataType::F32, vec![1., -1.]).unwrap();
        let err = vm.run("main", &[Value::Tensor(x)]).unwrap_err();
        assert!(matches!(err.kind, VmErrorKind::TypeMismatch { .. }));
        assert_eq!(err.origin().unwrap().pc, 3);
    }
}
