//! The virtual machine interpreter.

use std::collections::HashMap;
use std::fmt;

use relax_arith::{EvalError, PrimExpr, Var as SymVar};
use relax_tir::interp::{self, InterpError};
use relax_tir::NDArray;

use crate::exec::{Executable, Instr, Reg, VmFunction};
use crate::memory::{MemoryStats, PooledAllocator};
use crate::registry::{KernelError, Registry};
use crate::value::Value;

/// Error raised during VM execution.
#[derive(Debug)]
pub enum VmError {
    /// No function with the given name.
    UnknownFunction(String),
    /// No tensor program with the given name.
    UnknownTir(String),
    /// Wrong argument count for a function call.
    ArgCount {
        /// Function name.
        func: String,
        /// Expected count.
        expected: usize,
        /// Provided count.
        actual: usize,
    },
    /// A register held a value of the wrong kind.
    TypeMismatch {
        /// What was needed.
        expected: &'static str,
        /// What was found.
        actual: &'static str,
    },
    /// A runtime shape check (function boundary or `match_cast`) failed.
    ShapeCheck {
        /// Context (which check).
        ctx: String,
        /// Detail.
        detail: String,
    },
    /// A tensor did not fit its planned storage.
    StorageOverflow {
        /// Bytes required.
        required: usize,
        /// Bytes available.
        available: usize,
    },
    /// A symbolic expression could not be evaluated.
    Eval(EvalError),
    /// A tensor program failed.
    Interp(InterpError),
    /// A library kernel or builtin failed.
    Kernel(KernelError),
    /// Function ended without `Ret`.
    NoReturn(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::UnknownFunction(n) => write!(f, "unknown VM function `{n}`"),
            VmError::UnknownTir(n) => write!(f, "unknown tensor program `{n}`"),
            VmError::ArgCount {
                func,
                expected,
                actual,
            } => write!(f, "`{func}` expects {expected} args, got {actual}"),
            VmError::TypeMismatch { expected, actual } => {
                write!(f, "expected a {expected} value, got {actual}")
            }
            VmError::ShapeCheck { ctx, detail } => {
                write!(f, "runtime shape check failed at {ctx}: {detail}")
            }
            VmError::StorageOverflow {
                required,
                available,
            } => write!(
                f,
                "tensor needs {required} bytes but storage holds {available}"
            ),
            VmError::Eval(e) => write!(f, "shape evaluation failed: {e}"),
            VmError::Interp(e) => write!(f, "tensor program failed: {e}"),
            VmError::Kernel(e) => write!(f, "{e}"),
            VmError::NoReturn(n) => write!(f, "function `{n}` ended without returning"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<EvalError> for VmError {
    fn from(e: EvalError) -> Self {
        VmError::Eval(e)
    }
}

impl From<InterpError> for VmError {
    fn from(e: InterpError) -> Self {
        VmError::Interp(e)
    }
}

impl From<KernelError> for VmError {
    fn from(e: KernelError) -> Self {
        VmError::Kernel(e)
    }
}

/// Execution counters used by the experiments: kernel launches (for the
/// CUDA-graph ablation), memory behaviour (Table 2) and runtime shape
/// checks.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Telemetry {
    /// Individual kernel launches charged to the device (graph replay
    /// charges one per region).
    pub kernel_launches: u64,
    /// Tensor-program invocations.
    pub tir_calls: u64,
    /// Library kernel invocations.
    pub lib_calls: u64,
    /// Runtime builtin invocations.
    pub builtin_calls: u64,
    /// Graph-capture events (first executions of capture regions).
    pub captures: u64,
    /// Graph replays.
    pub replays: u64,
    /// Launches avoided thanks to replay.
    pub launches_saved: u64,
    /// Runtime shape checks executed.
    pub shape_checks: u64,
    /// Pooled-allocator statistics (unplanned path).
    pub pool: MemoryStats,
    /// Total bytes held by planned static storage.
    pub planned_bytes: usize,
}

/// The Relax virtual machine.
///
/// # Examples
///
/// See the crate-level documentation and the `quickstart` example; a VM is
/// normally created from the output of the compilation pipeline.
#[derive(Debug)]
pub struct Vm {
    exec: Executable,
    registry: Registry,
    pool: PooledAllocator,
    telemetry: Telemetry,
    /// Capture regions that have been captured (by region id).
    captured: std::collections::HashSet<(usize, Vec<i64>)>,
    /// Static storages allocated once ahead of time: (func, instr idx) ->
    /// (storage id, bytes).
    static_storage: HashMap<(String, usize), (u64, usize)>,
    next_storage_id: u64,
    /// Per-kernel call counts and accumulated host execution time.
    kernel_stats: HashMap<String, (u64, std::time::Duration)>,
}

impl Vm {
    /// Creates a VM for an executable with the default registry.
    pub fn new(exec: Executable) -> Self {
        Self::with_registry(exec, Registry::new())
    }

    /// Creates a VM with a custom foreign-function registry.
    pub fn with_registry(exec: Executable, registry: Registry) -> Self {
        Vm {
            exec,
            registry,
            pool: PooledAllocator::new(),
            telemetry: Telemetry::default(),
            captured: std::collections::HashSet::new(),
            static_storage: HashMap::new(),
            next_storage_id: 0,
            kernel_stats: HashMap::new(),
        }
    }

    /// Per-kernel profile: `(name, calls, total seconds)` sorted by time
    /// descending. Times are host interpreter times — useful for finding
    /// hot kernels, not for performance claims (use `relax-sim` for
    /// those).
    pub fn profile(&self) -> Vec<(String, u64, f64)> {
        let mut rows: Vec<(String, u64, f64)> = self
            .kernel_stats
            .iter()
            .map(|(k, (n, d))| (k.clone(), *n, d.as_secs_f64()))
            .collect();
        rows.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        rows
    }

    /// Current execution counters.
    pub fn telemetry(&self) -> Telemetry {
        let mut t = self.telemetry;
        t.pool = self.pool.stats();
        t.planned_bytes = self.static_storage.values().map(|(_, b)| *b).sum();
        t
    }

    /// The executable being run.
    pub fn executable(&self) -> &Executable {
        &self.exec
    }

    /// Runs a function on the given arguments.
    ///
    /// # Errors
    ///
    /// Any [`VmError`]; in particular [`VmError::ShapeCheck`] when a
    /// `match_cast` or boundary check fails at runtime.
    pub fn run(&mut self, func: &str, args: &[Value]) -> Result<Value, VmError> {
        let vmf = self
            .exec
            .funcs
            .get(func)
            .cloned()
            .ok_or_else(|| VmError::UnknownFunction(func.to_string()))?;
        if args.len() != vmf.num_params {
            return Err(VmError::ArgCount {
                func: func.to_string(),
                expected: vmf.num_params,
                actual: args.len(),
            });
        }
        let mut frame = Frame {
            regs: vec![Value::None; vmf.num_regs],
            heap: HashMap::new(),
            alloc_sizes: HashMap::new(),
        };
        for (i, a) in args.iter().enumerate() {
            frame.regs[i] = a.clone();
        }
        let result = self.exec_block(&vmf, &vmf.instrs, &mut frame, false)?;
        // Return pool blocks still held by this invocation.
        for (_, size) in frame.alloc_sizes.drain() {
            self.pool.free(size);
        }
        result.ok_or_else(|| VmError::NoReturn(func.to_string()))
    }

    fn exec_block(
        &mut self,
        vmf: &VmFunction,
        instrs: &[Instr],
        frame: &mut Frame,
        in_replay: bool,
    ) -> Result<Option<Value>, VmError> {
        for (idx, instr) in instrs.iter().enumerate() {
            match instr {
                Instr::AllocTensor { dst, shape, dtype } => {
                    let dims = self.eval_dims(shape, &frame.heap)?;
                    let bytes: usize = dims.iter().product::<usize>() * dtype.size_bytes();
                    let (_, granted) = self.pool.alloc(bytes);
                    frame.alloc_sizes.insert(*dst, granted);
                    frame.regs[*dst] = Value::Tensor(NDArray::zeros(&dims, *dtype));
                }
                Instr::AllocStorage { dst, bytes } => {
                    let size = bytes.eval(&frame.heap)?.max(0) as usize;
                    let key = (vmf.name.clone(), idx);
                    let entry = self.static_storage.entry(key).or_insert_with(|| {
                        let id = self.next_storage_id;
                        self.next_storage_id += 1;
                        (id, 0)
                    });
                    // Grow if a larger dynamic size arrives (static plans
                    // with upper bounds never grow).
                    if size > entry.1 {
                        entry.1 = size;
                    }
                    frame.regs[*dst] = Value::Storage {
                        id: entry.0,
                        bytes: entry.1,
                    };
                }
                Instr::TensorFromStorage {
                    dst,
                    storage,
                    shape,
                    dtype,
                } => {
                    let (avail, _id) = match &frame.regs[*storage] {
                        Value::Storage { bytes, id } => (*bytes, *id),
                        other => {
                            return Err(VmError::TypeMismatch {
                                expected: "storage",
                                actual: other.kind(),
                            })
                        }
                    };
                    let dims = self.eval_dims(shape, &frame.heap)?;
                    let required = dims.iter().product::<usize>() * dtype.size_bytes();
                    if required > avail {
                        return Err(VmError::StorageOverflow {
                            required,
                            available: avail,
                        });
                    }
                    frame.regs[*dst] = Value::Tensor(NDArray::zeros(&dims, *dtype));
                }
                Instr::Kill { reg } => {
                    if let Some(size) = frame.alloc_sizes.remove(reg) {
                        self.pool.free(size);
                    }
                    frame.regs[*reg] = Value::None;
                }
                Instr::CallTir {
                    func,
                    args,
                    dsts,
                    sym_args: _,
                } => {
                    let prim = self
                        .exec
                        .tir_funcs
                        .get(func)
                        .cloned()
                        .ok_or_else(|| VmError::UnknownTir(func.clone()))?;
                    let mut tensors = Vec::with_capacity(args.len() + dsts.len());
                    for r in args.iter().chain(dsts) {
                        tensors.push(frame.tensor(*r)?.clone());
                    }
                    let t0 = std::time::Instant::now();
                    interp::run(&prim, &tensors)?;
                    let entry = self
                        .kernel_stats
                        .entry(func.clone())
                        .or_insert((0, std::time::Duration::ZERO));
                    entry.0 += 1;
                    entry.1 += t0.elapsed();
                    self.telemetry.tir_calls += 1;
                    if !in_replay {
                        self.telemetry.kernel_launches += 1;
                    } else {
                        self.telemetry.launches_saved += 1;
                    }
                }
                Instr::CallLib { func, args, dsts } => {
                    let inputs: Result<Vec<_>, _> =
                        args.iter().map(|r| frame.tensor(*r).cloned()).collect();
                    let outputs: Result<Vec<_>, _> =
                        dsts.iter().map(|r| frame.tensor(*r).cloned()).collect();
                    let t0 = std::time::Instant::now();
                    self.registry.call_lib(func, &inputs?, &outputs?)?;
                    let entry = self
                        .kernel_stats
                        .entry(func.clone())
                        .or_insert((0, std::time::Duration::ZERO));
                    entry.0 += 1;
                    entry.1 += t0.elapsed();
                    self.telemetry.lib_calls += 1;
                    if !in_replay {
                        self.telemetry.kernel_launches += 1;
                    } else {
                        self.telemetry.launches_saved += 1;
                    }
                }
                Instr::CallBuiltin { func, args, dst } => {
                    let inputs: Result<Vec<_>, _> =
                        args.iter().map(|r| frame.tensor(*r).cloned()).collect();
                    let out = self.registry.call_builtin(func, &inputs?)?;
                    self.telemetry.builtin_calls += 1;
                    frame.regs[*dst] = Value::Tensor(out);
                }
                Instr::CallFunc { func, args, dst } => {
                    let vals: Vec<Value> = args.iter().map(|r| frame.regs[*r].clone()).collect();
                    let out = self.run(func, &vals)?;
                    frame.regs[*dst] = out;
                }
                Instr::MatchShape { src, dims, ctx } => {
                    let actual: Vec<i64> = match &frame.regs[*src] {
                        Value::Tensor(t) => t.shape().iter().map(|&d| d as i64).collect(),
                        Value::Shape(dims) => dims.clone(),
                        other => {
                            return Err(VmError::TypeMismatch {
                                expected: "tensor or shape",
                                actual: other.kind(),
                            })
                        }
                    };
                    self.match_shape(&actual, dims, ctx, &mut frame.heap)?;
                }
                Instr::LoadConst { dst, index } => {
                    let c = self
                        .exec
                        .constants
                        .get(*index)
                        .cloned()
                        .ok_or_else(|| VmError::UnknownFunction(format!("const[{index}]")))?;
                    frame.regs[*dst] = Value::Tensor(c);
                }
                Instr::MakeTuple { dst, items } => {
                    let vals: Vec<Value> = items.iter().map(|r| frame.regs[*r].clone()).collect();
                    frame.regs[*dst] = Value::Tuple(vals);
                }
                Instr::GetItem { dst, src, index } => {
                    let items = match &frame.regs[*src] {
                        Value::Tuple(items) => items.clone(),
                        other => {
                            return Err(VmError::TypeMismatch {
                                expected: "tuple",
                                actual: other.kind(),
                            })
                        }
                    };
                    frame.regs[*dst] = items.get(*index).cloned().unwrap_or(Value::None);
                }
                Instr::MakeShape { dst, dims } => {
                    let vals: Result<Vec<i64>, _> =
                        dims.iter().map(|d| d.eval(&frame.heap)).collect();
                    frame.regs[*dst] = Value::Shape(vals?);
                }
                Instr::Copy { dst, src } => {
                    frame.regs[*dst] = frame.regs[*src].clone();
                }
                Instr::CaptureRegion { id, keys, body } => {
                    let key_vals: Result<Vec<i64>, _> =
                        keys.iter().map(|k| k.eval(&frame.heap)).collect();
                    let cache_key = (*id, key_vals?);
                    let replaying = self.captured.contains(&cache_key);
                    if replaying {
                        self.telemetry.replays += 1;
                        // A replay costs a single launch for the region.
                        self.telemetry.kernel_launches += 1;
                    } else {
                        self.captured.insert(cache_key);
                        self.telemetry.captures += 1;
                    }
                    if let Some(v) = self.exec_block(vmf, body, frame, replaying)? {
                        return Ok(Some(v));
                    }
                }
                Instr::Ret { src } => {
                    return Ok(Some(frame.regs[*src].clone()));
                }
            }
        }
        Ok(None)
    }

    fn eval_dims(
        &self,
        shape: &[PrimExpr],
        heap: &HashMap<SymVar, i64>,
    ) -> Result<Vec<usize>, VmError> {
        shape
            .iter()
            .map(|d| Ok(d.eval(heap)?.max(0) as usize))
            .collect()
    }

    fn match_shape(
        &mut self,
        actual_dims: &[i64],
        dims: &[PrimExpr],
        ctx: &str,
        heap: &mut HashMap<SymVar, i64>,
    ) -> Result<(), VmError> {
        if actual_dims.len() != dims.len() {
            return Err(VmError::ShapeCheck {
                ctx: ctx.to_string(),
                detail: format!(
                    "rank mismatch: expected {}, got {}",
                    dims.len(),
                    actual_dims.len()
                ),
            });
        }
        for (expr, &actual) in dims.iter().zip(actual_dims) {
            self.telemetry.shape_checks += 1;
            match expr {
                PrimExpr::Var(v) if !heap.contains_key(v) => {
                    heap.insert(v.clone(), actual);
                }
                e => {
                    let expected = e.eval(heap)?;
                    if expected != actual {
                        return Err(VmError::ShapeCheck {
                            ctx: ctx.to_string(),
                            detail: format!("dimension `{e}` = {expected}, runtime value {actual}"),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

struct Frame {
    regs: Vec<Value>,
    heap: HashMap<SymVar, i64>,
    /// Pool block sizes granted to registers (for recycling on `Kill`).
    alloc_sizes: HashMap<Reg, usize>,
}

impl Frame {
    fn tensor(&self, reg: Reg) -> Result<&NDArray, VmError> {
        match &self.regs[reg] {
            Value::Tensor(t) => Ok(t),
            other => Err(VmError::TypeMismatch {
                expected: "tensor",
                actual: other.kind(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relax_arith::DataType;
    use relax_tir::{grid, Buffer, PrimFunc, Stmt, TirExpr};

    /// Hand-assembles: main(x: (n,)) { y = alloc (n,); relu(x) -> y; ret y }
    fn relu_exec() -> Executable {
        let n = SymVar::new("n");
        let xb = Buffer::new("X", vec![n.clone().into()], DataType::F32);
        let yb = Buffer::new("Y", vec![n.clone().into()], DataType::F32);
        let (iv, nest) = grid(&[("i", n.clone().into())]);
        let body = nest.build(Stmt::store(
            &yb,
            vec![iv[0].clone().into()],
            TirExpr::Max(
                Box::new(TirExpr::load(&xb, vec![iv[0].clone().into()])),
                Box::new(TirExpr::FloatImm(0.0)),
            ),
        ));
        let relu = PrimFunc::new("relu", vec![xb, yb], 1, body);

        let m = SymVar::new("n"); // the graph-level n
        let mut exec = Executable::new();
        exec.tir_funcs.insert("relu".into(), relu);
        exec.funcs.insert(
            "main".into(),
            VmFunction {
                name: "main".into(),
                num_params: 1,
                num_regs: 3,
                instrs: vec![
                    Instr::MatchShape {
                        src: 0,
                        dims: vec![m.clone().into()],
                        ctx: "param x".into(),
                    },
                    Instr::AllocTensor {
                        dst: 1,
                        shape: vec![m.into()],
                        dtype: DataType::F32,
                    },
                    Instr::CallTir {
                        func: "relu".into(),
                        args: vec![0],
                        dsts: vec![1],
                        sym_args: vec![],
                    },
                    Instr::Ret { src: 1 },
                ],
            },
        );
        exec
    }

    #[test]
    fn end_to_end_relu() {
        let mut vm = Vm::new(relu_exec());
        let x = NDArray::from_f64(&[4], DataType::F32, vec![-1., 2., -3., 4.]).unwrap();
        let out = vm.run("main", &[Value::Tensor(x)]).unwrap();
        let t = out.as_tensor().unwrap();
        assert_eq!(t.to_f64_vec(), vec![0., 2., 0., 4.]);
        let tel = vm.telemetry();
        assert_eq!(tel.kernel_launches, 1);
        assert_eq!(tel.tir_calls, 1);
        assert!(tel.shape_checks >= 1);
        assert!(tel.pool.footprint >= 16);
    }

    #[test]
    fn capture_region_replays_after_first_run() {
        let mut exec = relu_exec();
        // Wrap the alloc+call in a capture region.
        let f = exec.funcs.get_mut("main").unwrap();
        let body: Vec<Instr> = f.instrs.drain(1..3).collect();
        f.instrs.insert(
            1,
            Instr::CaptureRegion {
                id: 0,
                keys: vec![],
                body,
            },
        );
        let mut vm = Vm::new(exec);
        let x = NDArray::from_f64(&[2], DataType::F32, vec![1., -1.]).unwrap();
        vm.run("main", &[Value::Tensor(x.clone())]).unwrap();
        let t1 = vm.telemetry();
        assert_eq!(t1.captures, 1);
        assert_eq!(t1.replays, 0);
        assert_eq!(t1.kernel_launches, 1);
        let out = vm.run("main", &[Value::Tensor(x)]).unwrap();
        assert_eq!(out.as_tensor().unwrap().to_f64_vec(), vec![1., 0.]);
        let t2 = vm.telemetry();
        assert_eq!(t2.replays, 1);
        // Replay charged one launch for the whole region, and saved the
        // individual kernel launch inside it.
        assert_eq!(t2.kernel_launches, 2);
        assert_eq!(t2.launches_saved, 1);
    }

    #[test]
    fn shape_check_violation_raises() {
        // Force a check failure: constant dim 4, runtime dim 3.
        let n = SymVar::new("n");
        let mut exec = relu_exec();
        exec.funcs.get_mut("main").unwrap().instrs[0] = Instr::MatchShape {
            src: 0,
            dims: vec![4.into()],
            ctx: "param x".into(),
        };
        // Rebind alloc to n is now unbound; replace with const too.
        exec.funcs.get_mut("main").unwrap().instrs[1] = Instr::AllocTensor {
            dst: 1,
            shape: vec![4.into()],
            dtype: DataType::F32,
        };
        let _ = n;
        let mut vm = Vm::new(exec);
        let x = NDArray::zeros(&[3], DataType::F32);
        let err = vm.run("main", &[Value::Tensor(x)]).unwrap_err();
        assert!(matches!(err, VmError::ShapeCheck { .. }));
    }

    #[test]
    fn planned_storage_is_allocated_once_and_checked() {
        let n = SymVar::new("n");
        let mut exec = relu_exec();
        let f = exec.funcs.get_mut("main").unwrap();
        f.num_regs = 4;
        f.instrs[1] = Instr::AllocStorage {
            dst: 3,
            bytes: 64.into(),
        };
        f.instrs.insert(
            2,
            Instr::TensorFromStorage {
                dst: 1,
                storage: 3,
                shape: vec![n.into()],
                dtype: DataType::F32,
            },
        );
        // NOTE: the shape var in instrs[0] is a different identity than `n`
        // here; rebuild MatchShape to bind our n.
        let n2 = match &f.instrs[2] {
            Instr::TensorFromStorage { shape, .. } => shape[0].clone(),
            _ => unreachable!(),
        };
        f.instrs[0] = Instr::MatchShape {
            src: 0,
            dims: vec![n2],
            ctx: "param x".into(),
        };
        let mut vm = Vm::new(exec);
        let x = NDArray::from_f64(&[4], DataType::F32, vec![1., 2., 3., 4.]).unwrap();
        vm.run("main", &[Value::Tensor(x.clone())]).unwrap();
        vm.run("main", &[Value::Tensor(x)]).unwrap();
        let tel = vm.telemetry();
        // One static storage of 64 bytes, allocated once across both runs.
        assert_eq!(tel.planned_bytes, 64);
        // Overflow: 32 floats need 128 bytes > 64.
        let big = NDArray::zeros(&[32], DataType::F32);
        let err = vm.run("main", &[Value::Tensor(big)]).unwrap_err();
        assert!(matches!(err, VmError::StorageOverflow { .. }));
    }

    #[test]
    fn per_kernel_profile_accumulates() {
        let mut vm = Vm::new(relu_exec());
        let x = NDArray::from_f64(&[4], DataType::F32, vec![1., -1., 2., -2.]).unwrap();
        vm.run("main", &[Value::Tensor(x.clone())]).unwrap();
        vm.run("main", &[Value::Tensor(x)]).unwrap();
        let profile = vm.profile();
        assert_eq!(profile.len(), 1);
        assert_eq!(profile[0].0, "relu");
        assert_eq!(profile[0].1, 2);
        assert!(profile[0].2 >= 0.0);
    }

    #[test]
    fn builtin_unique_via_vm() {
        let mut exec = Executable::new();
        exec.funcs.insert(
            "u".into(),
            VmFunction {
                name: "u".into(),
                num_params: 1,
                num_regs: 2,
                instrs: vec![
                    Instr::CallBuiltin {
                        func: "builtin.unique".into(),
                        args: vec![0],
                        dst: 1,
                    },
                    Instr::Ret { src: 1 },
                ],
            },
        );
        let mut vm = Vm::new(exec);
        let x = NDArray::from_f64(&[4], DataType::F32, vec![2., 1., 2., 1.]).unwrap();
        let out = vm.run("u", &[Value::Tensor(x)]).unwrap();
        assert_eq!(out.as_tensor().unwrap().shape(), &[2]);
    }
}
