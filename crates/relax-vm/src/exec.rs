//! The lowered instruction set and executable module format.
//!
//! This is the "sequence of virtual machine instructions, each of which is
//! a call into a generated or builtin function" that the end of the
//! pipeline produces (§4.7). It doubles as the compiler's low-level IR: the
//! memory-planning and graph-capture passes transform instruction
//! sequences before the VM runs them.

use std::collections::BTreeMap;
use std::fmt;

use relax_arith::{DataType, PrimExpr};
use relax_tir::{NDArray, PrimFunc};

/// A virtual register index.
pub type Reg = usize;

/// A lowered instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Allocates a tensor through the runtime allocator (unplanned path).
    AllocTensor {
        /// Destination register.
        dst: Reg,
        /// Symbolic shape, evaluated against the shape heap.
        shape: Vec<PrimExpr>,
        /// Element type.
        dtype: DataType,
    },
    /// Allocates a storage block (planned path; Algorithm 3).
    AllocStorage {
        /// Destination register.
        dst: Reg,
        /// Symbolic byte size (constant when upper bounds were planned).
        bytes: PrimExpr,
    },
    /// Instantiates a tensor inside an existing storage block.
    TensorFromStorage {
        /// Destination register.
        dst: Reg,
        /// The storage register.
        storage: Reg,
        /// Symbolic shape.
        shape: Vec<PrimExpr>,
        /// Element type.
        dtype: DataType,
    },
    /// Declares that a register's value is dead; pooled storage is
    /// recycled.
    Kill {
        /// The dead register.
        reg: Reg,
    },
    /// Destination-passing call of a tensor program: outputs are
    /// pre-allocated tensors in `dsts`.
    CallTir {
        /// Tensor program name.
        func: String,
        /// Input registers.
        args: Vec<Reg>,
        /// Output registers (pre-allocated).
        dsts: Vec<Reg>,
        /// Extra symbolic arguments bound into the callee.
        sym_args: Vec<PrimExpr>,
    },
    /// Destination-passing call of a registered library kernel.
    CallLib {
        /// Library function name (e.g. `"cublas.matmul"`).
        func: String,
        /// Input registers.
        args: Vec<Reg>,
        /// Output registers (pre-allocated).
        dsts: Vec<Reg>,
    },
    /// Call of a value-returning runtime builtin (e.g. `"builtin.unique"`).
    CallBuiltin {
        /// Builtin name.
        func: String,
        /// Input registers.
        args: Vec<Reg>,
        /// Destination register.
        dst: Reg,
    },
    /// Calls another VM function.
    CallFunc {
        /// Callee name.
        func: String,
        /// Argument registers.
        args: Vec<Reg>,
        /// Destination register.
        dst: Reg,
    },
    /// Unifies a tensor's runtime shape with symbolic dimensions: fresh
    /// variables bind into the shape heap, known expressions are checked
    /// (the runtime side of `match_cast` and function-boundary checks).
    MatchShape {
        /// The tensor register.
        src: Reg,
        /// Expected dimensions.
        dims: Vec<PrimExpr>,
        /// Context string for error messages.
        ctx: String,
    },
    /// Loads a constant tensor from the executable's constant pool.
    LoadConst {
        /// Destination register.
        dst: Reg,
        /// Index into the constant pool.
        index: usize,
    },
    /// Builds a tuple value.
    MakeTuple {
        /// Destination register.
        dst: Reg,
        /// Field registers.
        items: Vec<Reg>,
    },
    /// Projects a tuple field.
    GetItem {
        /// Destination register.
        dst: Reg,
        /// Tuple register.
        src: Reg,
        /// Field index.
        index: usize,
    },
    /// Materializes a first-class shape value from the shape heap.
    MakeShape {
        /// Destination register.
        dst: Reg,
        /// Symbolic dimensions to evaluate.
        dims: Vec<PrimExpr>,
    },
    /// Copies a register.
    Copy {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// A statically-shaped region offloaded to device graph capture
    /// (§4.5): captured on first execution, replayed afterwards.
    CaptureRegion {
        /// Region identity (capture cache key).
        id: usize,
        /// Symbolic expressions whose runtime values extend the cache key —
        /// a region is re-captured when the dynamic shapes feeding it
        /// change, and replayed when they recur.
        keys: Vec<PrimExpr>,
        /// The instructions inside the captured region.
        body: Vec<Instr>,
    },
    /// Returns a register's value.
    Ret {
        /// The returned register.
        src: Reg,
    },
}

/// A lowered function.
#[derive(Debug, Clone, PartialEq)]
pub struct VmFunction {
    /// Function name.
    pub name: String,
    /// Number of parameters (occupying registers `0..num_params`).
    pub num_params: usize,
    /// Total register count.
    pub num_regs: usize,
    /// Instruction sequence.
    pub instrs: Vec<Instr>,
}

/// A complete lowered module: VM functions, the tensor programs they
/// launch, and constants — "packaged together into a single holistic
/// end-to-end module" (§4.7).
#[derive(Debug, Clone, Default)]
pub struct Executable {
    /// Lowered graph functions by name.
    pub funcs: BTreeMap<String, VmFunction>,
    /// Tensor programs by name.
    pub tir_funcs: BTreeMap<String, PrimFunc>,
    /// Constant pool.
    pub constants: Vec<NDArray>,
}

impl Executable {
    /// Creates an empty executable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a constant, returning its pool index.
    pub fn add_constant(&mut self, value: NDArray) -> usize {
        self.constants.push(value);
        self.constants.len() - 1
    }

    /// Looks up a function.
    pub fn function(&self, name: &str) -> Option<&VmFunction> {
        self.funcs.get(name)
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn regs(v: &[Reg]) -> String {
            v.iter()
                .map(|r| format!("%{r}"))
                .collect::<Vec<_>>()
                .join(", ")
        }
        fn exprs(v: &[PrimExpr]) -> String {
            v.iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        }
        match self {
            Instr::AllocTensor { dst, shape, dtype } => {
                write!(f, "%{dst} = alloc_tensor(({}), \"{dtype}\")", exprs(shape))
            }
            Instr::AllocStorage { dst, bytes } => {
                write!(f, "%{dst} = alloc_storage({bytes})")
            }
            Instr::TensorFromStorage {
                dst,
                storage,
                shape,
                dtype,
            } => write!(
                f,
                "%{dst} = tensor_from(%{storage}, ({}), \"{dtype}\")",
                exprs(shape)
            ),
            Instr::Kill { reg } => write!(f, "kill %{reg}"),
            Instr::CallTir {
                func,
                args,
                dsts,
                sym_args,
            } => {
                write!(f, "call_tir {func}({}) -> ({})", regs(args), regs(dsts))?;
                if !sym_args.is_empty() {
                    write!(f, " sym=({})", exprs(sym_args))?;
                }
                Ok(())
            }
            Instr::CallLib { func, args, dsts } => {
                write!(f, "call_lib \"{func}\"({}) -> ({})", regs(args), regs(dsts))
            }
            Instr::CallBuiltin { func, args, dst } => {
                write!(f, "%{dst} = builtin \"{func}\"({})", regs(args))
            }
            Instr::CallFunc { func, args, dst } => {
                write!(f, "%{dst} = call {func}({})", regs(args))
            }
            Instr::MatchShape { src, dims, ctx } => {
                write!(f, "match_shape %{src} ~ ({}) [{ctx}]", exprs(dims))
            }
            Instr::LoadConst { dst, index } => write!(f, "%{dst} = const[{index}]"),
            Instr::MakeTuple { dst, items } => {
                write!(f, "%{dst} = tuple({})", regs(items))
            }
            Instr::GetItem { dst, src, index } => {
                write!(f, "%{dst} = %{src}[{index}]")
            }
            Instr::MakeShape { dst, dims } => {
                write!(f, "%{dst} = shape({})", exprs(dims))
            }
            Instr::Copy { dst, src } => write!(f, "%{dst} = %{src}"),
            Instr::CaptureRegion { id, keys, body } => {
                write!(f, "capture_region #{id}")?;
                if !keys.is_empty() {
                    write!(f, " keys=({})", exprs(keys))?;
                }
                writeln!(f, " {{")?;
                for i in body {
                    writeln!(f, "  {i}")?;
                }
                write!(f, "}}")
            }
            Instr::Ret { src } => write!(f, "ret %{src}"),
        }
    }
}

impl fmt::Display for VmFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "vm_func {}(params={}, regs={}):",
            self.name, self.num_params, self.num_regs
        )?;
        for i in &self.instrs {
            writeln!(f, "  {i}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_display() {
        let i = Instr::CallTir {
            func: "mm".into(),
            args: vec![0, 1],
            dsts: vec![2],
            sym_args: vec![],
        };
        assert_eq!(i.to_string(), "call_tir mm(%0, %1) -> (%2)");
        let a = Instr::AllocStorage {
            dst: 3,
            bytes: PrimExpr::Int(1024),
        };
        assert_eq!(a.to_string(), "%3 = alloc_storage(1024)");
    }

    #[test]
    fn constant_pool_indices() {
        let mut e = Executable::new();
        let c = NDArray::zeros(&[1], DataType::F32);
        assert_eq!(e.add_constant(c.clone()), 0);
        assert_eq!(e.add_constant(c), 1);
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;
    use relax_arith::Var as SymVar;

    #[test]
    fn function_and_region_display() {
        let n = SymVar::new("n");
        let f = VmFunction {
            name: "main".into(),
            num_params: 1,
            num_regs: 3,
            instrs: vec![
                Instr::MatchShape {
                    src: 0,
                    dims: vec![n.clone().into()],
                    ctx: "param x".into(),
                },
                Instr::CaptureRegion {
                    id: 7,
                    keys: vec![n.clone().into()],
                    body: vec![Instr::CallLib {
                        func: "cublas.matmul".into(),
                        args: vec![0],
                        dsts: vec![1],
                    }],
                },
                Instr::MakeShape {
                    dst: 2,
                    dims: vec![n.into()],
                },
                Instr::Ret { src: 1 },
            ],
        };
        let text = f.to_string();
        assert!(text.contains("vm_func main(params=1, regs=3):"));
        assert!(text.contains("match_shape %0 ~ (n) [param x]"));
        assert!(text.contains("capture_region #7 keys=(n) {"));
        assert!(text.contains("call_lib \"cublas.matmul\"(%0) -> (%1)"));
        assert!(text.contains("%2 = shape(n)"));
        assert!(text.contains("ret %1"));
    }

    #[test]
    fn remaining_instruction_displays() {
        assert_eq!(
            Instr::TensorFromStorage {
                dst: 1,
                storage: 0,
                shape: vec![4.into()],
                dtype: DataType::F16,
            }
            .to_string(),
            "%1 = tensor_from(%0, (4), \"f16\")"
        );
        assert_eq!(Instr::Kill { reg: 3 }.to_string(), "kill %3");
        assert_eq!(Instr::Copy { dst: 1, src: 0 }.to_string(), "%1 = %0");
        assert_eq!(
            Instr::GetItem {
                dst: 2,
                src: 1,
                index: 4
            }
            .to_string(),
            "%2 = %1[4]"
        );
        assert_eq!(
            Instr::MakeTuple {
                dst: 2,
                items: vec![0, 1]
            }
            .to_string(),
            "%2 = tuple(%0, %1)"
        );
        assert_eq!(
            Instr::CallBuiltin {
                func: "builtin.unique".into(),
                args: vec![0],
                dst: 1
            }
            .to_string(),
            "%1 = builtin \"builtin.unique\"(%0)"
        );
        assert_eq!(
            Instr::CallFunc {
                func: "sub".into(),
                args: vec![0],
                dst: 1
            }
            .to_string(),
            "%1 = call sub(%0)"
        );
        assert_eq!(
            Instr::LoadConst { dst: 0, index: 2 }.to_string(),
            "%0 = const[2]"
        );
    }
}
