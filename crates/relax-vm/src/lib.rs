//! The Relax virtual machine: the runtime half of the AOT compilation flow
//! (§4.7).
//!
//! After the optimization pipeline, a Relax program is "a program comprised
//! mainly of low-level function calls" — this crate defines that lowered
//! form ([`Instr`] / [`VmFunction`] / [`Executable`]), and interprets it:
//!
//! - **Shape heap** ([`Vm`]): runtime values of symbolic variables are
//!   populated from input tensor shapes (`MatchShape`) and used to evaluate
//!   symbolic expressions when allocating tensors and constructing shapes.
//! - **Memory system** ([`memory`]): a [`memory::PooledAllocator`] for the
//!   unplanned baseline, and planned static storage (`AllocStorage` +
//!   `TensorFromStorage`) for the memory-planning path of Algorithm 3, with
//!   byte-level telemetry that the Table 2 experiment reads.
//! - **Foreign functions** ([`registry`]): generated tensor programs run on
//!   the [`relax_tir::interp`] reference interpreter; "vendor library"
//!   kernels and data-dependent builtins (`unique`) are native Rust.
//! - **Graph capture** (`CaptureRegion`): the CUDA Graph model — the first
//!   execution captures, subsequent executions replay with a single launch
//!   overhead (§4.5).

#![forbid(unsafe_code)]

mod exec;
pub mod fault;
pub mod kv_cache;
pub mod memory;
pub mod moe;
mod plan_cache;
pub mod registry;
mod value;
pub mod verify;
mod vm;

pub use exec::{Executable, Instr, Reg, VmFunction};
pub use fault::{FaultInjector, FaultPlan, FaultSite, FiredFault};
pub use kv_cache::{KvCache, KvCacheConfig, KV_CACHE_PREFIX};
pub use memory::{KvPagePool, KvPageStats, KvPoolExhausted};
pub use moe::MOE_PREFIX;
pub use plan_cache::{CachedPlan, PlanCacheStats, SharedPlanCache};
pub use value::Value;
pub use verify::{verify, VerifyError, Violation};
pub use vm::{FrameEntry, KernelStat, Telemetry, Vm, VmError, VmErrorKind};
