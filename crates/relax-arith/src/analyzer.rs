//! Bound analysis and symbolic proofs.

use std::collections::HashMap;

use crate::expr::{PrimExpr, Var};
use crate::simplify::simplify_with_bounds;

/// An inclusive integer interval used for constant-bound analysis.
///
/// `i64::MIN` / `i64::MAX` act as negative / positive infinity; all interval
/// arithmetic saturates so overflow degrades to "unknown" rather than
/// wrapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IntBound {
    /// Inclusive lower bound (`i64::MIN` means unbounded below).
    pub min: i64,
    /// Inclusive upper bound (`i64::MAX` means unbounded above).
    pub max: i64,
}

impl IntBound {
    /// The unbounded interval.
    pub fn everything() -> Self {
        IntBound {
            min: i64::MIN,
            max: i64::MAX,
        }
    }

    /// A single-point interval.
    pub fn constant(v: i64) -> Self {
        IntBound { min: v, max: v }
    }

    /// The interval `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn range(min: i64, max: i64) -> Self {
        assert!(min <= max, "IntBound::range requires min <= max");
        IntBound { min, max }
    }

    /// The non-negative interval `[0, +inf)`, the default assumption for
    /// tensor shape variables.
    pub fn nonneg() -> Self {
        IntBound {
            min: 0,
            max: i64::MAX,
        }
    }

    /// Interval `[1, +inf)` for strictly positive dimensions.
    pub fn positive() -> Self {
        IntBound {
            min: 1,
            max: i64::MAX,
        }
    }

    /// Returns `true` when the interval is a single point.
    pub fn is_const(&self) -> bool {
        self.min == self.max
    }

    fn add(self, other: IntBound) -> IntBound {
        IntBound {
            min: sat_add(self.min, other.min),
            max: sat_add(self.max, other.max),
        }
    }

    fn neg(self) -> IntBound {
        IntBound {
            min: sat_neg(self.max),
            max: sat_neg(self.min),
        }
    }

    fn sub(self, other: IntBound) -> IntBound {
        self.add(other.neg())
    }

    fn mul(self, other: IntBound) -> IntBound {
        let candidates = [
            sat_mul(self.min, other.min),
            sat_mul(self.min, other.max),
            sat_mul(self.max, other.min),
            sat_mul(self.max, other.max),
        ];
        IntBound {
            min: *candidates.iter().min().expect("non-empty"),
            max: *candidates.iter().max().expect("non-empty"),
        }
    }

    fn floor_div(self, other: IntBound) -> IntBound {
        // Division by an interval containing zero is unbounded.
        if other.min <= 0 && other.max >= 0 {
            return IntBound::everything();
        }
        let candidates = [
            sat_div(self.min, other.min),
            sat_div(self.min, other.max),
            sat_div(self.max, other.min),
            sat_div(self.max, other.max),
        ];
        IntBound {
            min: *candidates.iter().min().expect("non-empty"),
            max: *candidates.iter().max().expect("non-empty"),
        }
    }

    fn floor_mod(self, other: IntBound) -> IntBound {
        if other.min >= 1 && other.max < i64::MAX {
            // Euclidean remainder with positive divisor lies in [0, max-1].
            IntBound::range(0, other.max - 1)
        } else {
            IntBound::everything()
        }
    }

    fn min_with(self, other: IntBound) -> IntBound {
        IntBound {
            min: self.min.min(other.min),
            max: self.max.min(other.max),
        }
    }

    fn max_with(self, other: IntBound) -> IntBound {
        IntBound {
            min: self.min.max(other.min),
            max: self.max.max(other.max),
        }
    }
}

fn sat_add(a: i64, b: i64) -> i64 {
    if a == i64::MIN || b == i64::MIN {
        return i64::MIN;
    }
    if a == i64::MAX || b == i64::MAX {
        return i64::MAX;
    }
    a.saturating_add(b)
}

fn sat_neg(a: i64) -> i64 {
    if a == i64::MIN {
        i64::MAX
    } else if a == i64::MAX {
        i64::MIN
    } else {
        -a
    }
}

fn sat_mul(a: i64, b: i64) -> i64 {
    if a == 0 || b == 0 {
        return 0;
    }
    let inf_a = a == i64::MIN || a == i64::MAX;
    let inf_b = b == i64::MIN || b == i64::MAX;
    if inf_a || inf_b {
        let positive = (a > 0) == (b > 0);
        return if positive { i64::MAX } else { i64::MIN };
    }
    a.saturating_mul(b)
}

fn sat_div(a: i64, b: i64) -> i64 {
    if b == 0 {
        return if a >= 0 { i64::MAX } else { i64::MIN };
    }
    if a == i64::MIN || a == i64::MAX {
        let positive = (a > 0) == (b > 0);
        return if positive { i64::MAX } else { i64::MIN };
    }
    a.div_euclid(b)
}

/// Computes the constant interval of `expr` under variable bounds `env`.
///
/// Variables missing from `env` are assumed unbounded. This works directly on
/// the expression tree (no simplification), so it terminates even when called
/// from inside the simplifier.
pub(crate) fn bound_of(expr: &PrimExpr, env: &HashMap<Var, IntBound>) -> IntBound {
    match expr {
        PrimExpr::Int(v) => IntBound::constant(*v),
        PrimExpr::Var(v) => env.get(v).copied().unwrap_or_else(IntBound::everything),
        PrimExpr::Add(a, b) => bound_of(a, env).add(bound_of(b, env)),
        PrimExpr::Sub(a, b) => bound_of(a, env).sub(bound_of(b, env)),
        PrimExpr::Mul(a, b) => bound_of(a, env).mul(bound_of(b, env)),
        PrimExpr::FloorDiv(a, b) => bound_of(a, env).floor_div(bound_of(b, env)),
        PrimExpr::FloorMod(a, b) => bound_of(a, env).floor_mod(bound_of(b, env)),
        PrimExpr::Min(a, b) => bound_of(a, env).min_with(bound_of(b, env)),
        PrimExpr::Max(a, b) => bound_of(a, env).max_with(bound_of(b, env)),
    }
}

/// Symbolic analyzer: carries variable bounds and answers equality and
/// inequality queries about symbolic expressions.
///
/// The memory planner uses [`Analyzer::prove_equal`] to decide storage reuse
/// between dynamic allocations (Algorithm 3 in the paper) and
/// [`Analyzer::upper_bound`] to compute static allocation sizes once the user
/// declares shape upper bounds (e.g. a maximum context length).
///
/// # Examples
///
/// ```
/// use relax_arith::{Analyzer, IntBound, PrimExpr, Var};
/// let n = Var::new("n");
/// let mut ana = Analyzer::new();
/// ana.bind(n.clone(), IntBound::range(0, 2048));
/// let bytes = PrimExpr::from(n.clone()) * 4.into();
/// assert_eq!(ana.upper_bound(&bytes), Some(8192));
/// assert!(ana.can_prove_nonneg(&bytes));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    bounds: HashMap<Var, IntBound>,
}

impl Analyzer {
    /// Creates an analyzer with no variable bounds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a bound for a variable, replacing any previous bound.
    pub fn bind(&mut self, var: Var, bound: IntBound) {
        self.bounds.insert(var, bound);
    }

    /// Declares a variable to be a non-negative shape dimension.
    pub fn bind_shape_var(&mut self, var: Var) {
        self.bounds.entry(var).or_insert_with(IntBound::nonneg);
    }

    /// Returns the declared bound of a variable, if any.
    pub fn bound_of_var(&self, var: &Var) -> Option<IntBound> {
        self.bounds.get(var).copied()
    }

    /// Simplifies an expression using the declared bounds.
    pub fn simplify(&self, expr: &PrimExpr) -> PrimExpr {
        simplify_with_bounds(expr, &self.bounds)
    }

    /// Computes the constant interval of an expression.
    pub fn const_int_bound(&self, expr: &PrimExpr) -> IntBound {
        let simplified = self.simplify(expr);
        bound_of(&simplified, &self.bounds)
    }

    /// Proves `a == b` symbolically. Returns `false` when the equality cannot
    /// be established (it may still hold at runtime).
    pub fn prove_equal(&self, a: &PrimExpr, b: &PrimExpr) -> bool {
        if a == b {
            return true;
        }
        let diff = self.simplify(&(a.clone() - b.clone()));
        if diff == PrimExpr::Int(0) {
            return true;
        }
        let bound = bound_of(&diff, &self.bounds);
        bound.min == 0 && bound.max == 0
    }

    /// Proves `a >= b`.
    pub fn can_prove_ge(&self, a: &PrimExpr, b: &PrimExpr) -> bool {
        let diff = self.simplify(&(a.clone() - b.clone()));
        bound_of(&diff, &self.bounds).min >= 0
    }

    /// Proves `a > b`.
    pub fn can_prove_gt(&self, a: &PrimExpr, b: &PrimExpr) -> bool {
        let diff = self.simplify(&(a.clone() - b.clone()));
        bound_of(&diff, &self.bounds).min >= 1
    }

    /// Proves `a <= b`.
    pub fn can_prove_le(&self, a: &PrimExpr, b: &PrimExpr) -> bool {
        self.can_prove_ge(b, a)
    }

    /// Proves `a >= 0`.
    pub fn can_prove_nonneg(&self, a: &PrimExpr) -> bool {
        self.can_prove_ge(a, &PrimExpr::Int(0))
    }

    /// Returns the finite static upper bound of an expression, if one exists
    /// under the declared variable bounds.
    pub fn upper_bound(&self, expr: &PrimExpr) -> Option<i64> {
        let b = self.const_int_bound(expr);
        (b.max != i64::MAX).then_some(b.max)
    }

    /// Returns the finite static lower bound of an expression, if one exists.
    pub fn lower_bound(&self, expr: &PrimExpr) -> Option<i64> {
        let b = self.const_int_bound(expr);
        (b.min != i64::MIN).then_some(b.min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prove_polynomial_equalities() {
        let n = Var::new("n");
        let ana = Analyzer::new();
        let a = PrimExpr::from(n.clone()) * 2.into();
        let b = PrimExpr::from(n.clone()) + n.clone().into();
        assert!(ana.prove_equal(&a, &b));
        let c = (PrimExpr::from(n.clone()) + 1.into()) * 4.into();
        let d = PrimExpr::from(n.clone()) * 4.into() + 4.into();
        assert!(ana.prove_equal(&c, &d));
        assert!(!ana.prove_equal(&a, &c));
    }

    #[test]
    fn distinct_vars_not_equal() {
        let n = Var::new("n");
        let m = Var::new("m");
        let ana = Analyzer::new();
        assert!(!ana.prove_equal(&n.clone().into(), &m.clone().into()));
    }

    #[test]
    fn bounds_enable_inequalities() {
        let n = Var::new("n");
        let mut ana = Analyzer::new();
        ana.bind(n.clone(), IntBound::range(1, 128));
        assert!(ana.can_prove_ge(&PrimExpr::from(n.clone()), &PrimExpr::Int(1)));
        assert!(ana.can_prove_le(&PrimExpr::from(n.clone()), &PrimExpr::Int(128)));
        assert!(!ana.can_prove_le(&PrimExpr::from(n.clone()), &PrimExpr::Int(64)));
        assert_eq!(
            ana.upper_bound(&(PrimExpr::from(n.clone()) * 4.into())),
            Some(512)
        );
        assert_eq!(ana.lower_bound(&PrimExpr::from(n)), Some(1));
    }

    #[test]
    fn unbounded_var_has_no_upper_bound() {
        let n = Var::new("n");
        let ana = Analyzer::new();
        assert_eq!(ana.upper_bound(&PrimExpr::from(n)), None);
    }

    #[test]
    fn bound_aware_min_max_simplify() {
        let n = Var::new("n");
        let mut ana = Analyzer::new();
        ana.bind(n.clone(), IntBound::range(0, 2048));
        let e = PrimExpr::from(n.clone()).min(4096.into());
        assert_eq!(ana.simplify(&e), PrimExpr::Var(n.clone()));
        let e = PrimExpr::from(n).max(4096.into());
        assert_eq!(ana.simplify(&e), PrimExpr::Int(4096));
    }

    #[test]
    fn floormod_bound_with_positive_divisor() {
        let n = Var::new("n");
        let mut ana = Analyzer::new();
        ana.bind_shape_var(n.clone());
        let e = PrimExpr::from(n).floor_mod(8.into());
        let b = ana.const_int_bound(&e);
        assert_eq!(b, IntBound::range(0, 7));
    }

    #[test]
    fn saturating_interval_arithmetic() {
        let n = Var::new("n");
        let ana = Analyzer::new();
        // Unbounded n: n * n has unknown sign bounds but must not panic.
        let e = PrimExpr::from(n.clone()) * n.clone().into();
        let b = ana.const_int_bound(&e);
        assert_eq!(b.max, i64::MAX);
    }
}
