//! Variable substitution and free-variable collection.

use std::collections::{HashMap, HashSet};

use crate::expr::{PrimExpr, Var};
use crate::simplify::simplify;

/// A substitution map from symbolic variables to replacement expressions.
pub type SubstMap = HashMap<Var, PrimExpr>;

/// Substitutes variables in `expr` according to `map` and simplifies the
/// result.
///
/// Variables without an entry in `map` are left untouched. This is the core
/// operation behind cross-function shape deduction: the callee's symbolic
/// signature is instantiated with the caller's argument shapes (Figure 7 in
/// the paper).
///
/// # Examples
///
/// ```
/// use relax_arith::{substitute, PrimExpr, SubstMap, Var};
/// let n = Var::new("n");
/// let m = Var::new("m");
/// // n * m  with  n := k + 1, m := 4   ==>   k * 4 + 4
/// let k = Var::new("k");
/// let mut map = SubstMap::new();
/// map.insert(n.clone(), PrimExpr::from(k.clone()) + 1.into());
/// map.insert(m.clone(), 4.into());
/// let out = substitute(&(PrimExpr::from(n) * m.into()), &map);
/// let expected = relax_arith::simplify(&(PrimExpr::from(k) * 4.into() + 4.into()));
/// assert_eq!(out, expected);
/// ```
pub fn substitute(expr: &PrimExpr, map: &SubstMap) -> PrimExpr {
    simplify(&substitute_raw(expr, map))
}

fn substitute_raw(expr: &PrimExpr, map: &SubstMap) -> PrimExpr {
    match expr {
        PrimExpr::Var(v) => map.get(v).cloned().unwrap_or_else(|| expr.clone()),
        PrimExpr::Int(_) => expr.clone(),
        PrimExpr::Add(a, b) => substitute_raw(a, map) + substitute_raw(b, map),
        PrimExpr::Sub(a, b) => substitute_raw(a, map) - substitute_raw(b, map),
        PrimExpr::Mul(a, b) => substitute_raw(a, map) * substitute_raw(b, map),
        PrimExpr::FloorDiv(a, b) => substitute_raw(a, map).floor_div(substitute_raw(b, map)),
        PrimExpr::FloorMod(a, b) => substitute_raw(a, map).floor_mod(substitute_raw(b, map)),
        PrimExpr::Min(a, b) => substitute_raw(a, map).min(substitute_raw(b, map)),
        PrimExpr::Max(a, b) => substitute_raw(a, map).max(substitute_raw(b, map)),
    }
}

/// Collects the set of free symbolic variables in an expression.
///
/// # Examples
///
/// ```
/// use relax_arith::{free_vars, PrimExpr, Var};
/// let n = Var::new("n");
/// let e = PrimExpr::from(n.clone()) * 4.into();
/// assert!(free_vars(&e).contains(&n));
/// ```
pub fn free_vars(expr: &PrimExpr) -> HashSet<Var> {
    let mut out = HashSet::new();
    collect_vars(expr, &mut out);
    out
}

/// Appends the free variables of `expr` into `out`.
pub(crate) fn collect_vars(expr: &PrimExpr, out: &mut HashSet<Var>) {
    match expr {
        PrimExpr::Var(v) => {
            out.insert(v.clone());
        }
        PrimExpr::Int(_) => {}
        PrimExpr::Add(a, b)
        | PrimExpr::Sub(a, b)
        | PrimExpr::Mul(a, b)
        | PrimExpr::FloorDiv(a, b)
        | PrimExpr::FloorMod(a, b)
        | PrimExpr::Min(a, b)
        | PrimExpr::Max(a, b) => {
            collect_vars(a, out);
            collect_vars(b, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substitution_simplifies() {
        let n = Var::new("n");
        let map: SubstMap = [(n.clone(), PrimExpr::Int(3))].into_iter().collect();
        let e = PrimExpr::from(n) * 4.into() + 2.into();
        assert_eq!(substitute(&e, &map), PrimExpr::Int(14));
    }

    #[test]
    fn unmapped_vars_survive() {
        let n = Var::new("n");
        let m = Var::new("m");
        let map: SubstMap = [(n.clone(), PrimExpr::Int(2))].into_iter().collect();
        let e = PrimExpr::from(n) + m.clone().into();
        let out = substitute(&e, &map);
        assert_eq!(out, simplify(&(PrimExpr::from(m) + 2.into())));
    }

    #[test]
    fn free_vars_in_nested_exprs() {
        let n = Var::new("n");
        let m = Var::new("m");
        let e = (PrimExpr::from(n.clone()).floor_div(2.into())).min(PrimExpr::from(m.clone()));
        let fv = free_vars(&e);
        assert_eq!(fv.len(), 2);
        assert!(fv.contains(&n) && fv.contains(&m));
    }
}
