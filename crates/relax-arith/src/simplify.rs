//! Rewrite-rule simplifier on top of the canonical normal form.

use crate::analyzer::{bound_of, IntBound};
use crate::canonical::{canonicalize, Canonical};
use crate::expr::PrimExpr;
use std::collections::HashMap;

/// Simplifies an expression to a canonical normal form.
///
/// Guarantees: two expressions that are equal as polynomials over the same
/// opaque atoms simplify to structurally identical (`==`) trees, constants
/// fold fully, and a set of floor-div/mod/min/max rewrite rules fire (e.g.
/// `(n * 4) // 4` simplifies to `n`, `(n * 4) % 4` to `0`).
///
/// # Examples
///
/// ```
/// use relax_arith::{simplify, PrimExpr, Var};
/// let n = Var::new("n");
/// let a = simplify(&(PrimExpr::from(n.clone()) * 2.into() + 2.into()));
/// let b = simplify(&((PrimExpr::from(n.clone()) + 1.into()) * 2.into()));
/// assert_eq!(a, b);
/// ```
pub fn simplify(expr: &PrimExpr) -> PrimExpr {
    simplify_with_bounds(expr, &HashMap::new())
}

/// Simplifies with variable bounds available, allowing bound-based
/// resolutions of `min`/`max` (e.g. `min(n, 4096)` becomes `n` once the
/// caller has declared `n <= 4096`).
pub(crate) fn simplify_with_bounds(
    expr: &PrimExpr,
    env: &HashMap<crate::expr::Var, IntBound>,
) -> PrimExpr {
    let rewrite = make_rewriter(env);
    canonicalize(expr, &rewrite).to_expr()
}

fn make_rewriter<'a>(
    env: &'a HashMap<crate::expr::Var, IntBound>,
) -> impl Fn(&PrimExpr) -> PrimExpr + 'a {
    move |e: &PrimExpr| rewrite_opaque(e, env)
}

/// Applies rewrite rules to a floor-div/mod/min/max node. Children are
/// simplified first; the result may be any expression kind.
fn rewrite_opaque(expr: &PrimExpr, env: &HashMap<crate::expr::Var, IntBound>) -> PrimExpr {
    match expr {
        PrimExpr::FloorDiv(a, b) => {
            let ca = canonicalize(a, &make_rewriter(env));
            let cb = canonicalize(b, &make_rewriter(env));
            rewrite_floor_div(&ca, &cb, env)
        }
        PrimExpr::FloorMod(a, b) => {
            let ca = canonicalize(a, &make_rewriter(env));
            let cb = canonicalize(b, &make_rewriter(env));
            rewrite_floor_mod(&ca, &cb, env)
        }
        PrimExpr::Min(a, b) => {
            let sa = simplify_with_bounds(a, env);
            let sb = simplify_with_bounds(b, env);
            if sa == sb {
                return sa;
            }
            match sign_of_difference(&sa, &sb, env) {
                Some(std::cmp::Ordering::Less) | Some(std::cmp::Ordering::Equal) => sa,
                Some(std::cmp::Ordering::Greater) => sb,
                None => PrimExpr::Min(Box::new(sa), Box::new(sb)),
            }
        }
        PrimExpr::Max(a, b) => {
            let sa = simplify_with_bounds(a, env);
            let sb = simplify_with_bounds(b, env);
            if sa == sb {
                return sa;
            }
            match sign_of_difference(&sa, &sb, env) {
                Some(std::cmp::Ordering::Less) | Some(std::cmp::Ordering::Equal) => sb,
                Some(std::cmp::Ordering::Greater) => sa,
                None => PrimExpr::Max(Box::new(sa), Box::new(sb)),
            }
        }
        other => other.clone(),
    }
}

/// Determines the sign of `a - b` from bound analysis: `Less` means `a <= b`
/// provably, `Greater` means `a >= b` provably.
fn sign_of_difference(
    a: &PrimExpr,
    b: &PrimExpr,
    env: &HashMap<crate::expr::Var, IntBound>,
) -> Option<std::cmp::Ordering> {
    let diff = simplify_with_bounds(&(a.clone() - b.clone()), env);
    let bound = bound_of(&diff, env);
    if bound.max <= 0 {
        Some(std::cmp::Ordering::Less)
    } else if bound.min >= 0 {
        Some(std::cmp::Ordering::Greater)
    } else {
        None
    }
}

fn rewrite_floor_div(
    ca: &Canonical,
    cb: &Canonical,
    env: &HashMap<crate::expr::Var, IntBound>,
) -> PrimExpr {
    if let (Some(x), Some(y)) = (ca.as_const(), cb.as_const()) {
        if y != 0 {
            return PrimExpr::Int(x.div_euclid(y));
        }
    }
    if let Some(k) = cb.as_const() {
        if k == 1 {
            return ca.to_expr();
        }
        if k > 1 {
            // Divide-through: (k*x + k*y) // k == x + y.
            if let Some(q) = ca.divide_exact(k) {
                return q.to_expr();
            }
            // Split: (k*x + r) // k == x + r // k when 0 <= r < k provably.
            let (div, rem) = ca.split_by_divisor(k);
            if !div.is_zero() {
                let rem_expr = rem.to_expr();
                let b = bound_of(&rem_expr, env);
                if b.min >= 0 && b.max < k {
                    return div.to_expr();
                }
                if let Some(r) = rem.as_const() {
                    // Constant remainder folds exactly even when negative.
                    let offset = r.div_euclid(k);
                    let leftover = r.rem_euclid(k);
                    if leftover == 0 {
                        return div.add(&Canonical::constant(offset)).to_expr();
                    }
                }
            }
        }
    }
    PrimExpr::FloorDiv(Box::new(ca.to_expr()), Box::new(cb.to_expr()))
}

fn rewrite_floor_mod(
    ca: &Canonical,
    cb: &Canonical,
    env: &HashMap<crate::expr::Var, IntBound>,
) -> PrimExpr {
    if let (Some(x), Some(y)) = (ca.as_const(), cb.as_const()) {
        if y != 0 {
            return PrimExpr::Int(x.rem_euclid(y));
        }
    }
    if let Some(k) = cb.as_const() {
        if k == 1 {
            return PrimExpr::Int(0);
        }
        if k > 1 {
            if ca.divide_exact(k).is_some() {
                return PrimExpr::Int(0);
            }
            let (div, rem) = ca.split_by_divisor(k);
            if !div.is_zero() {
                let rem_expr = rem.to_expr();
                let b = bound_of(&rem_expr, env);
                if b.min >= 0 && b.max < k {
                    return rem_expr;
                }
                if let Some(r) = rem.as_const() {
                    return PrimExpr::Int(r.rem_euclid(k));
                }
            }
        }
    }
    PrimExpr::FloorMod(Box::new(ca.to_expr()), Box::new(cb.to_expr()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Var;

    #[test]
    fn constant_folding() {
        let e = (PrimExpr::from(2i64) + 3.into()) * 4.into();
        assert_eq!(simplify(&e), PrimExpr::Int(20));
    }

    #[test]
    fn floordiv_rules() {
        let n = Var::new("n");
        let e = (PrimExpr::from(n.clone()) * 4.into()).floor_div(4.into());
        assert_eq!(simplify(&e), PrimExpr::Var(n.clone()));

        let e = (PrimExpr::from(n.clone()) * 4.into() + 8.into()).floor_div(4.into());
        assert_eq!(
            simplify(&e),
            simplify(&(PrimExpr::from(n.clone()) + 2.into()))
        );

        let e = PrimExpr::from(n.clone()).floor_div(1.into());
        assert_eq!(simplify(&e), PrimExpr::Var(n));
    }

    #[test]
    fn floormod_rules() {
        let n = Var::new("n");
        let e = (PrimExpr::from(n.clone()) * 4.into()).floor_mod(4.into());
        assert_eq!(simplify(&e), PrimExpr::Int(0));
        let e = (PrimExpr::from(n.clone()) * 4.into() + 3.into()).floor_mod(4.into());
        assert_eq!(simplify(&e), PrimExpr::Int(3));
        let e = PrimExpr::from(n).floor_mod(1.into());
        assert_eq!(simplify(&e), PrimExpr::Int(0));
    }

    #[test]
    fn min_max_identical_operands() {
        let n = Var::new("n");
        let a = PrimExpr::from(n.clone()) * 2.into();
        let b = PrimExpr::from(n.clone()) + n.clone().into();
        assert_eq!(simplify(&a.clone().min(b.clone())), simplify(&a));
        assert_eq!(simplify(&a.clone().max(b)), simplify(&a));
    }

    #[test]
    fn min_max_const_resolution() {
        assert_eq!(
            simplify(&PrimExpr::from(3i64).min(7.into())),
            PrimExpr::Int(3)
        );
        assert_eq!(
            simplify(&PrimExpr::from(3i64).max(7.into())),
            PrimExpr::Int(7)
        );
    }

    #[test]
    fn nested_normalization() {
        let n = Var::new("n");
        let m = Var::new("m");
        // (n + m) * 2 - m - m == 2n
        let e = (PrimExpr::from(n.clone()) + m.clone().into()) * 2.into()
            - PrimExpr::from(m.clone())
            - PrimExpr::from(m.clone());
        assert_eq!(simplify(&e), simplify(&(PrimExpr::from(n) * 2.into())));
    }

    #[test]
    fn opaque_divs_compare_equal_after_simplify() {
        let n = Var::new("n");
        let a = PrimExpr::from(n.clone()).floor_div(3.into()) * 2.into();
        let b = PrimExpr::from(n.clone()).floor_div(3.into())
            + PrimExpr::from(n.clone()).floor_div(3.into());
        assert_eq!(simplify(&a), simplify(&b));
    }
}
