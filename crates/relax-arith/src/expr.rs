//! Core expression types: symbolic variables and integer expressions.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_VAR_ID: AtomicU64 = AtomicU64::new(0);

/// A symbolic integer variable, such as the `n` in a tensor shape `(n, 4)`.
///
/// Two variables are equal only if they were created by the same call to
/// [`Var::new`]; names are purely cosmetic, so distinct `Var::new("n")`
/// calls produce distinct variables. Cloning is cheap (reference counted).
///
/// # Examples
///
/// ```
/// use relax_arith::Var;
/// let a = Var::new("n");
/// let b = a.clone();
/// assert_eq!(a, b);
/// assert_ne!(a, Var::new("n"));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(Arc<VarData>);

#[derive(PartialEq, Eq, Hash, PartialOrd, Ord)]
struct VarData {
    id: u64,
    name: String,
}

impl Var {
    /// Creates a fresh symbolic variable with the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        Var(Arc::new(VarData {
            id: NEXT_VAR_ID.fetch_add(1, Ordering::Relaxed),
            name: name.into(),
        }))
    }

    /// Returns the display name of the variable.
    pub fn name(&self) -> &str {
        &self.0.name
    }

    /// Returns the globally unique id of this variable.
    pub fn id(&self) -> u64 {
        self.0.id
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({}#{})", self.0.name, self.0.id)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0.name)
    }
}

/// A symbolic integer expression used for tensor shape dimensions.
///
/// Expressions are built from variables and constants with standard operator
/// overloads plus [`PrimExpr::floor_div`], [`PrimExpr::floor_mod`],
/// [`PrimExpr::min`] and [`PrimExpr::max`]. All arithmetic is over `i64`.
///
/// # Examples
///
/// ```
/// use relax_arith::{PrimExpr, Var};
/// let n = Var::new("n");
/// let e = (PrimExpr::from(n) + 1.into()) * 4.into();
/// assert_eq!(e.to_string(), "((n + 1) * 4)");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum PrimExpr {
    /// A symbolic variable.
    Var(Var),
    /// An integer constant.
    Int(i64),
    /// Addition.
    Add(Box<PrimExpr>, Box<PrimExpr>),
    /// Subtraction.
    Sub(Box<PrimExpr>, Box<PrimExpr>),
    /// Multiplication.
    Mul(Box<PrimExpr>, Box<PrimExpr>),
    /// Floor division (rounds toward negative infinity).
    FloorDiv(Box<PrimExpr>, Box<PrimExpr>),
    /// Floor modulo (result has the sign of the divisor).
    FloorMod(Box<PrimExpr>, Box<PrimExpr>),
    /// Minimum of two expressions.
    Min(Box<PrimExpr>, Box<PrimExpr>),
    /// Maximum of two expressions.
    Max(Box<PrimExpr>, Box<PrimExpr>),
}

/// Error returned by [`PrimExpr::eval`] when evaluation cannot complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable in the expression had no binding in the environment.
    UnboundVar(String),
    /// Division or modulo by zero.
    DivisionByZero,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVar(name) => write!(f, "unbound symbolic variable `{name}`"),
            EvalError::DivisionByZero => write!(f, "division by zero in shape expression"),
        }
    }
}

impl std::error::Error for EvalError {}

impl PrimExpr {
    /// Creates a fresh variable expression (shorthand for `Var::new(..).into()`).
    pub fn var(name: impl Into<String>) -> Self {
        PrimExpr::Var(Var::new(name))
    }

    /// Returns the constant value if this expression is an integer literal.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            PrimExpr::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the variable if this expression is a bare variable reference.
    pub fn as_var(&self) -> Option<&Var> {
        match self {
            PrimExpr::Var(v) => Some(v),
            _ => None,
        }
    }

    /// Returns `true` if the expression contains no symbolic variables.
    pub fn is_const(&self) -> bool {
        match self {
            PrimExpr::Var(_) => false,
            PrimExpr::Int(_) => true,
            PrimExpr::Add(a, b)
            | PrimExpr::Sub(a, b)
            | PrimExpr::Mul(a, b)
            | PrimExpr::FloorDiv(a, b)
            | PrimExpr::FloorMod(a, b)
            | PrimExpr::Min(a, b)
            | PrimExpr::Max(a, b) => a.is_const() && b.is_const(),
        }
    }

    /// Floor division by `rhs` (rounds toward negative infinity).
    pub fn floor_div(self, rhs: PrimExpr) -> PrimExpr {
        PrimExpr::FloorDiv(Box::new(self), Box::new(rhs))
    }

    /// Floor modulo by `rhs` (result has the sign of the divisor).
    pub fn floor_mod(self, rhs: PrimExpr) -> PrimExpr {
        PrimExpr::FloorMod(Box::new(self), Box::new(rhs))
    }

    /// Minimum of `self` and `rhs`.
    pub fn min(self, rhs: PrimExpr) -> PrimExpr {
        PrimExpr::Min(Box::new(self), Box::new(rhs))
    }

    /// Maximum of `self` and `rhs`.
    pub fn max(self, rhs: PrimExpr) -> PrimExpr {
        PrimExpr::Max(Box::new(self), Box::new(rhs))
    }

    /// Evaluates the expression under concrete variable bindings.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::UnboundVar`] if a variable is missing from `env`
    /// and [`EvalError::DivisionByZero`] for a zero divisor.
    ///
    /// # Examples
    ///
    /// ```
    /// use relax_arith::{PrimExpr, Var};
    /// use std::collections::HashMap;
    /// let n = Var::new("n");
    /// let e = PrimExpr::from(n.clone()) * 4.into();
    /// let mut env = HashMap::new();
    /// env.insert(n, 3);
    /// assert_eq!(e.eval(&env)?, 12);
    /// # Ok::<(), relax_arith::EvalError>(())
    /// ```
    pub fn eval(&self, env: &HashMap<Var, i64>) -> Result<i64, EvalError> {
        match self {
            PrimExpr::Var(v) => env
                .get(v)
                .copied()
                .ok_or_else(|| EvalError::UnboundVar(v.name().to_string())),
            PrimExpr::Int(v) => Ok(*v),
            PrimExpr::Add(a, b) => Ok(a.eval(env)?.wrapping_add(b.eval(env)?)),
            PrimExpr::Sub(a, b) => Ok(a.eval(env)?.wrapping_sub(b.eval(env)?)),
            PrimExpr::Mul(a, b) => Ok(a.eval(env)?.wrapping_mul(b.eval(env)?)),
            PrimExpr::FloorDiv(a, b) => {
                let (a, b) = (a.eval(env)?, b.eval(env)?);
                if b == 0 {
                    return Err(EvalError::DivisionByZero);
                }
                Ok(a.div_euclid(b))
            }
            PrimExpr::FloorMod(a, b) => {
                let (a, b) = (a.eval(env)?, b.eval(env)?);
                if b == 0 {
                    return Err(EvalError::DivisionByZero);
                }
                Ok(a.rem_euclid(b))
            }
            PrimExpr::Min(a, b) => Ok(a.eval(env)?.min(b.eval(env)?)),
            PrimExpr::Max(a, b) => Ok(a.eval(env)?.max(b.eval(env)?)),
        }
    }
}

impl From<i64> for PrimExpr {
    fn from(v: i64) -> Self {
        PrimExpr::Int(v)
    }
}

impl From<usize> for PrimExpr {
    fn from(v: usize) -> Self {
        PrimExpr::Int(v as i64)
    }
}

impl From<i32> for PrimExpr {
    fn from(v: i32) -> Self {
        PrimExpr::Int(v as i64)
    }
}

impl From<Var> for PrimExpr {
    fn from(v: Var) -> Self {
        PrimExpr::Var(v)
    }
}

impl From<&Var> for PrimExpr {
    fn from(v: &Var) -> Self {
        PrimExpr::Var(v.clone())
    }
}

impl std::ops::Add for PrimExpr {
    type Output = PrimExpr;
    fn add(self, rhs: PrimExpr) -> PrimExpr {
        PrimExpr::Add(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Sub for PrimExpr {
    type Output = PrimExpr;
    fn sub(self, rhs: PrimExpr) -> PrimExpr {
        PrimExpr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Mul for PrimExpr {
    type Output = PrimExpr;
    fn mul(self, rhs: PrimExpr) -> PrimExpr {
        PrimExpr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl fmt::Display for PrimExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrimExpr::Var(v) => write!(f, "{v}"),
            PrimExpr::Int(v) => write!(f, "{v}"),
            PrimExpr::Add(a, b) => write!(f, "({a} + {b})"),
            PrimExpr::Sub(a, b) => write!(f, "({a} - {b})"),
            PrimExpr::Mul(a, b) => write!(f, "({a} * {b})"),
            PrimExpr::FloorDiv(a, b) => write!(f, "({a} // {b})"),
            PrimExpr::FloorMod(a, b) => write!(f, "({a} % {b})"),
            PrimExpr::Min(a, b) => write!(f, "min({a}, {b})"),
            PrimExpr::Max(a, b) => write!(f, "max({a}, {b})"),
        }
    }
}

impl fmt::Debug for PrimExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PrimExpr({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_identity_is_by_id_not_name() {
        let a = Var::new("n");
        let b = Var::new("n");
        assert_ne!(a, b);
        assert_eq!(a, a.clone());
        assert_eq!(a.name(), "n");
    }

    #[test]
    fn display_matches_paper_syntax() {
        let n = Var::new("n");
        let e = PrimExpr::from(n) * 4.into();
        assert_eq!(e.to_string(), "(n * 4)");
    }

    #[test]
    fn eval_arithmetic() {
        let n = Var::new("n");
        let m = Var::new("m");
        let mut env = HashMap::new();
        env.insert(n.clone(), 7);
        env.insert(m.clone(), 3);
        let e = (PrimExpr::from(n.clone()) + m.clone().into()) * 2.into();
        assert_eq!(e.eval(&env).unwrap(), 20);
        let d = PrimExpr::from(n.clone()).floor_div(m.clone().into());
        assert_eq!(d.eval(&env).unwrap(), 2);
        let r = PrimExpr::from(n).floor_mod(m.into());
        assert_eq!(r.eval(&env).unwrap(), 1);
    }

    #[test]
    fn eval_floor_semantics_for_negatives() {
        let env = HashMap::new();
        let e = PrimExpr::from(-7i64).floor_div(2.into());
        assert_eq!(e.eval(&env).unwrap(), -4);
        let m = PrimExpr::from(-7i64).floor_mod(2.into());
        assert_eq!(m.eval(&env).unwrap(), 1);
    }

    #[test]
    fn eval_errors() {
        let n = Var::new("n");
        let env = HashMap::new();
        assert_eq!(
            PrimExpr::from(n).eval(&env),
            Err(EvalError::UnboundVar("n".into()))
        );
        assert_eq!(
            PrimExpr::from(1i64).floor_div(0.into()).eval(&env),
            Err(EvalError::DivisionByZero)
        );
    }

    #[test]
    fn is_const_and_accessors() {
        let n = Var::new("n");
        assert!(PrimExpr::from(3i64).is_const());
        assert!(!(PrimExpr::from(n.clone()) + 1.into()).is_const());
        assert_eq!(PrimExpr::from(5i64).as_int(), Some(5));
        assert_eq!(PrimExpr::from(n.clone()).as_var(), Some(&n));
    }
}
