//! Tensor element data types shared by every level of the compiler.

use std::fmt;
use std::str::FromStr;

/// Element type of a tensor or buffer.
///
/// The reproduction interprets `f16` values with `f32` host arithmetic (the
/// size is still two bytes for memory accounting, matching how the paper's
/// evaluation reports f16 activation memory).
///
/// # Examples
///
/// ```
/// use relax_arith::DataType;
/// assert_eq!(DataType::F16.size_bytes(), 2);
/// assert_eq!("f32".parse::<DataType>()?, DataType::F32);
/// # Ok::<(), relax_arith::ParseDataTypeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// Boolean, stored as one byte.
    Bool,
    /// 8-bit signed integer.
    I8,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer (also the type of shape values).
    I64,
    /// 8-bit unsigned integer.
    U8,
    /// 32-bit unsigned integer (used for packed 4-bit quantized weights).
    U32,
    /// 16-bit IEEE float (computed in f32 on the host).
    F16,
    /// 32-bit IEEE float.
    F32,
}

impl DataType {
    /// Size of one element in bytes.
    pub fn size_bytes(self) -> usize {
        match self {
            DataType::Bool | DataType::I8 | DataType::U8 => 1,
            DataType::F16 => 2,
            DataType::I32 | DataType::U32 | DataType::F32 => 4,
            DataType::I64 => 8,
        }
    }

    /// Returns `true` for floating-point types.
    pub fn is_float(self) -> bool {
        matches!(self, DataType::F16 | DataType::F32)
    }

    /// Returns `true` for integer types (including `Bool`).
    pub fn is_int(self) -> bool {
        !self.is_float()
    }

    /// Canonical short name, e.g. `"f32"`.
    pub fn as_str(self) -> &'static str {
        match self {
            DataType::Bool => "bool",
            DataType::I8 => "i8",
            DataType::I32 => "i32",
            DataType::I64 => "i64",
            DataType::U8 => "u8",
            DataType::U32 => "u32",
            DataType::F16 => "f16",
            DataType::F32 => "f32",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned when parsing an unknown data type name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDataTypeError {
    input: String,
}

impl fmt::Display for ParseDataTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown data type `{}`", self.input)
    }
}

impl std::error::Error for ParseDataTypeError {}

impl FromStr for DataType {
    type Err = ParseDataTypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "bool" => DataType::Bool,
            "i8" => DataType::I8,
            "i32" => DataType::I32,
            "i64" => DataType::I64,
            "u8" => DataType::U8,
            "u32" => DataType::U32,
            "f16" => DataType::F16,
            "f32" => DataType::F32,
            _ => {
                return Err(ParseDataTypeError {
                    input: s.to_string(),
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DataType::Bool.size_bytes(), 1);
        assert_eq!(DataType::F16.size_bytes(), 2);
        assert_eq!(DataType::F32.size_bytes(), 4);
        assert_eq!(DataType::I64.size_bytes(), 8);
        assert_eq!(DataType::U32.size_bytes(), 4);
    }

    #[test]
    fn parse_round_trip() {
        for dt in [
            DataType::Bool,
            DataType::I8,
            DataType::I32,
            DataType::I64,
            DataType::U8,
            DataType::U32,
            DataType::F16,
            DataType::F32,
        ] {
            assert_eq!(dt.as_str().parse::<DataType>().unwrap(), dt);
        }
        assert!("f64".parse::<DataType>().is_err());
    }

    #[test]
    fn float_int_classification() {
        assert!(DataType::F16.is_float());
        assert!(DataType::I64.is_int());
        assert!(!DataType::U32.is_float());
    }
}
