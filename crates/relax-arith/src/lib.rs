//! Symbolic integer expressions for dynamic-shape compilation.
//!
//! This crate is the arithmetic substrate of the Relax reproduction: every
//! dynamic tensor dimension in the compiler is a [`PrimExpr`] — an integer
//! expression over symbolic [`Var`]s with `+`, `-`, `*`, floor division,
//! floor modulo, `min`, and `max`. The compiler relies on three capabilities
//! implemented here:
//!
//! 1. **Simplification** ([`simplify`]): canonicalizes expressions into a
//!    sum-of-products normal form so that `2 * n` and `n + n` compare equal.
//! 2. **Proofs** ([`Analyzer`]): proves equalities and inequalities between
//!    symbolic expressions, optionally under user-declared variable bounds
//!    (e.g. `n <= 2048` for static memory planning with shape upper bounds).
//! 3. **Evaluation** ([`PrimExpr::eval`]): computes concrete values at
//!    runtime once symbolic variables are bound, which the virtual machine
//!    uses to materialize shapes.
//!
//! # Examples
//!
//! ```
//! use relax_arith::{Analyzer, PrimExpr, Var};
//!
//! let n = Var::new("n");
//! let a = PrimExpr::from(n.clone()) * 2.into();
//! let b = PrimExpr::from(n.clone()) + n.clone().into();
//! let mut ana = Analyzer::new();
//! assert!(ana.prove_equal(&a, &b));
//! ```

#![forbid(unsafe_code)]

mod analyzer;
mod canonical;
mod dtype;
mod expr;
mod simplify;
mod subst;

pub use analyzer::{Analyzer, IntBound};
pub use dtype::{DataType, ParseDataTypeError};
pub use expr::{EvalError, PrimExpr, Var};
pub use simplify::simplify;
pub use subst::{free_vars, substitute, SubstMap};
