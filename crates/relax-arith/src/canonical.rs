//! Canonical sum-of-products normal form for [`PrimExpr`].
//!
//! The canonical form represents an expression as `constant + Σ coef·mono`
//! where each monomial is a sorted multiset of atoms (variables or opaque
//! sub-expressions such as floor divisions). Two expressions are structurally
//! equal after canonicalization iff they are equal as polynomials over the
//! opaque atoms, which is the workhorse behind symbolic shape equality proofs
//! such as `2 * n == n + n` or `(n + 1) * 4 == 4 * n + 4`.

use std::collections::BTreeMap;

use crate::expr::{PrimExpr, Var};

/// Maximum number of terms produced by product expansion before we give up
/// and keep the product opaque. Shape expressions in practice have a handful
/// of terms; the limit only guards against pathological inputs.
const MAX_TERMS: usize = 128;

/// One multiplicative factor inside a monomial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Atom {
    /// A symbolic variable.
    Var(Var),
    /// A sub-expression the linear canonicalizer does not look into
    /// (floor division, modulo, min, max). Stored pre-simplified.
    Opaque(PrimExpr),
}

impl Atom {
    fn sort_key(&self) -> (u8, u64, String) {
        match self {
            Atom::Var(v) => (0, v.id(), String::new()),
            Atom::Opaque(e) => (1, 0, e.to_string()),
        }
    }

    fn to_expr(&self) -> PrimExpr {
        match self {
            Atom::Var(v) => PrimExpr::Var(v.clone()),
            Atom::Opaque(e) => e.clone(),
        }
    }
}

impl PartialOrd for Atom {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Atom {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.sort_key().cmp(&other.sort_key())
    }
}

/// A sorted multiset of atoms; the empty monomial denotes the constant term.
pub(crate) type Monomial = Vec<Atom>;

/// Canonical polynomial: map from monomial to its integer coefficient.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct Canonical {
    terms: BTreeMap<Monomial, i64>,
}

impl Canonical {
    pub(crate) fn constant(value: i64) -> Self {
        let mut c = Canonical::default();
        if value != 0 {
            c.terms.insert(Vec::new(), value);
        }
        c
    }

    pub(crate) fn atom(atom: Atom) -> Self {
        let mut c = Canonical::default();
        c.terms.insert(vec![atom], 1);
        c
    }

    pub(crate) fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns the value if the polynomial is a bare constant.
    pub(crate) fn as_const(&self) -> Option<i64> {
        if self.terms.is_empty() {
            return Some(0);
        }
        if self.terms.len() == 1 {
            if let Some(v) = self.terms.get(&Vec::new()) {
                return Some(*v);
            }
        }
        None
    }

    fn add_term(&mut self, mono: Monomial, coef: i64) {
        if coef == 0 {
            return;
        }
        let entry = self.terms.entry(mono).or_insert(0);
        *entry = entry.wrapping_add(coef);
        if *entry == 0 {
            // Remove cancelled terms so zero is always the empty map.
            let key: Vec<Atom> = self
                .terms
                .iter()
                .find(|(_, v)| **v == 0)
                .map(|(k, _)| k.clone())
                .expect("entry just set to zero");
            self.terms.remove(&key);
        }
    }

    pub(crate) fn add(mut self, other: &Canonical) -> Canonical {
        for (mono, coef) in &other.terms {
            self.add_term(mono.clone(), *coef);
        }
        self
    }

    pub(crate) fn negate(mut self) -> Canonical {
        for coef in self.terms.values_mut() {
            *coef = coef.wrapping_neg();
        }
        self
    }

    pub(crate) fn sub(self, other: &Canonical) -> Canonical {
        self.add(&other.clone().negate())
    }

    /// Multiplies two polynomials, expanding the product. Returns `None` if
    /// the expansion would exceed [`MAX_TERMS`].
    pub(crate) fn mul(&self, other: &Canonical) -> Option<Canonical> {
        if self.terms.len().saturating_mul(other.terms.len()) > MAX_TERMS {
            return None;
        }
        let mut out = Canonical::default();
        for (m1, c1) in &self.terms {
            for (m2, c2) in &other.terms {
                let mut mono = m1.clone();
                mono.extend(m2.iter().cloned());
                mono.sort();
                out.add_term(mono, c1.wrapping_mul(*c2));
            }
        }
        Some(out)
    }

    /// Returns `Some(self / k)` if every coefficient is divisible by `k`.
    pub(crate) fn divide_exact(&self, k: i64) -> Option<Canonical> {
        if k == 0 {
            return None;
        }
        let mut out = Canonical::default();
        for (mono, coef) in &self.terms {
            if coef % k != 0 {
                return None;
            }
            out.add_term(mono.clone(), coef / k);
        }
        Some(out)
    }

    /// Splits the polynomial into `(divisible, remainder)` parts with respect
    /// to divisor `k`: terms whose coefficient is a multiple of `k` go to the
    /// first component (already divided by `k`), the rest to the second.
    pub(crate) fn split_by_divisor(&self, k: i64) -> (Canonical, Canonical) {
        let mut div = Canonical::default();
        let mut rem = Canonical::default();
        for (mono, coef) in &self.terms {
            if k != 0 && coef % k == 0 {
                div.add_term(mono.clone(), coef / k);
            } else {
                rem.add_term(mono.clone(), *coef);
            }
        }
        (div, rem)
    }

    /// Rebuilds a [`PrimExpr`] in a deterministic order so that canonical
    /// equality implies structural (`==`) equality of the rebuilt trees.
    pub(crate) fn to_expr(&self) -> PrimExpr {
        if self.terms.is_empty() {
            return PrimExpr::Int(0);
        }
        let mut acc: Option<PrimExpr> = None;
        let mut const_term: i64 = 0;
        for (mono, coef) in &self.terms {
            if mono.is_empty() {
                const_term = *coef;
                continue;
            }
            let mut factor: Option<PrimExpr> = None;
            for atom in mono {
                let e = atom.to_expr();
                factor = Some(match factor {
                    None => e,
                    Some(f) => f * e,
                });
            }
            let base = factor.expect("non-empty monomial");
            let term = match *coef {
                1 => base,
                c => base * PrimExpr::Int(c),
            };
            acc = Some(match acc {
                None => term,
                Some(a) => a + term,
            });
        }
        match (acc, const_term) {
            (None, c) => PrimExpr::Int(c),
            (Some(a), 0) => a,
            (Some(a), c) if c > 0 => a + PrimExpr::Int(c),
            (Some(a), c) => a - PrimExpr::Int(-c),
        }
    }
}

/// Canonicalizes an expression whose children are already simplified.
///
/// `simplify_opaque` is invoked on floor-div/mod/min/max nodes so the
/// simplifier's rewrite rules run before the node is frozen into an atom.
pub(crate) fn canonicalize(
    expr: &PrimExpr,
    simplify_opaque: &dyn Fn(&PrimExpr) -> PrimExpr,
) -> Canonical {
    match expr {
        PrimExpr::Int(v) => Canonical::constant(*v),
        PrimExpr::Var(v) => Canonical::atom(Atom::Var(v.clone())),
        PrimExpr::Add(a, b) => {
            canonicalize(a, simplify_opaque).add(&canonicalize(b, simplify_opaque))
        }
        PrimExpr::Sub(a, b) => {
            canonicalize(a, simplify_opaque).sub(&canonicalize(b, simplify_opaque))
        }
        PrimExpr::Mul(a, b) => {
            let ca = canonicalize(a, simplify_opaque);
            let cb = canonicalize(b, simplify_opaque);
            match ca.mul(&cb) {
                Some(c) => c,
                None => Canonical::atom(Atom::Opaque(ca.to_expr() * cb.to_expr())),
            }
        }
        PrimExpr::FloorDiv(..) | PrimExpr::FloorMod(..) | PrimExpr::Min(..) | PrimExpr::Max(..) => {
            let simplified = simplify_opaque(expr);
            match &simplified {
                PrimExpr::Int(v) => Canonical::constant(*v),
                PrimExpr::Var(v) => Canonical::atom(Atom::Var(v.clone())),
                PrimExpr::Add(..) | PrimExpr::Sub(..) | PrimExpr::Mul(..) => {
                    canonicalize(&simplified, simplify_opaque)
                }
                other => Canonical::atom(Atom::Opaque(other.clone())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_rewrite(e: &PrimExpr) -> PrimExpr {
        e.clone()
    }

    #[test]
    fn linear_combination_merges() {
        let n = Var::new("n");
        let a = PrimExpr::from(n.clone()) * 2.into();
        let b = PrimExpr::from(n.clone()) + PrimExpr::from(n.clone());
        assert_eq!(
            canonicalize(&a, &no_rewrite).to_expr(),
            canonicalize(&b, &no_rewrite).to_expr()
        );
    }

    #[test]
    fn product_expansion() {
        let n = Var::new("n");
        let a = (PrimExpr::from(n.clone()) + 1.into()) * 4.into();
        let b = PrimExpr::from(n.clone()) * 4.into() + 4.into();
        assert_eq!(canonicalize(&a, &no_rewrite), canonicalize(&b, &no_rewrite));
    }

    #[test]
    fn cancellation_yields_zero() {
        let n = Var::new("n");
        let e = PrimExpr::from(n.clone()) - PrimExpr::from(n.clone());
        assert!(canonicalize(&e, &no_rewrite).is_zero());
    }

    #[test]
    fn constant_detection() {
        let e = PrimExpr::from(3i64) * 4.into() - 5.into();
        assert_eq!(canonicalize(&e, &no_rewrite).as_const(), Some(7));
    }

    #[test]
    fn divide_exact() {
        let n = Var::new("n");
        let e = PrimExpr::from(n.clone()) * 4.into() + 8.into();
        let c = canonicalize(&e, &no_rewrite);
        let half = c.divide_exact(4).unwrap();
        let expected = canonicalize(&(PrimExpr::from(n) + 2.into()), &no_rewrite);
        assert_eq!(half, expected);
        assert!(c.divide_exact(3).is_none());
    }
}
