//! Structural annotations (the paper's Table 1): `Object`, `Shape`,
//! `Tensor`, `Tuple` and `Callable`.
//!
//! Every Relax value carries a [`StructInfo`] annotation conveying its
//! compile-time structure — including *first-class symbolic shapes*, where
//! tensor dimensions are symbolic integer expressions tracked globally
//! across the program.

use std::collections::HashSet;
use std::fmt;

use relax_arith::{free_vars, substitute, DataType, PrimExpr, SubstMap, Var};

/// Compile-time knowledge about a shape: fully symbolic dimensions, a known
/// rank with unknown dimensions, or nothing.
#[derive(Debug, Clone, PartialEq)]
pub enum ShapeDesc {
    /// All dimensions known as symbolic expressions, e.g. `(n, 4)`.
    Known(Vec<PrimExpr>),
    /// Only the rank is known, e.g. `Shape(ndim=2)`.
    Ndim(usize),
    /// Nothing is known.
    Unknown,
}

impl ShapeDesc {
    /// The rank, if known.
    pub fn ndim(&self) -> Option<usize> {
        match self {
            ShapeDesc::Known(dims) => Some(dims.len()),
            ShapeDesc::Ndim(n) => Some(*n),
            ShapeDesc::Unknown => None,
        }
    }

    /// The dimensions, if fully known.
    pub fn dims(&self) -> Option<&[PrimExpr]> {
        match self {
            ShapeDesc::Known(dims) => Some(dims),
            _ => None,
        }
    }

    /// Erases symbolic detail down to (at most) the rank.
    pub fn erased(&self) -> ShapeDesc {
        match self.ndim() {
            Some(n) => ShapeDesc::Ndim(n),
            None => ShapeDesc::Unknown,
        }
    }
}

/// The structural annotation of a Relax value (paper Table 1).
///
/// # Examples
///
/// ```
/// use relax_core::StructInfo;
/// use relax_arith::{DataType, PrimExpr, Var};
/// let n = Var::new("n");
/// let t = StructInfo::tensor(vec![n.into(), 4.into()], DataType::F32);
/// assert_eq!(t.to_string(), "Tensor((n, 4), \"f32\")");
/// let s = StructInfo::shape_ndim(2);
/// assert_eq!(s.to_string(), "Shape(ndim=2)");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum StructInfo {
    /// Any runtime value.
    Object,
    /// A shape value, e.g. `Shape([n, 4])`.
    Shape(ShapeDesc),
    /// A scalar integer value known symbolically (e.g. a dimension passed
    /// as a first-class value).
    Prim(PrimExpr),
    /// A tensor with (possibly symbolic) shape and element type.
    Tensor {
        /// Shape knowledge.
        shape: ShapeDesc,
        /// Element type; `None` when unknown.
        dtype: Option<DataType>,
    },
    /// A fixed-length tuple.
    Tuple(Vec<StructInfo>),
    /// A function value with parameter and result annotations.
    Callable {
        /// Parameter annotations.
        params: Vec<StructInfo>,
        /// Result annotation.
        ret: Box<StructInfo>,
    },
}

impl StructInfo {
    /// A tensor with fully known symbolic shape.
    pub fn tensor(shape: Vec<PrimExpr>, dtype: DataType) -> StructInfo {
        StructInfo::Tensor {
            shape: ShapeDesc::Known(shape),
            dtype: Some(dtype),
        }
    }

    /// A tensor with known rank but unknown dimensions
    /// (`Tensor(ndim=2, dtype="f32")`).
    pub fn tensor_ndim(ndim: usize, dtype: DataType) -> StructInfo {
        StructInfo::Tensor {
            shape: ShapeDesc::Ndim(ndim),
            dtype: Some(dtype),
        }
    }

    /// A fully unknown tensor.
    pub fn tensor_unknown() -> StructInfo {
        StructInfo::Tensor {
            shape: ShapeDesc::Unknown,
            dtype: None,
        }
    }

    /// A shape value with known symbolic dimensions.
    pub fn shape(dims: Vec<PrimExpr>) -> StructInfo {
        StructInfo::Shape(ShapeDesc::Known(dims))
    }

    /// A shape value with only the rank known.
    pub fn shape_ndim(ndim: usize) -> StructInfo {
        StructInfo::Shape(ShapeDesc::Ndim(ndim))
    }

    /// A tuple annotation.
    pub fn tuple(fields: Vec<StructInfo>) -> StructInfo {
        StructInfo::Tuple(fields)
    }

    /// A callable annotation.
    pub fn callable(params: Vec<StructInfo>, ret: StructInfo) -> StructInfo {
        StructInfo::Callable {
            params,
            ret: Box::new(ret),
        }
    }

    /// Returns the tensor shape dimensions if this is a tensor with fully
    /// known shape.
    pub fn tensor_dims(&self) -> Option<&[PrimExpr]> {
        match self {
            StructInfo::Tensor { shape, .. } => shape.dims(),
            _ => None,
        }
    }

    /// Returns the tensor element type if known.
    pub fn tensor_dtype(&self) -> Option<DataType> {
        match self {
            StructInfo::Tensor { dtype, .. } => *dtype,
            _ => None,
        }
    }

    /// Erases symbolic shape information, keeping ranks and dtypes — the
    /// "any/unknown dimension" representation that the paper's baselines
    /// (Relay, ONNX) use and that the ablation mode reproduces.
    pub fn erased(&self) -> StructInfo {
        match self {
            StructInfo::Object => StructInfo::Object,
            StructInfo::Shape(s) => StructInfo::Shape(s.erased()),
            StructInfo::Prim(_) => StructInfo::Object,
            StructInfo::Tensor { shape, dtype } => StructInfo::Tensor {
                shape: shape.erased(),
                dtype: *dtype,
            },
            StructInfo::Tuple(fields) => {
                StructInfo::Tuple(fields.iter().map(StructInfo::erased).collect())
            }
            StructInfo::Callable { params, ret } => StructInfo::Callable {
                params: params.iter().map(StructInfo::erased).collect(),
                ret: Box::new(ret.erased()),
            },
        }
    }

    /// Collects the symbolic variables appearing in the annotation.
    pub fn free_symbolic_vars(&self) -> HashSet<Var> {
        let mut out = HashSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut HashSet<Var>) {
        match self {
            StructInfo::Object => {}
            StructInfo::Shape(ShapeDesc::Known(dims)) => {
                for d in dims {
                    out.extend(free_vars(d));
                }
            }
            StructInfo::Shape(_) => {}
            StructInfo::Prim(e) => out.extend(free_vars(e)),
            StructInfo::Tensor { shape, .. } => {
                if let ShapeDesc::Known(dims) = shape {
                    for d in dims {
                        out.extend(free_vars(d));
                    }
                }
            }
            StructInfo::Tuple(fields) => {
                for f in fields {
                    f.collect_vars(out);
                }
            }
            StructInfo::Callable { params, ret } => {
                for p in params {
                    p.collect_vars(out);
                }
                ret.collect_vars(out);
            }
        }
    }

    /// Substitutes symbolic variables throughout the annotation.
    pub fn substituted(&self, map: &SubstMap) -> StructInfo {
        match self {
            StructInfo::Object => StructInfo::Object,
            StructInfo::Shape(ShapeDesc::Known(dims)) => StructInfo::Shape(ShapeDesc::Known(
                dims.iter().map(|d| substitute(d, map)).collect(),
            )),
            StructInfo::Shape(s) => StructInfo::Shape(s.clone()),
            StructInfo::Prim(e) => StructInfo::Prim(substitute(e, map)),
            StructInfo::Tensor { shape, dtype } => StructInfo::Tensor {
                shape: match shape {
                    ShapeDesc::Known(dims) => {
                        ShapeDesc::Known(dims.iter().map(|d| substitute(d, map)).collect())
                    }
                    other => other.clone(),
                },
                dtype: *dtype,
            },
            StructInfo::Tuple(fields) => {
                StructInfo::Tuple(fields.iter().map(|f| f.substituted(map)).collect())
            }
            StructInfo::Callable { params, ret } => StructInfo::Callable {
                params: params.iter().map(|p| p.substituted(map)).collect(),
                ret: Box::new(ret.substituted(map)),
            },
        }
    }

    /// Erases dimensions that mention any of the `forbidden` variables —
    /// used by call-site deduction when a callee's return annotation refers
    /// to symbolic variables the caller could not bind.
    pub fn erase_containing(&self, forbidden: &HashSet<Var>) -> StructInfo {
        if forbidden.is_empty() {
            return self.clone();
        }
        match self {
            StructInfo::Tensor {
                shape: ShapeDesc::Known(dims),
                dtype,
            } => {
                if dims.iter().all(|d| free_vars(d).is_disjoint(forbidden)) {
                    self.clone()
                } else {
                    StructInfo::Tensor {
                        shape: ShapeDesc::Ndim(dims.len()),
                        dtype: *dtype,
                    }
                }
            }
            StructInfo::Shape(ShapeDesc::Known(dims)) => {
                if dims.iter().all(|d| free_vars(d).is_disjoint(forbidden)) {
                    self.clone()
                } else {
                    StructInfo::Shape(ShapeDesc::Ndim(dims.len()))
                }
            }
            StructInfo::Prim(e) => {
                if free_vars(e).is_disjoint(forbidden) {
                    self.clone()
                } else {
                    StructInfo::Object
                }
            }
            StructInfo::Tuple(fields) => StructInfo::Tuple(
                fields
                    .iter()
                    .map(|f| f.erase_containing(forbidden))
                    .collect(),
            ),
            other => other.clone(),
        }
    }

    /// Erases dimensions whose symbolic variables are not all in `bound`:
    /// used when a callee's return annotation mentions variables the caller
    /// could not bind (the dynamic-fallback path of Figure 7, producing
    /// e.g. `Tensor(ndim=1, dtype="f32")`).
    pub fn erase_unbound(&self, bound: &HashSet<Var>) -> StructInfo {
        match self {
            StructInfo::Tensor {
                shape: ShapeDesc::Known(dims),
                dtype,
            } => {
                if dims.iter().all(|d| free_vars(d).is_subset(bound)) {
                    self.clone()
                } else {
                    StructInfo::Tensor {
                        shape: ShapeDesc::Ndim(dims.len()),
                        dtype: *dtype,
                    }
                }
            }
            StructInfo::Shape(ShapeDesc::Known(dims)) => {
                if dims.iter().all(|d| free_vars(d).is_subset(bound)) {
                    self.clone()
                } else {
                    StructInfo::Shape(ShapeDesc::Ndim(dims.len()))
                }
            }
            StructInfo::Prim(e) => {
                if free_vars(e).is_subset(bound) {
                    self.clone()
                } else {
                    StructInfo::Object
                }
            }
            StructInfo::Tuple(fields) => {
                StructInfo::Tuple(fields.iter().map(|f| f.erase_unbound(bound)).collect())
            }
            other => other.clone(),
        }
    }
}

/// Outcome of checking whether a value annotated `arg` can flow into a
/// position annotated `param`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compat {
    /// Statically guaranteed compatible.
    Static,
    /// Possibly compatible; a lightweight runtime check is required at the
    /// boundary (the paper's dynamic fallback).
    RuntimeCheck,
    /// Statically incompatible.
    Incompatible,
}

/// Structurally unifies `param` (which may contain symbolic variables to
/// bind) against `arg`, extending `map`, and reports compatibility.
///
/// This implements the paper's *isolated symbolic relations at function
/// boundaries*: deduction of a call needs only the callee signature.
/// Fresh variables in `param` bind to the corresponding `arg` expressions;
/// already-bound or non-variable dimensions are compared for provable
/// equality; coarse arguments against specific parameters yield
/// [`Compat::RuntimeCheck`].
pub fn unify_struct_info(param: &StructInfo, arg: &StructInfo, map: &mut SubstMap) -> Compat {
    use StructInfo as S;
    match (param, arg) {
        (S::Object, _) => Compat::Static,
        (_, S::Object) => Compat::RuntimeCheck,
        (
            S::Tensor {
                shape: ps,
                dtype: pd,
            },
            S::Tensor {
                shape: as_,
                dtype: ad,
            },
        ) => {
            let dtype_compat = match (pd, ad) {
                (Some(p), Some(a)) if p != a => return Compat::Incompatible,
                (Some(_), None) => Compat::RuntimeCheck,
                _ => Compat::Static,
            };
            combine(dtype_compat, unify_shape(ps, as_, map))
        }
        (S::Shape(ps), S::Shape(as_)) => unify_shape(ps, as_, map),
        (S::Prim(p), S::Prim(a)) => unify_dim(p, a, map),
        (S::Tuple(pf), S::Tuple(af)) => {
            if pf.len() != af.len() {
                return Compat::Incompatible;
            }
            let mut worst = Compat::Static;
            for (p, a) in pf.iter().zip(af) {
                worst = combine(worst, unify_struct_info(p, a, map));
                if worst == Compat::Incompatible {
                    return worst;
                }
            }
            worst
        }
        (
            S::Callable {
                params: pp,
                ret: pr,
            },
            S::Callable {
                params: ap,
                ret: ar,
            },
        ) => {
            if pp.len() != ap.len() {
                return Compat::Incompatible;
            }
            // Function annotations are compared for structural agreement.
            let mut worst = Compat::Static;
            for (p, a) in pp.iter().zip(ap) {
                worst = combine(worst, unify_struct_info(p, a, map));
            }
            combine(worst, unify_struct_info(pr, ar, map))
        }
        _ => Compat::Incompatible,
    }
}

fn unify_shape(param: &ShapeDesc, arg: &ShapeDesc, map: &mut SubstMap) -> Compat {
    match (param, arg) {
        (ShapeDesc::Known(pd), ShapeDesc::Known(ad)) => {
            if pd.len() != ad.len() {
                return Compat::Incompatible;
            }
            let mut worst = Compat::Static;
            for (p, a) in pd.iter().zip(ad) {
                worst = combine(worst, unify_dim(p, a, map));
                if worst == Compat::Incompatible {
                    return worst;
                }
            }
            worst
        }
        (ShapeDesc::Known(pd), ShapeDesc::Ndim(n)) => {
            if pd.len() != *n {
                Compat::Incompatible
            } else {
                Compat::RuntimeCheck
            }
        }
        (ShapeDesc::Known(_), ShapeDesc::Unknown) => Compat::RuntimeCheck,
        (ShapeDesc::Ndim(pn), other) => match other.ndim() {
            Some(an) if an == *pn => Compat::Static,
            Some(_) => Compat::Incompatible,
            None => Compat::RuntimeCheck,
        },
        (ShapeDesc::Unknown, _) => Compat::Static,
    }
}

fn unify_dim(param: &PrimExpr, arg: &PrimExpr, map: &mut SubstMap) -> Compat {
    match param {
        PrimExpr::Var(v) => {
            if let Some(bound) = map.get(v) {
                let bound = bound.clone();
                prove_dim_equal(&bound, arg, map)
            } else {
                map.insert(v.clone(), arg.clone());
                Compat::Static
            }
        }
        _ => prove_dim_equal(param, arg, map),
    }
}

fn prove_dim_equal(param: &PrimExpr, arg: &PrimExpr, map: &SubstMap) -> Compat {
    let analyzer = relax_arith::Analyzer::new();
    let substituted = substitute(param, map);
    if analyzer.prove_equal(&substituted, arg) {
        Compat::Static
    } else if substituted.is_const() && arg.is_const() {
        Compat::Incompatible
    } else {
        Compat::RuntimeCheck
    }
}

fn combine(a: Compat, b: Compat) -> Compat {
    use Compat::*;
    match (a, b) {
        (Incompatible, _) | (_, Incompatible) => Incompatible,
        (RuntimeCheck, _) | (_, RuntimeCheck) => RuntimeCheck,
        _ => Static,
    }
}

impl fmt::Display for StructInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructInfo::Object => f.write_str("Object"),
            StructInfo::Shape(ShapeDesc::Known(dims)) => {
                write!(f, "Shape([")?;
                for (i, d) in dims.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{d}")?;
                }
                write!(f, "])")
            }
            StructInfo::Shape(ShapeDesc::Ndim(n)) => write!(f, "Shape(ndim={n})"),
            StructInfo::Shape(ShapeDesc::Unknown) => write!(f, "Shape"),
            StructInfo::Prim(e) => write!(f, "Prim({e})"),
            StructInfo::Tensor { shape, dtype } => {
                let dt = match dtype {
                    Some(d) => format!("\"{d}\""),
                    None => "dtype=None".to_string(),
                };
                match shape {
                    ShapeDesc::Known(dims) => {
                        write!(f, "Tensor((")?;
                        for (i, d) in dims.iter().enumerate() {
                            if i > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "{d}")?;
                        }
                        if dims.len() == 1 {
                            write!(f, ",")?;
                        }
                        write!(f, "), {dt})")
                    }
                    ShapeDesc::Ndim(n) => write!(f, "Tensor(ndim={n}, {dt})"),
                    ShapeDesc::Unknown => write!(f, "Tensor(ndim=None, {dt})"),
                }
            }
            StructInfo::Tuple(fields) => {
                write!(f, "Tuple[")?;
                for (i, field) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{field}")?;
                }
                write!(f, "]")
            }
            StructInfo::Callable { params, ret } => {
                write!(f, "Callable([")?;
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, "], {ret})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_table1() {
        let n = Var::new("n");
        assert_eq!(StructInfo::Object.to_string(), "Object");
        assert_eq!(
            StructInfo::shape(vec![n.clone().into(), 4.into()]).to_string(),
            "Shape([n, 4])"
        );
        assert_eq!(StructInfo::shape_ndim(2).to_string(), "Shape(ndim=2)");
        assert_eq!(
            StructInfo::tensor(vec![n.clone().into(), 4.into()], DataType::F32).to_string(),
            "Tensor((n, 4), \"f32\")"
        );
        assert_eq!(
            StructInfo::tensor_unknown().to_string(),
            "Tensor(ndim=None, dtype=None)"
        );
        let tup = StructInfo::tuple(vec![
            StructInfo::tensor(vec![n.clone().into(), 4.into()], DataType::F32),
            StructInfo::Object,
        ]);
        assert_eq!(tup.to_string(), "Tuple[Tensor((n, 4), \"f32\"), Object]");
        let callable = StructInfo::callable(
            vec![StructInfo::tensor(
                vec![n.clone().into(), 4.into()],
                DataType::F32,
            )],
            StructInfo::tensor(vec![PrimExpr::from(n) * 4.into()], DataType::F32),
        );
        assert_eq!(
            callable.to_string(),
            "Callable([Tensor((n, 4), \"f32\")], Tensor(((n * 4),), \"f32\"))"
        );
    }

    #[test]
    fn erasure_keeps_rank() {
        let n = Var::new("n");
        let t = StructInfo::tensor(vec![n.into(), 4.into()], DataType::F32);
        assert_eq!(t.erased(), StructInfo::tensor_ndim(2, DataType::F32));
    }

    #[test]
    fn unify_binds_fresh_vars() {
        let n = Var::new("n");
        let m = Var::new("m");
        let param = StructInfo::shape(vec![n.clone().into(), m.clone().into()]);
        let caller = Var::new("k");
        let arg = StructInfo::shape(vec![caller.clone().into(), 4.into()]);
        let mut map = SubstMap::new();
        assert_eq!(unify_struct_info(&param, &arg, &mut map), Compat::Static);
        assert_eq!(map.get(&n), Some(&PrimExpr::from(caller)));
        assert_eq!(map.get(&m), Some(&PrimExpr::from(4i64)));
    }

    #[test]
    fn unify_detects_static_conflicts() {
        let param = StructInfo::tensor(vec![4.into()], DataType::F32);
        let arg = StructInfo::tensor(vec![5.into()], DataType::F32);
        let mut map = SubstMap::new();
        assert_eq!(
            unify_struct_info(&param, &arg, &mut map),
            Compat::Incompatible
        );
        let arg2 = StructInfo::tensor(vec![4.into()], DataType::F16);
        assert_eq!(
            unify_struct_info(&param, &arg2, &mut map),
            Compat::Incompatible
        );
    }

    #[test]
    fn coarse_args_need_runtime_checks() {
        let n = Var::new("n");
        let m = Var::new("m");
        let param = StructInfo::shape(vec![n.into(), m.into()]);
        let arg = StructInfo::shape_ndim(2);
        let mut map = SubstMap::new();
        assert_eq!(
            unify_struct_info(&param, &arg, &mut map),
            Compat::RuntimeCheck
        );
        // Rank mismatch is statically wrong even for coarse args.
        let arg3 = StructInfo::shape_ndim(3);
        assert_eq!(
            unify_struct_info(&param, &arg3, &mut map),
            Compat::Incompatible
        );
    }

    #[test]
    fn repeated_var_must_prove_equal() {
        let n = Var::new("n");
        // param: Tensor((n, n)) — both dims must match.
        let param = StructInfo::tensor(vec![n.clone().into(), n.clone().into()], DataType::F32);
        let k = Var::new("k");
        let ok = StructInfo::tensor(
            vec![
                PrimExpr::from(k.clone()) * 2.into(),
                PrimExpr::from(k.clone()) + k.clone().into(),
            ],
            DataType::F32,
        );
        let mut map = SubstMap::new();
        assert_eq!(unify_struct_info(&param, &ok, &mut map), Compat::Static);
        let maybe = StructInfo::tensor(
            vec![PrimExpr::from(k.clone()), PrimExpr::from(Var::new("j"))],
            DataType::F32,
        );
        let mut map2 = SubstMap::new();
        assert_eq!(
            unify_struct_info(&param, &maybe, &mut map2),
            Compat::RuntimeCheck
        );
    }

    #[test]
    fn erase_unbound_drops_unresolvable_dims() {
        let n = Var::new("n");
        let m = Var::new("m");
        let t = StructInfo::tensor(
            vec![PrimExpr::from(n.clone()) * m.clone().into()],
            DataType::F32,
        );
        let bound: HashSet<Var> = [n].into_iter().collect();
        assert_eq!(
            t.erase_unbound(&bound),
            StructInfo::tensor_ndim(1, DataType::F32)
        );
    }

    #[test]
    fn substitution_rewrites_shapes() {
        let n = Var::new("n");
        let t = StructInfo::tensor(vec![PrimExpr::from(n.clone()) * 4.into()], DataType::F32);
        let map: SubstMap = [(n, PrimExpr::Int(3))].into_iter().collect();
        assert_eq!(
            t.substituted(&map),
            StructInfo::tensor(vec![12.into()], DataType::F32)
        );
    }

    #[test]
    fn free_vars_collected_across_nesting() {
        let n = Var::new("n");
        let m = Var::new("m");
        let t = StructInfo::tuple(vec![
            StructInfo::tensor(vec![n.clone().into()], DataType::F32),
            StructInfo::shape(vec![m.clone().into()]),
        ]);
        let fv = t.free_symbolic_vars();
        assert!(fv.contains(&n) && fv.contains(&m));
    }
}
