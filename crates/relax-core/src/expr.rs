//! Graph-level expressions, bindings, dataflow blocks and functions.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};

use relax_arith::PrimExpr;
use relax_tir::NDArray;

use crate::op::Op;
use crate::struct_info::StructInfo;

static NEXT_VAR_ID: AtomicU64 = AtomicU64::new(0);

/// A graph-level variable carrying its structural annotation.
///
/// Variables have reference identity (cloning aliases) and are created by
/// the [`crate::BlockBuilder`] with their annotation already deduced.
/// Dataflow variables (`is_dataflow`) are scoped to their dataflow block.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Var(Arc<VarData>);

struct VarData {
    id: u64,
    name: String,
    sinfo: StructInfo,
    is_dataflow: bool,
}

impl PartialEq for VarData {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl Eq for VarData {}
impl std::hash::Hash for VarData {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl Var {
    /// Creates a function-scope variable with the given annotation.
    pub fn new(name: impl Into<String>, sinfo: StructInfo) -> Self {
        Var(Arc::new(VarData {
            id: NEXT_VAR_ID.fetch_add(1, Ordering::Relaxed),
            name: name.into(),
            sinfo,
            is_dataflow: false,
        }))
    }

    /// Creates a dataflow-scoped variable.
    pub fn new_dataflow(name: impl Into<String>, sinfo: StructInfo) -> Self {
        Var(Arc::new(VarData {
            id: NEXT_VAR_ID.fetch_add(1, Ordering::Relaxed),
            name: name.into(),
            sinfo,
            is_dataflow: true,
        }))
    }

    /// Display name.
    pub fn name(&self) -> &str {
        &self.0.name
    }

    /// Globally unique identity.
    pub fn id(&self) -> u64 {
        self.0.id
    }

    /// The structural annotation.
    pub fn struct_info(&self) -> &StructInfo {
        &self.0.sinfo
    }

    /// `true` if scoped to a dataflow block.
    pub fn is_dataflow(&self) -> bool {
        self.0.is_dataflow
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({}#{})", self.name(), self.id())
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Operator attributes (axis selections, epsilon values, …) stored as a
/// small string map with typed accessors.
pub type OpAttrs = BTreeMap<String, String>;

/// A graph-level expression.
///
/// The cross-level foreign call primitives [`Expr::CallTir`] and
/// [`Expr::CallDps`] carry their output annotation explicitly (the paper's
/// Figure 4); [`Expr::MatchCast`] asserts a more specific annotation with a
/// runtime check, introducing fresh symbolic variables (Figure 3).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A variable reference.
    Var(Var),
    /// A constant tensor.
    Constant(NDArray),
    /// A symbolic shape as a first-class value, e.g. `shape(n, 4)`.
    ShapeValue(Vec<PrimExpr>),
    /// A symbolic integer as a first-class value.
    PrimValue(PrimExpr),
    /// Tuple construction.
    Tuple(Vec<Expr>),
    /// Tuple projection.
    TupleGetItem(Box<Expr>, usize),
    /// A call to a registered high-level operator.
    CallOp {
        /// The operator.
        op: Op,
        /// Arguments.
        args: Vec<Expr>,
        /// Operator attributes.
        attrs: OpAttrs,
    },
    /// A call to another graph-level function in the module.
    CallGlobal {
        /// Callee name.
        func: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `call_tir(func, args, out_sinfo, sym_args)` — destination-passing
    /// call of a loop-level tensor program (Figure 5 semantics).
    CallTir {
        /// Name of the tensor program in the module.
        func: String,
        /// Input arguments.
        args: Vec<Expr>,
        /// Annotation of the output tensor(s); drives allocation.
        out_sinfo: StructInfo,
        /// Extra symbolic arguments passed to the tensor program.
        sym_args: Vec<PrimExpr>,
    },
    /// `call_dps_library(name, args, out_sinfo)` — destination-passing call
    /// into an external library function from the registry.
    CallDps {
        /// Registered library function name (e.g. `"cutlass.rms_norm"`).
        func: String,
        /// Input arguments.
        args: Vec<Expr>,
        /// Annotation of the output tensor(s).
        out_sinfo: StructInfo,
    },
    /// `match_cast(value, sinfo)` — asserts `sinfo` at runtime, binding any
    /// fresh symbolic variables it mentions.
    MatchCast {
        /// The value whose structure is asserted.
        value: Box<Expr>,
        /// The asserted annotation.
        sinfo: StructInfo,
    },
}

impl Expr {
    /// Convenience constructor for an operator call without attributes.
    pub fn op_call(op: Op, args: Vec<Expr>) -> Expr {
        Expr::CallOp {
            op,
            args,
            attrs: OpAttrs::new(),
        }
    }

    /// Returns the variable if this expression is a variable reference.
    pub fn as_var(&self) -> Option<&Var> {
        match self {
            Expr::Var(v) => Some(v),
            _ => None,
        }
    }

    /// Collects variables referenced by this expression (not recursing into
    /// nested sub-expressions of tuples only — full recursion).
    pub fn collect_used_vars(&self, out: &mut Vec<Var>) {
        match self {
            Expr::Var(v) => out.push(v.clone()),
            Expr::Constant(_) | Expr::ShapeValue(_) | Expr::PrimValue(_) => {}
            Expr::Tuple(items) => {
                for e in items {
                    e.collect_used_vars(out);
                }
            }
            Expr::TupleGetItem(e, _) => e.collect_used_vars(out),
            Expr::CallOp { args, .. }
            | Expr::CallGlobal { args, .. }
            | Expr::CallTir { args, .. }
            | Expr::CallDps { args, .. } => {
                for e in args {
                    e.collect_used_vars(out);
                }
            }
            Expr::MatchCast { value, .. } => value.collect_used_vars(out),
        }
    }
}

impl From<Var> for Expr {
    fn from(v: Var) -> Self {
        Expr::Var(v)
    }
}

impl From<&Var> for Expr {
    fn from(v: &Var) -> Self {
        Expr::Var(v.clone())
    }
}

/// A single binding `var = value` inside a block.
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    /// The bound variable (annotation included).
    pub var: Var,
    /// The bound expression.
    pub value: Expr,
}

/// The kind of a binding block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// A side-effect-free, control-flow-free region (`with dataflow():`),
    /// where reordering and dead-code elimination are always safe.
    Dataflow,
    /// An ordinary binding sequence.
    Binding,
}

/// A sequence of bindings, optionally marked as a dataflow block.
#[derive(Debug, Clone, PartialEq)]
pub struct BindingBlock {
    /// Dataflow or plain.
    pub kind: BlockKind,
    /// The bindings in program order.
    pub bindings: Vec<Binding>,
}

/// A graph-level function.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Parameter variables (annotations included).
    pub params: Vec<Var>,
    /// Body blocks in order.
    pub blocks: Vec<BindingBlock>,
    /// The returned expression (commonly a variable).
    pub ret: Expr,
    /// Return annotation.
    pub ret_sinfo: StructInfo,
    /// Function attributes.
    pub attrs: OpAttrs,
}

impl Function {
    /// The signature as a callable annotation, used for call-site deduction
    /// with only the signature (isolated symbolic relations at function
    /// boundaries).
    pub fn signature(&self) -> StructInfo {
        StructInfo::callable(
            self.params
                .iter()
                .map(|p| p.struct_info().clone())
                .collect(),
            self.ret_sinfo.clone(),
        )
    }

    /// Iterates over all bindings in all blocks.
    pub fn bindings(&self) -> impl Iterator<Item = &Binding> {
        self.blocks.iter().flat_map(|b| b.bindings.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relax_arith::DataType;

    #[test]
    fn var_identity_and_annotation() {
        let s = StructInfo::tensor(vec![4.into()], DataType::F32);
        let a = Var::new("x", s.clone());
        let b = Var::new("x", s.clone());
        assert_ne!(a, b);
        assert_eq!(a.struct_info(), &s);
        assert!(!a.is_dataflow());
        assert!(Var::new_dataflow("lv", s).is_dataflow());
    }

    #[test]
    fn collect_used_vars_traverses_nesting() {
        let s = StructInfo::tensor(vec![4.into()], DataType::F32);
        let a = Var::new("a", s.clone());
        let b = Var::new("b", s.clone());
        let e = Expr::op_call(
            Op::Add,
            vec![
                Expr::Tuple(vec![a.clone().into()]),
                Expr::TupleGetItem(Box::new(Expr::Var(b.clone())), 0),
            ],
        );
        let mut used = Vec::new();
        e.collect_used_vars(&mut used);
        assert_eq!(used, vec![a, b]);
    }

    #[test]
    fn signature_reflects_params_and_ret() {
        let s = StructInfo::tensor(vec![4.into()], DataType::F32);
        let p = Var::new("x", s.clone());
        let f = Function {
            params: vec![p.clone()],
            blocks: vec![],
            ret: p.into(),
            ret_sinfo: s.clone(),
            attrs: OpAttrs::new(),
        };
        assert_eq!(f.signature(), StructInfo::callable(vec![s.clone()], s));
    }
}
