//! The `BlockBuilder`: constructs well-formed Relax functions with
//! on-the-fly normalization and shape deduction.

use std::fmt;

use relax_tir::PrimFunc;

use crate::deduce::{deduce, DeduceError};
use crate::expr::{Binding, BindingBlock, BlockKind, Expr, Function, OpAttrs, Var};
use crate::module::IRModule;
use crate::op::Op;
use crate::struct_info::StructInfo;

/// Error raised while building a function.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// Shape deduction failed for an emitted expression.
    Deduce(DeduceError),
    /// A builder method was called outside the state it requires.
    State(&'static str),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Deduce(e) => write!(f, "deduction failed: {e}"),
            BuildError::State(msg) => write!(f, "builder misuse: {msg}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<DeduceError> for BuildError {
    fn from(e: DeduceError) -> Self {
        BuildError::Deduce(e)
    }
}

struct FuncFrame {
    name: String,
    params: Vec<Var>,
    blocks: Vec<BindingBlock>,
    current: Vec<Binding>,
    in_dataflow: bool,
    var_counter: usize,
}

/// Builds Relax functions binding by binding, deducing each annotation as
/// it goes (the deduction "runs for every pass" property of §4.1 starts
/// here: annotations are never left blank).
///
/// # Examples
///
/// ```
/// use relax_core::{BlockBuilder, Expr, Op, StructInfo};
/// use relax_arith::{DataType, Var as SymVar};
///
/// let mut bb = BlockBuilder::new();
/// let n = SymVar::new("n");
/// let params = bb.begin_function(
///     "main",
///     vec![("x".into(), StructInfo::tensor(vec![n.into(), 4.into()], DataType::F32))],
/// );
/// bb.begin_dataflow();
/// let lv0 = bb.emit(Expr::op_call(Op::Relu, vec![params[0].clone().into()]))?;
/// let out = bb.emit_output(Expr::op_call(Op::Exp, vec![lv0.into()]))?;
/// bb.end_dataflow();
/// bb.finish_function(out.clone().into(), None)?;
/// let module = bb.finish();
/// assert!(module.function("main").is_some());
/// # Ok::<(), relax_core::BuildError>(())
/// ```
#[derive(Default)]
pub struct BlockBuilder {
    module: IRModule,
    frame: Option<FuncFrame>,
}

impl BlockBuilder {
    /// Creates a builder with an empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder extending an existing module.
    pub fn from_module(module: IRModule) -> Self {
        BlockBuilder {
            module,
            frame: None,
        }
    }

    /// Access to the module under construction.
    pub fn module(&self) -> &IRModule {
        &self.module
    }

    /// Registers a tensor program; returns its (possibly uniquified) name.
    pub fn add_tir_func(&mut self, func: PrimFunc) -> String {
        self.module.add_tir_func(func)
    }

    /// Starts a new function, returning its parameter variables.
    ///
    /// # Panics
    ///
    /// Panics if a function is already being built.
    pub fn begin_function(
        &mut self,
        name: impl Into<String>,
        params: Vec<(String, StructInfo)>,
    ) -> Vec<Var> {
        assert!(
            self.frame.is_none(),
            "finish_function must be called before beginning another"
        );
        let params: Vec<Var> = params.into_iter().map(|(n, s)| Var::new(n, s)).collect();
        self.frame = Some(FuncFrame {
            name: name.into(),
            params: params.clone(),
            blocks: Vec::new(),
            current: Vec::new(),
            in_dataflow: false,
            var_counter: 0,
        });
        params
    }

    /// Opens a dataflow block (`with dataflow():`).
    pub fn begin_dataflow(&mut self) {
        if let Some(frame) = &mut self.frame {
            if !frame.current.is_empty() {
                let bindings = std::mem::take(&mut frame.current);
                frame.blocks.push(BindingBlock {
                    kind: BlockKind::Binding,
                    bindings,
                });
            }
            frame.in_dataflow = true;
        }
    }

    /// Closes the current dataflow block.
    pub fn end_dataflow(&mut self) {
        if let Some(frame) = &mut self.frame {
            let bindings = std::mem::take(&mut frame.current);
            frame.blocks.push(BindingBlock {
                kind: BlockKind::Dataflow,
                bindings,
            });
            frame.in_dataflow = false;
        }
    }

    /// Emits a binding for `expr`, deducing its annotation, and returns the
    /// new variable (dataflow-scoped inside dataflow blocks).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Deduce`] when the annotation cannot be deduced
    /// and [`BuildError::State`] outside a function.
    pub fn emit(&mut self, expr: Expr) -> Result<Var, BuildError> {
        let sinfo = deduce(&expr, &self.module)?;
        self.emit_binding(expr, sinfo, false)
    }

    /// Emits a binding whose variable is visible outside the dataflow block
    /// (a dataflow *output*).
    pub fn emit_output(&mut self, expr: Expr) -> Result<Var, BuildError> {
        let sinfo = deduce(&expr, &self.module)?;
        self.emit_binding(expr, sinfo, true)
    }

    /// Emits `match_cast(value, sinfo)`, introducing the symbolic variables
    /// of `sinfo` with a runtime check.
    pub fn emit_match_cast(&mut self, value: Expr, sinfo: StructInfo) -> Result<Var, BuildError> {
        let expr = Expr::MatchCast {
            value: Box::new(value),
            sinfo: sinfo.clone(),
        };
        // Deduce validates static possibility.
        let deduced = deduce(&expr, &self.module)?;
        self.emit_binding(expr, deduced, false)
    }

    /// Shorthand for emitting an operator call without attributes.
    pub fn emit_op(&mut self, op: Op, args: &[Var]) -> Result<Var, BuildError> {
        self.emit(Expr::op_call(
            op,
            args.iter().map(|v| Expr::Var(v.clone())).collect(),
        ))
    }

    /// Shorthand for emitting an operator call with attributes.
    pub fn emit_op_attrs(
        &mut self,
        op: Op,
        args: Vec<Expr>,
        attrs: OpAttrs,
    ) -> Result<Var, BuildError> {
        self.emit(Expr::CallOp { op, args, attrs })
    }

    fn emit_binding(
        &mut self,
        expr: Expr,
        sinfo: StructInfo,
        force_output: bool,
    ) -> Result<Var, BuildError> {
        let frame = self
            .frame
            .as_mut()
            .ok_or(BuildError::State("emit called outside a function"))?;
        let name = format!("lv{}", frame.var_counter);
        frame.var_counter += 1;
        let var = if frame.in_dataflow && !force_output {
            Var::new_dataflow(name, sinfo)
        } else {
            Var::new(name, sinfo)
        };
        frame.current.push(Binding {
            var: var.clone(),
            value: expr,
        });
        Ok(var)
    }

    /// Finishes the current function with return expression `ret`; the
    /// return annotation is deduced when not given explicitly.
    ///
    /// # Errors
    ///
    /// Fails when no function is active or the return annotation cannot be
    /// deduced.
    pub fn finish_function(
        &mut self,
        ret: Expr,
        ret_sinfo: Option<StructInfo>,
    ) -> Result<(), BuildError> {
        let ret_sinfo = match ret_sinfo {
            Some(s) => s,
            None => deduce(&ret, &self.module)?,
        };
        let mut frame = self
            .frame
            .take()
            .ok_or(BuildError::State("finish_function without begin_function"))?;
        if !frame.current.is_empty() {
            let kind = if frame.in_dataflow {
                BlockKind::Dataflow
            } else {
                BlockKind::Binding
            };
            let bindings = std::mem::take(&mut frame.current);
            frame.blocks.push(BindingBlock { kind, bindings });
        }
        let func = Function {
            params: frame.params,
            blocks: frame.blocks,
            ret,
            ret_sinfo,
            attrs: OpAttrs::new(),
        };
        self.module.add_function(frame.name, func);
        Ok(())
    }

    /// Consumes the builder, returning the completed module.
    pub fn finish(self) -> IRModule {
        self.module
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relax_arith::{DataType, PrimExpr, Var as SV};

    #[test]
    fn builds_dataflow_function_with_deduction() {
        let mut bb = BlockBuilder::new();
        let n = SV::new("n");
        let params = bb.begin_function(
            "main",
            vec![(
                "x".into(),
                StructInfo::tensor(vec![n.clone().into(), 2.into(), 2.into()], DataType::F32),
            )],
        );
        bb.begin_dataflow();
        // Figure 3: reshape -> flatten with symbolic tracking.
        let lv0 = bb
            .emit(Expr::CallOp {
                op: Op::Reshape,
                args: vec![
                    params[0].clone().into(),
                    Expr::ShapeValue(vec![n.clone().into(), 4.into()]),
                ],
                attrs: OpAttrs::new(),
            })
            .unwrap();
        assert_eq!(lv0.struct_info().to_string(), "Tensor((n, 4), \"f32\")");
        let lv1 = bb.emit_op(Op::Flatten, &[lv0]).unwrap();
        let expected = relax_arith::simplify(&(PrimExpr::from(n) * 4.into()));
        assert_eq!(lv1.struct_info().tensor_dims().unwrap(), &[expected]);
        assert!(lv1.is_dataflow());
        let lv2 = bb.emit_op(Op::Unique, &[lv1]).unwrap();
        assert_eq!(
            *lv2.struct_info(),
            StructInfo::tensor_ndim(1, DataType::F32)
        );
        // match_cast introduces a fresh m.
        let m = SV::new("m");
        let lv3 = bb
            .emit_match_cast(
                lv2.into(),
                StructInfo::tensor(vec![m.clone().into()], DataType::F32),
            )
            .unwrap();
        let out = bb
            .emit_output(Expr::op_call(Op::Exp, vec![lv3.into()]))
            .unwrap();
        assert!(!out.is_dataflow());
        bb.end_dataflow();
        bb.finish_function(out.clone().into(), None).unwrap();
        let module = bb.finish();
        let f = module.function("main").unwrap();
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].kind, BlockKind::Dataflow);
        assert_eq!(f.blocks[0].bindings.len(), 5);
        assert_eq!(
            f.ret_sinfo,
            StructInfo::tensor(vec![m.into()], DataType::F32)
        );
    }

    #[test]
    fn emit_outside_function_is_an_error() {
        let mut bb = BlockBuilder::new();
        let err = bb.emit(Expr::ShapeValue(vec![1.into()])).unwrap_err();
        assert!(matches!(err, BuildError::State(_)));
    }

    #[test]
    fn deduce_failure_propagates() {
        let mut bb = BlockBuilder::new();
        let params = bb.begin_function(
            "f",
            vec![(
                "x".into(),
                StructInfo::tensor(vec![4.into()], DataType::F32),
            )],
        );
        // matmul on rank-1 tensor fails inference.
        let err = bb
            .emit_op(Op::Matmul, &[params[0].clone(), params[0].clone()])
            .unwrap_err();
        assert!(matches!(err, BuildError::Deduce(_)));
    }
}
