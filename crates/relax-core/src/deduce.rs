//! Forward symbolic shape deduction (§4.1).
//!
//! Deduction is *forward* (an expression's annotation follows from its
//! inputs' annotations), *local* (a call is deduced from the callee's
//! signature alone — isolated symbolic relations at function boundaries),
//! and *total with a coarse fallback* (when specific information cannot be
//! inferred, a rank-level annotation is returned rather than failing).

use std::collections::HashSet;
use std::fmt;

use relax_arith::{PrimExpr, SubstMap, Var as SymVar};

use crate::expr::Expr;
use crate::module::IRModule;
use crate::op::InferError;
use crate::struct_info::{unify_struct_info, Compat, ShapeDesc, StructInfo};

/// Error raised by shape deduction.
#[derive(Debug, Clone, PartialEq)]
pub enum DeduceError {
    /// Operator-level inference failed.
    Infer(InferError),
    /// A referenced graph-level function does not exist.
    UnknownGlobal(String),
    /// A referenced tensor program does not exist.
    UnknownTir(String),
    /// Call arguments are statically incompatible with the callee signature.
    IncompatibleCall {
        /// The callee.
        callee: String,
        /// Detail.
        detail: String,
    },
    /// Tuple projection on a non-tuple or out-of-range index.
    BadTupleAccess {
        /// Human-readable detail.
        detail: String,
    },
    /// A `match_cast` target is statically impossible.
    ImpossibleMatchCast {
        /// The source annotation.
        from: String,
        /// The asserted annotation.
        to: String,
    },
}

impl fmt::Display for DeduceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeduceError::Infer(e) => write!(f, "{e}"),
            DeduceError::UnknownGlobal(name) => write!(f, "unknown function `{name}`"),
            DeduceError::UnknownTir(name) => write!(f, "unknown tensor program `{name}`"),
            DeduceError::IncompatibleCall { callee, detail } => {
                write!(f, "incompatible call to `{callee}`: {detail}")
            }
            DeduceError::BadTupleAccess { detail } => write!(f, "bad tuple access: {detail}"),
            DeduceError::ImpossibleMatchCast { from, to } => {
                write!(f, "match_cast from `{from}` to `{to}` can never succeed")
            }
        }
    }
}

impl std::error::Error for DeduceError {}

impl From<InferError> for DeduceError {
    fn from(e: InferError) -> Self {
        DeduceError::Infer(e)
    }
}

/// Deduces the structural annotation of an expression against a module.
///
/// # Errors
///
/// Fails only for *statically impossible* programs (unknown callees,
/// provably conflicting shapes); coarse information degrades gracefully to
/// rank-level annotations instead.
///
/// # Examples
///
/// ```
/// use relax_core::{deduce, Expr, IRModule, Op, StructInfo, Var};
/// use relax_arith::{DataType, Var as SymVar};
/// let n = SymVar::new("n");
/// let x = Var::new("x", StructInfo::tensor(vec![n.clone().into(), 4.into()], DataType::F32));
/// let m = IRModule::new();
/// let flat = Expr::op_call(Op::Flatten, vec![x.into()]);
/// let out = deduce(&flat, &m)?;
/// assert_eq!(out.to_string(), "Tensor(((n * 4),), \"f32\")");
/// # Ok::<(), relax_core::DeduceError>(())
/// ```
pub fn deduce(expr: &Expr, module: &IRModule) -> Result<StructInfo, DeduceError> {
    match expr {
        Expr::Var(v) => Ok(v.struct_info().clone()),
        Expr::Constant(arr) => Ok(StructInfo::tensor(
            arr.shape()
                .iter()
                .map(|&d| PrimExpr::from(d as i64))
                .collect(),
            arr.dtype(),
        )),
        Expr::ShapeValue(dims) => Ok(StructInfo::shape(dims.clone())),
        Expr::PrimValue(e) => Ok(StructInfo::Prim(e.clone())),
        Expr::Tuple(items) => {
            let fields: Result<Vec<_>, _> = items.iter().map(|e| deduce(e, module)).collect();
            Ok(StructInfo::Tuple(fields?))
        }
        Expr::TupleGetItem(e, index) => match deduce(e, module)? {
            StructInfo::Tuple(fields) => {
                fields
                    .get(*index)
                    .cloned()
                    .ok_or_else(|| DeduceError::BadTupleAccess {
                        detail: format!("index {index} out of range for {} fields", fields.len()),
                    })
            }
            other => Err(DeduceError::BadTupleAccess {
                detail: format!("projection on non-tuple `{other}`"),
            }),
        },
        Expr::CallOp { op, args, attrs } => {
            let arg_infos: Result<Vec<_>, _> = args.iter().map(|a| deduce(a, module)).collect();
            Ok(op.infer(&arg_infos?, attrs)?)
        }
        Expr::CallGlobal { func, args } => {
            let callee = module
                .function(func)
                .ok_or_else(|| DeduceError::UnknownGlobal(func.clone()))?;
            let arg_infos: Result<Vec<_>, _> = args.iter().map(|a| deduce(a, module)).collect();
            let arg_infos = arg_infos?;
            if callee.params.len() != arg_infos.len() {
                return Err(DeduceError::IncompatibleCall {
                    callee: func.clone(),
                    detail: format!(
                        "expected {} arguments, got {}",
                        callee.params.len(),
                        arg_infos.len()
                    ),
                });
            }
            deduce_call_signature(
                func,
                &callee
                    .params
                    .iter()
                    .map(|p| p.struct_info().clone())
                    .collect::<Vec<_>>(),
                &callee.ret_sinfo,
                &arg_infos,
            )
        }
        Expr::CallTir {
            func, out_sinfo, ..
        } => {
            if module.tir_func(func).is_none() {
                return Err(DeduceError::UnknownTir(func.clone()));
            }
            Ok(out_sinfo.clone())
        }
        Expr::CallDps { out_sinfo, .. } => Ok(out_sinfo.clone()),
        Expr::MatchCast { value, sinfo } => {
            let from = deduce(value, module)?;
            let mut map = SubstMap::new();
            // match_cast binds *fresh* variables in `sinfo`; check for
            // static impossibility only (e.g. rank conflicts).
            if unify_struct_info(sinfo, &from, &mut map) == Compat::Incompatible {
                return Err(DeduceError::ImpossibleMatchCast {
                    from: from.to_string(),
                    to: sinfo.to_string(),
                });
            }
            Ok(sinfo.clone())
        }
    }
}

/// Deduces the result of calling a function with the given signature — the
/// subgraph-call deduction of Figure 7. Symbolic variables in the parameter
/// annotations bind to caller expressions; the return annotation is
/// instantiated with those bindings, and any dimension still mentioning an
/// unbound callee variable is erased to a coarse rank-level annotation.
pub fn deduce_call_signature(
    callee_name: &str,
    params: &[StructInfo],
    ret: &StructInfo,
    args: &[StructInfo],
) -> Result<StructInfo, DeduceError> {
    let mut map = SubstMap::new();
    for (p, a) in params.iter().zip(args) {
        if unify_struct_info(p, a, &mut map) == Compat::Incompatible {
            return Err(DeduceError::IncompatibleCall {
                callee: callee_name.to_string(),
                detail: format!("argument `{a}` does not match parameter `{p}`"),
            });
        }
    }
    // Callee-side variables that did not receive a binding must be erased
    // from the instantiated return annotation.
    let mut callee_vars: HashSet<SymVar> = HashSet::new();
    for p in params {
        callee_vars.extend(p.free_symbolic_vars());
    }
    callee_vars.extend(ret.free_symbolic_vars());
    let unbound: HashSet<SymVar> = callee_vars
        .into_iter()
        .filter(|v| !map.contains_key(v))
        .collect();
    Ok(ret.substituted(&map).erase_containing(&unbound))
}

/// Convenience: deduce with coarse-annotation awareness for shape values.
pub fn shape_of(sinfo: &StructInfo) -> Option<ShapeDesc> {
    match sinfo {
        StructInfo::Tensor { shape, .. } => Some(shape.clone()),
        StructInfo::Shape(s) => Some(s.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Function, OpAttrs, Var};
    use relax_arith::{DataType, Var as SV};

    /// Builds `subfn(s: Shape([n, m])) -> Tensor((n * m,), "f32")` from
    /// Figure 7 of the paper.
    fn subfn() -> Function {
        let n = SV::new("n");
        let m = SV::new("m");
        let s = Var::new(
            "s",
            StructInfo::shape(vec![n.clone().into(), m.clone().into()]),
        );
        Function {
            params: vec![s.clone()],
            blocks: vec![],
            ret: s.into(),
            ret_sinfo: StructInfo::tensor(vec![PrimExpr::from(n) * m.into()], DataType::F32),
            attrs: OpAttrs::new(),
        }
    }

    fn module_with_subfn() -> IRModule {
        let mut m = IRModule::new();
        m.add_function("subfn", subfn());
        m
    }

    #[test]
    fn figure7_lv0_symbolic_times_const() {
        // lv0 = subfn(shape(n, 4)) : Tensor((n * 4,), "f32")
        let m = module_with_subfn();
        let n = SV::new("n");
        let call = Expr::CallGlobal {
            func: "subfn".into(),
            args: vec![Expr::ShapeValue(vec![n.clone().into(), 4.into()])],
        };
        let out = deduce(&call, &m).unwrap();
        assert_eq!(out.to_string(), "Tensor(((n * 4),), \"f32\")");
    }

    #[test]
    fn figure7_lv1_constants_fold() {
        // lv1 = subfn(shape(3, 4)) : Tensor((12,), "f32")
        let m = module_with_subfn();
        let call = Expr::CallGlobal {
            func: "subfn".into(),
            args: vec![Expr::ShapeValue(vec![3.into(), 4.into()])],
        };
        let out = deduce(&call, &m).unwrap();
        assert_eq!(out.to_string(), "Tensor((12,), \"f32\")");
    }

    #[test]
    fn figure7_lv2_compound_expression() {
        // lv2 = subfn(shape(n + 1, 4)) : Tensor(((n + 1) * 4,), "f32")
        let m = module_with_subfn();
        let n = SV::new("n");
        let call = Expr::CallGlobal {
            func: "subfn".into(),
            args: vec![Expr::ShapeValue(vec![
                PrimExpr::from(n.clone()) + 1.into(),
                4.into(),
            ])],
        };
        let out = deduce(&call, &m).unwrap();
        // Canonicalized to n*4 + 4.
        let expected = relax_arith::simplify(&((PrimExpr::from(n) + 1.into()) * 4.into()));
        assert_eq!(out.tensor_dims().unwrap(), &[expected]);
    }

    #[test]
    fn figure7_lv3_coarse_arg_erases_return() {
        // lv3 = subfn(y: Shape(ndim=2)) : Tensor(ndim=1, dtype="f32")
        let m = module_with_subfn();
        let y = Var::new("y", StructInfo::shape_ndim(2));
        let call = Expr::CallGlobal {
            func: "subfn".into(),
            args: vec![y.into()],
        };
        let out = deduce(&call, &m).unwrap();
        assert_eq!(out, StructInfo::tensor_ndim(1, DataType::F32));
    }

    #[test]
    fn call_arity_mismatch_detected() {
        let m = module_with_subfn();
        let call = Expr::CallGlobal {
            func: "subfn".into(),
            args: vec![],
        };
        assert!(matches!(
            deduce(&call, &m),
            Err(DeduceError::IncompatibleCall { .. })
        ));
        let missing = Expr::CallGlobal {
            func: "nope".into(),
            args: vec![],
        };
        assert!(matches!(
            deduce(&missing, &m),
            Err(DeduceError::UnknownGlobal(_))
        ));
    }

    #[test]
    fn match_cast_returns_target_and_rejects_impossible() {
        let m = IRModule::new();
        let x = Var::new("x", StructInfo::tensor_ndim(1, DataType::F32));
        let mcast = Expr::MatchCast {
            value: Box::new(x.clone().into()),
            sinfo: StructInfo::tensor(vec![SV::new("m").into()], DataType::F32),
        };
        let out = deduce(&mcast, &m).unwrap();
        assert_eq!(out.tensor_dims().unwrap().len(), 1);
        // Rank conflict can never succeed.
        let bad = Expr::MatchCast {
            value: Box::new(x.into()),
            sinfo: StructInfo::tensor(vec![1.into(), 2.into()], DataType::F32),
        };
        assert!(matches!(
            deduce(&bad, &m),
            Err(DeduceError::ImpossibleMatchCast { .. })
        ));
    }

    #[test]
    fn tuple_projection() {
        let m = IRModule::new();
        let x = Var::new(
            "x",
            StructInfo::tuple(vec![
                StructInfo::tensor(vec![4.into()], DataType::F32),
                StructInfo::Object,
            ]),
        );
        let p0 = Expr::TupleGetItem(Box::new(x.clone().into()), 0);
        assert_eq!(
            deduce(&p0, &m).unwrap(),
            StructInfo::tensor(vec![4.into()], DataType::F32)
        );
        let p9 = Expr::TupleGetItem(Box::new(x.into()), 9);
        assert!(matches!(
            deduce(&p9, &m),
            Err(DeduceError::BadTupleAccess { .. })
        ));
    }

    #[test]
    fn call_tir_uses_declared_annotation() {
        let mut m = IRModule::new();
        let x = relax_tir::Buffer::new("X", vec![1.into()], DataType::F32);
        m.add_tir_func(relax_tir::PrimFunc::new(
            "id",
            vec![x],
            1,
            relax_tir::Stmt::Evaluate,
        ));
        let n = SV::new("n");
        let call = Expr::CallTir {
            func: "id".into(),
            args: vec![],
            out_sinfo: StructInfo::tensor(vec![n.into(), 256.into()], DataType::F16),
            sym_args: vec![],
        };
        let out = deduce(&call, &m).unwrap();
        assert_eq!(out.to_string(), "Tensor((n, 256), \"f16\")");
        let bad = Expr::CallTir {
            func: "missing".into(),
            args: vec![],
            out_sinfo: StructInfo::Object,
            sym_args: vec![],
        };
        assert!(matches!(deduce(&bad, &m), Err(DeduceError::UnknownTir(_))));
    }
}
