//! A parser for the paper-style textual form of Relax functions — the
//! round-trip companion of the pretty printer, playing the role TVMScript
//! plays for the upstream system.
//!
//! The grammar is exactly what the printer emits (Figure 4 style):
//!
//! ```text
//! def main(x: Tensor((n, 128), "f32"), w: Tensor((128, 256), "f32")):
//!   n = sym_var()
//!   with dataflow():
//!     lv0: Tensor((n, 256), "f32") = call_tir(mm, [x, w], Tensor((n, 256), "f32"))
//!     lv1: Tensor((n, 256), "f32") = call_dps_library("cutlass.rms_norm", [lv0], ...)
//!     lv2: Tensor((n, 256), "f32") = relu(lv1)
//!   return lv2
//! ```
//!
//! Symbolic variables are scoped per function: the same name always
//! denotes the same variable, whether it first appears in a parameter
//! annotation, a `sym_var()` declaration, or a shape expression. Constant
//! tensors (`const(...)`) are intentionally not parseable — their payloads
//! do not round-trip through text.

use std::collections::HashMap;
use std::fmt;

use relax_arith::{DataType, PrimExpr, Var as SymVar};

use crate::expr::{Binding, BindingBlock, BlockKind, Expr, Function, OpAttrs, Var};
use crate::module::IRModule;
use crate::op::Op;
use crate::struct_info::{ShapeDesc, StructInfo};

/// Error raised while parsing textual Relax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the failure.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one or more `def` functions, adding them to `module` (which may
/// already hold the tensor programs the text's `call_tir`s reference).
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
///
/// # Examples
///
/// ```
/// use relax_core::{parse_functions, IRModule};
/// let text = r#"
/// def id_fn(x: Tensor((n, 4), "f32")):
///   with dataflow():
///     lv0: Tensor((n, 4), "f32") = relu(x)
///   return lv0
/// "#;
/// let mut module = IRModule::new();
/// parse_functions(text, &mut module)?;
/// assert!(module.function("id_fn").is_some());
/// # Ok::<(), relax_core::ParseError>(())
/// ```
pub fn parse_functions(text: &str, module: &mut IRModule) -> Result<(), ParseError> {
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l))
        .filter(|(_, l)| !l.trim().is_empty())
        .collect();
    let mut i = 0;
    while i < lines.len() {
        let (lineno, line) = lines[i];
        let trimmed = line.trim_start();
        if !trimmed.starts_with("def ") {
            return Err(ParseError {
                line: lineno,
                message: format!("expected `def`, found `{trimmed}`"),
            });
        }
        i = parse_function(&lines, i, module)?;
    }
    Ok(())
}

struct FnCtx {
    sym_vars: HashMap<String, SymVar>,
    vars: HashMap<String, Var>,
}

impl FnCtx {
    fn sym(&mut self, name: &str) -> SymVar {
        self.sym_vars
            .entry(name.to_string())
            .or_insert_with(|| SymVar::new(name))
            .clone()
    }
}

fn parse_function(
    lines: &[(usize, &str)],
    start: usize,
    module: &mut IRModule,
) -> Result<usize, ParseError> {
    let (lineno, header) = lines[start];
    let header = header.trim();
    let err = |line: usize, message: String| ParseError { line, message };

    // def name(params...):
    let rest = header
        .strip_prefix("def ")
        .and_then(|r| r.strip_suffix("):").or_else(|| r.strip_suffix(") :")))
        .ok_or_else(|| err(lineno, "malformed function header".to_string()))?;
    let open = rest
        .find('(')
        .ok_or_else(|| err(lineno, "missing `(` in header".to_string()))?;
    let fname = rest[..open].trim().to_string();
    let params_src = &rest[open + 1..];

    let mut ctx = FnCtx {
        sym_vars: HashMap::new(),
        vars: HashMap::new(),
    };

    let mut params = Vec::new();
    for piece in split_top_level(params_src, ',') {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        let (name, ann) = piece
            .split_once(':')
            .ok_or_else(|| err(lineno, format!("parameter `{piece}` missing annotation")))?;
        let mut p = Cursor::new(ann.trim(), lineno);
        let sinfo = parse_struct_info(&mut p, &mut ctx)?;
        p.expect_end()?;
        let var = Var::new(name.trim(), sinfo);
        ctx.vars.insert(name.trim().to_string(), var.clone());
        params.push(var);
    }

    // Body.
    let mut blocks: Vec<BindingBlock> = Vec::new();
    let mut current: Vec<Binding> = Vec::new();
    let mut current_kind = BlockKind::Binding;
    let mut ret: Option<Expr> = None;
    let mut i = start + 1;
    while i < lines.len() {
        let (ln, raw) = lines[i];
        let line = raw.trim();
        if line.starts_with("def ") {
            break;
        }
        if line.starts_with("return ") {
            let mut p = Cursor::new(line.strip_prefix("return ").expect("prefix"), ln);
            ret = Some(parse_expr(&mut p, &mut ctx, false)?);
            p.expect_end()?;
            i += 1;
            break;
        }
        if line == "with dataflow():" {
            if !current.is_empty() {
                blocks.push(BindingBlock {
                    kind: current_kind,
                    bindings: std::mem::take(&mut current),
                });
            }
            current_kind = BlockKind::Dataflow;
            i += 1;
            continue;
        }
        if line.contains("= sym_var()") || line.ends_with("sym_var()") {
            // `n, m = sym_var(), sym_var()` — declare names.
            let names = line.split('=').next().expect("lhs");
            for name in names.split(',') {
                ctx.sym(name.trim());
            }
            i += 1;
            continue;
        }
        // A binding: `name: SInfo = expr` or `name = expr`.
        let eq = find_top_level(line, '=')
            .ok_or_else(|| err(ln, format!("expected a binding, found `{line}`")))?;
        let (lhs, rhs) = (line[..eq].trim(), line[eq + 1..].trim());
        let (vname, declared) = match lhs.split_once(':') {
            Some((v, ann)) => {
                let mut p = Cursor::new(ann.trim(), ln);
                let sinfo = parse_struct_info(&mut p, &mut ctx)?;
                p.expect_end()?;
                (v.trim(), Some(sinfo))
            }
            None => (lhs, None),
        };
        let mut p = Cursor::new(rhs, ln);
        let value = parse_expr(&mut p, &mut ctx, true)?;
        p.expect_end()?;
        let sinfo = match declared {
            Some(s) => s,
            None => crate::deduce::deduce(&value, module).map_err(|e| ParseError {
                line: ln,
                message: format!("cannot deduce annotation: {e}"),
            })?,
        };
        let var = if current_kind == BlockKind::Dataflow {
            Var::new_dataflow(vname, sinfo)
        } else {
            Var::new(vname, sinfo)
        };
        ctx.vars.insert(vname.to_string(), var.clone());
        current.push(Binding { var, value });
        i += 1;
    }
    if !current.is_empty() {
        blocks.push(BindingBlock {
            kind: current_kind,
            bindings: current,
        });
    }
    let ret = ret.ok_or_else(|| err(lineno, format!("function `{fname}` has no return")))?;
    // Dataflow vars returned from the block must be visible: promote any
    // returned dataflow variable to a regular one.
    let ret_sinfo = crate::deduce::deduce(&ret, module).map_err(|e| ParseError {
        line: lineno,
        message: format!("cannot deduce return annotation: {e}"),
    })?;
    let mut func = Function {
        params,
        blocks,
        ret,
        ret_sinfo,
        attrs: OpAttrs::new(),
    };
    promote_returned_vars(&mut func);
    module.add_function(fname, func);
    Ok(i)
}

/// Returned dataflow vars become regular vars (the printer does not record
/// the output distinction, so the parser restores well-formedness).
fn promote_returned_vars(func: &mut Function) {
    let mut returned = Vec::new();
    func.ret.collect_used_vars(&mut returned);
    let returned: HashMap<u64, Var> = returned
        .into_iter()
        .filter(|v| v.is_dataflow())
        .map(|v| {
            let promoted = Var::new(v.name(), v.struct_info().clone());
            (v.id(), promoted)
        })
        .collect();
    if returned.is_empty() {
        return;
    }
    fn swap(e: &Expr, returned: &HashMap<u64, Var>) -> Expr {
        match e {
            Expr::Var(v) => match returned.get(&v.id()) {
                Some(p) => Expr::Var(p.clone()),
                None => e.clone(),
            },
            Expr::Tuple(items) => Expr::Tuple(
                items
                    .iter()
                    .map(|it| match it {
                        Expr::Var(v) => match returned.get(&v.id()) {
                            Some(p) => Expr::Var(p.clone()),
                            None => it.clone(),
                        },
                        other => other.clone(),
                    })
                    .collect(),
            ),
            other => other.clone(),
        }
    }
    func.ret = swap(&func.ret, &returned);
    for block in &mut func.blocks {
        for binding in &mut block.bindings {
            if let Some(p) = returned.get(&binding.var.id()) {
                binding.var = p.clone();
            }
        }
    }
}

// ---------------------------------------------------------------------
// Cursor / tokenizer utilities.
// ---------------------------------------------------------------------

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str, line: usize) -> Self {
        Cursor { src, pos: 0, line }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.src[self.pos..].starts_with(' ') {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.src[self.pos..].chars().next()
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), ParseError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{token}` at `{}`", &self.src[self.pos..])))
        }
    }

    fn expect_end(&mut self) -> Result<(), ParseError> {
        self.skip_ws();
        if self.pos == self.src.len() {
            Ok(())
        } else {
            Err(self.error(format!("trailing input `{}`", &self.src[self.pos..])))
        }
    }

    fn ident(&mut self) -> Option<&'a str> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        let end = rest
            .char_indices()
            .take_while(|(_, c)| c.is_alphanumeric() || *c == '_' || *c == '.')
            .last()
            .map(|(i, c)| i + c.len_utf8())?;
        let (word, _) = rest.split_at(end);
        self.pos += end;
        Some(word)
    }

    fn integer(&mut self) -> Option<i64> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        let negative = rest.starts_with('-');
        let digits_start = usize::from(negative);
        let len = rest[digits_start..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .count();
        if len == 0 {
            return None;
        }
        let text = &rest[..digits_start + len];
        let value = text.parse().ok()?;
        self.pos += digits_start + len;
        Some(value)
    }

    fn string_lit(&mut self) -> Result<&'a str, ParseError> {
        self.expect("\"")?;
        let rest = &self.src[self.pos..];
        let end = rest
            .find('"')
            .ok_or_else(|| self.error("unterminated string"))?;
        let s = &rest[..end];
        self.pos += end + 1;
        Ok(s)
    }
}

/// Splits at top-level occurrences of `sep` (ignoring nesting in brackets
/// and strings).
fn split_top_level(src: &str, sep: char) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut start = 0;
    for (i, c) in src.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '(' | '[' if !in_str => depth += 1,
            ')' | ']' if !in_str => depth -= 1,
            c if c == sep && depth == 0 && !in_str => {
                parts.push(&src[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&src[start..]);
    parts
}

fn find_top_level(src: &str, needle: char) -> Option<usize> {
    let mut depth = 0i32;
    let mut in_str = false;
    for (i, c) in src.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '(' | '[' if !in_str => depth += 1,
            ')' | ']' if !in_str => depth -= 1,
            c if c == needle && depth == 0 && !in_str => {
                // `==` must not match.
                if needle == '=' {
                    let bytes = src.as_bytes();
                    if (i + 1 < bytes.len() && bytes[i + 1] == b'=')
                        || (i > 0 && bytes[i - 1] == b'=')
                    {
                        continue;
                    }
                }
                return Some(i);
            }
            _ => {}
        }
    }
    None
}

// ---------------------------------------------------------------------
// Symbolic expression parsing (the printer's fully parenthesized form
// plus bare `a + b` style).
// ---------------------------------------------------------------------

fn parse_prim_expr(p: &mut Cursor, ctx: &mut FnCtx) -> Result<PrimExpr, ParseError> {
    parse_additive(p, ctx)
}

fn parse_additive(p: &mut Cursor, ctx: &mut FnCtx) -> Result<PrimExpr, ParseError> {
    let mut lhs = parse_multiplicative(p, ctx)?;
    loop {
        if p.eat("+") {
            let rhs = parse_multiplicative(p, ctx)?;
            lhs = lhs + rhs;
        } else if p.peek() == Some('-') && !p.src[p.pos..].trim_start().starts_with("->") {
            p.expect("-")?;
            let rhs = parse_multiplicative(p, ctx)?;
            lhs = lhs - rhs;
        } else {
            return Ok(lhs);
        }
    }
}

fn parse_multiplicative(p: &mut Cursor, ctx: &mut FnCtx) -> Result<PrimExpr, ParseError> {
    let mut lhs = parse_atom(p, ctx)?;
    loop {
        if p.eat("//") {
            let rhs = parse_atom(p, ctx)?;
            lhs = lhs.floor_div(rhs);
        } else if p.eat("*") {
            let rhs = parse_atom(p, ctx)?;
            lhs = lhs * rhs;
        } else if p.eat("%") {
            let rhs = parse_atom(p, ctx)?;
            lhs = lhs.floor_mod(rhs);
        } else {
            return Ok(lhs);
        }
    }
}

fn parse_atom(p: &mut Cursor, ctx: &mut FnCtx) -> Result<PrimExpr, ParseError> {
    if p.eat("min(") {
        let a = parse_prim_expr(p, ctx)?;
        p.expect(",")?;
        let b = parse_prim_expr(p, ctx)?;
        p.expect(")")?;
        return Ok(a.min(b));
    }
    if p.eat("max(") {
        let a = parse_prim_expr(p, ctx)?;
        p.expect(",")?;
        let b = parse_prim_expr(p, ctx)?;
        p.expect(")")?;
        return Ok(a.max(b));
    }
    if p.eat("(") {
        let inner = parse_prim_expr(p, ctx)?;
        p.expect(")")?;
        return Ok(inner);
    }
    if let Some(v) = p.integer() {
        return Ok(PrimExpr::Int(v));
    }
    // Quoted symbolic names ("n") appear in signature positions.
    if p.peek() == Some('"') {
        let name = p.string_lit()?.to_string();
        let mut inner = Cursor::new(&name, p.line);
        let mut scratch = std::mem::take(&mut ctx.sym_vars);
        // Parse the quoted expression with the same sym-var scope.
        let mut sub_ctx = FnCtx {
            sym_vars: std::mem::take(&mut scratch),
            vars: HashMap::new(),
        };
        let e = parse_prim_expr(&mut inner, &mut sub_ctx)?;
        inner.expect_end()?;
        ctx.sym_vars = sub_ctx.sym_vars;
        return Ok(e);
    }
    let name = p
        .ident()
        .ok_or_else(|| p.error("expected a symbolic expression"))?
        .to_string();
    Ok(PrimExpr::Var(ctx.sym(&name)))
}

// ---------------------------------------------------------------------
// StructInfo parsing.
// ---------------------------------------------------------------------

fn parse_struct_info(p: &mut Cursor, ctx: &mut FnCtx) -> Result<StructInfo, ParseError> {
    if p.eat("Object") {
        return Ok(StructInfo::Object);
    }
    if p.eat("Tensor(") {
        let sinfo = if p.eat("ndim=None") {
            StructInfo::Tensor {
                shape: ShapeDesc::Unknown,
                dtype: None,
            }
        } else if p.eat("ndim=") {
            let n = p.integer().ok_or_else(|| p.error("expected ndim"))? as usize;
            StructInfo::Tensor {
                shape: ShapeDesc::Ndim(n),
                dtype: None,
            }
        } else {
            p.expect("(")?;
            let mut dims = Vec::new();
            while p.peek() != Some(')') {
                dims.push(parse_prim_expr(p, ctx)?);
                if !p.eat(",") {
                    break;
                }
            }
            p.expect(")")?;
            StructInfo::Tensor {
                shape: ShapeDesc::Known(dims),
                dtype: None,
            }
        };
        let dtype = if p.eat(",") {
            if p.eat("dtype=None") {
                None
            } else {
                let s = p.string_lit()?;
                Some(s.parse::<DataType>().map_err(|e| p.error(e.to_string()))?)
            }
        } else {
            None
        };
        p.expect(")")?;
        let StructInfo::Tensor { shape, .. } = sinfo else {
            unreachable!()
        };
        return Ok(StructInfo::Tensor { shape, dtype });
    }
    if p.eat("Shape(ndim=") {
        let n = p.integer().ok_or_else(|| p.error("expected ndim"))? as usize;
        p.expect(")")?;
        return Ok(StructInfo::shape_ndim(n));
    }
    if p.eat("Shape([") {
        let mut dims = Vec::new();
        while p.peek() != Some(']') {
            dims.push(parse_prim_expr(p, ctx)?);
            if !p.eat(",") {
                break;
            }
        }
        p.expect("])")?;
        return Ok(StructInfo::shape(dims));
    }
    if p.eat("Shape") {
        return Ok(StructInfo::Shape(ShapeDesc::Unknown));
    }
    if p.eat("Tuple[") {
        let mut fields = Vec::new();
        while p.peek() != Some(']') {
            fields.push(parse_struct_info(p, ctx)?);
            if !p.eat(",") {
                break;
            }
        }
        p.expect("]")?;
        return Ok(StructInfo::Tuple(fields));
    }
    if p.eat("Callable([") {
        let mut params = Vec::new();
        while p.peek() != Some(']') {
            params.push(parse_struct_info(p, ctx)?);
            if !p.eat(",") {
                break;
            }
        }
        p.expect("]")?;
        p.expect(",")?;
        let ret = parse_struct_info(p, ctx)?;
        p.expect(")")?;
        return Ok(StructInfo::callable(params, ret));
    }
    if p.eat("Prim(") {
        let e = parse_prim_expr(p, ctx)?;
        p.expect(")")?;
        return Ok(StructInfo::Prim(e));
    }
    Err(p.error("expected a structural annotation"))
}

// ---------------------------------------------------------------------
// Expression parsing.
// ---------------------------------------------------------------------

fn parse_expr_list(p: &mut Cursor, ctx: &mut FnCtx, close: char) -> Result<Vec<Expr>, ParseError> {
    let mut items = Vec::new();
    while p.peek() != Some(close) {
        items.push(parse_expr(p, ctx, false)?);
        if !p.eat(",") {
            break;
        }
    }
    Ok(items)
}

fn parse_expr(p: &mut Cursor, ctx: &mut FnCtx, allow_calls: bool) -> Result<Expr, ParseError> {
    // Tuple literal.
    if p.peek() == Some('(') {
        p.expect("(")?;
        let items = parse_expr_list(p, ctx, ')')?;
        p.expect(")")?;
        return Ok(Expr::Tuple(items));
    }
    if p.eat("shape(") {
        let mut dims = Vec::new();
        while p.peek() != Some(')') {
            dims.push(parse_prim_expr(p, ctx)?);
            if !p.eat(",") {
                break;
            }
        }
        p.expect(")")?;
        return Ok(Expr::ShapeValue(dims));
    }
    if p.eat("match_cast(") {
        let value = parse_expr(p, ctx, false)?;
        p.expect(",")?;
        let sinfo = parse_struct_info(p, ctx)?;
        p.expect(")")?;
        return Ok(Expr::MatchCast {
            value: Box::new(value),
            sinfo,
        });
    }
    if p.eat("call_tir(") {
        let func = p
            .ident()
            .ok_or_else(|| p.error("expected tensor program name"))?
            .to_string();
        p.expect(",")?;
        p.expect("[")?;
        let args = parse_expr_list(p, ctx, ']')?;
        p.expect("]")?;
        p.expect(",")?;
        let out_sinfo = parse_struct_info(p, ctx)?;
        let mut sym_args = Vec::new();
        if p.eat(", sym_args=(") {
            while p.peek() != Some(')') {
                sym_args.push(parse_prim_expr(p, ctx)?);
                if !p.eat(",") {
                    break;
                }
            }
            p.expect(")")?;
        }
        p.expect(")")?;
        return Ok(Expr::CallTir {
            func,
            args,
            out_sinfo,
            sym_args,
        });
    }
    if p.eat("call_dps_library(") {
        let func = p.string_lit()?.to_string();
        p.expect(",")?;
        p.expect("[")?;
        let args = parse_expr_list(p, ctx, ']')?;
        p.expect("]")?;
        p.expect(",")?;
        let out_sinfo = parse_struct_info(p, ctx)?;
        p.expect(")")?;
        return Ok(Expr::CallDps {
            func,
            args,
            out_sinfo,
        });
    }
    if p.eat("const(") {
        return Err(
            p.error("constant tensors do not round-trip through text; bind them programmatically")
        );
    }

    let name = p
        .ident()
        .ok_or_else(|| p.error("expected an expression"))?
        .to_string();

    // Call syntax?
    if (allow_calls || p.peek() == Some('(')) && p.eat("(") {
        // Operator or subgraph call; attrs are trailing `k=v` items.
        let mut args = Vec::new();
        let mut attrs = OpAttrs::new();
        while p.peek() != Some(')') {
            // attr?
            let save = p.pos;
            if let Some(key) = p.ident() {
                if p.eat("=") {
                    // The printer armors a value in brackets exactly
                    // when it contains a comma (`axes=[0,2,1,3]`), so a
                    // leading '[' is armor only when a depth-matched ']'
                    // sits right before ',' or ')' with a comma inside.
                    // Anything else — `k=[3]`, an unterminated '[' — is
                    // the value itself, read verbatim up to ',' or ')'.
                    p.skip_ws();
                    let rest = &p.src[p.pos..];
                    let value = match bracket_armor_end(rest) {
                        Some(end) => {
                            let inner = rest[1..end].to_string();
                            p.pos += end + 1;
                            inner
                        }
                        None => {
                            let mut v = String::new();
                            while let Some(c) = p.src[p.pos..].chars().next() {
                                if c == ',' || c == ')' {
                                    break;
                                }
                                v.push(c);
                                p.pos += c.len_utf8();
                            }
                            v
                        }
                    };
                    attrs.insert(key.to_string(), value.trim().to_string());
                    if !p.eat(",") {
                        break;
                    }
                    continue;
                }
                p.pos = save;
            } else {
                p.pos = save;
            }
            args.push(parse_expr(p, ctx, false)?);
            if !p.eat(",") {
                break;
            }
        }
        p.expect(")")?;
        return Ok(match Op::from_short_name(&name) {
            Some(op) => Expr::CallOp { op, args, attrs },
            None => Expr::CallGlobal { func: name, args },
        });
    }

    // Variable reference (with optional tuple projection).
    let var = ctx
        .vars
        .get(&name)
        .cloned()
        .ok_or_else(|| p.error(format!("unknown variable `{name}`")))?;
    let mut expr = Expr::Var(var);
    while p.eat("[") {
        let idx = p.integer().ok_or_else(|| p.error("expected tuple index"))? as usize;
        p.expect("]")?;
        expr = Expr::TupleGetItem(Box::new(expr), idx);
    }
    Ok(expr)
}

/// When `rest` opens with printer bracket armor, returns the byte index
/// of the closing `]`. Armor is recognized exactly where the printer
/// emits it: a leading `[` whose depth-matched `]` encloses a comma and
/// is followed (after spaces) by `,`, `)`, or the end of input. A
/// comma-free `[3]`, an unterminated `[`, or brackets followed by more
/// text are plain value characters, not armor.
fn bracket_armor_end(rest: &str) -> Option<usize> {
    if !rest.starts_with('[') {
        return None;
    }
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    let inner = &rest[1..i];
                    let tail = rest[i + 1..].trim_start_matches(' ');
                    let delimited =
                        tail.is_empty() || tail.starts_with(',') || tail.starts_with(')');
                    return (inner.contains(',') && delimited).then_some(i);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BlockBuilder;

    #[test]
    fn parses_figure4_style_program() {
        let text = r#"
def main(x: Tensor((n, 128), "f32"), w: Tensor((128, 256), "f32")):
  n = sym_var()
  with dataflow():
    lv0: Tensor((n, 256), "f32") = matmul(x, w)
    lv1: Tensor((n, 256), "f32") = relu(lv0)
  return lv1
"#;
        let mut module = IRModule::new();
        parse_functions(text, &mut module).unwrap();
        let f = module.function("main").unwrap();
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.bindings().count(), 2);
        assert!(crate::wellformed::assert_well_formed(&module).is_ok());
        // The `n` in both annotations is the same variable.
        let fv = f.params[0].struct_info().free_symbolic_vars();
        assert_eq!(fv.len(), 1);
        assert_eq!(
            f.ret_sinfo.free_symbolic_vars(),
            fv,
            "return annotation shares the parameter's symbolic variable"
        );
    }

    #[test]
    fn print_parse_round_trip() {
        // Build programmatically, print, parse, print again: fixed point.
        let mut bb = BlockBuilder::new();
        let n = SymVar::new("n");
        let p = bb.begin_function(
            "main",
            vec![(
                "x".into(),
                StructInfo::tensor(vec![n.clone().into(), 2.into(), 2.into()], DataType::F32),
            )],
        );
        bb.begin_dataflow();
        let r = bb
            .emit(Expr::CallOp {
                op: Op::Reshape,
                args: vec![
                    p[0].clone().into(),
                    Expr::ShapeValue(vec![n.into(), 4.into()]),
                ],
                attrs: OpAttrs::new(),
            })
            .unwrap();
        let fl = bb.emit_op(Op::Flatten, &[r]).unwrap();
        let u = bb.emit_op(Op::Unique, &[fl]).unwrap();
        let m = SymVar::new("m");
        let c = bb
            .emit_match_cast(u.into(), StructInfo::tensor(vec![m.into()], DataType::F32))
            .unwrap();
        let out = bb
            .emit_output(Expr::op_call(Op::Exp, vec![c.into()]))
            .unwrap();
        bb.end_dataflow();
        bb.finish_function(out.into(), None).unwrap();
        let module = bb.finish();
        let printed = module.to_string();

        let mut reparsed = IRModule::new();
        parse_functions(&printed, &mut reparsed).unwrap();
        let reprinted = reparsed.to_string();
        assert_eq!(
            printed, reprinted,
            "print -> parse -> print is a fixed point"
        );
    }

    #[test]
    fn parses_call_tir_with_sym_args() {
        let text = r#"
def main(x: Tensor((n, 2), "f32")):
  n = sym_var()
  with dataflow():
    lv0: Tensor(((n * 2),), "f32") = call_tir(flatten, [x], Tensor(((n * 2),), "f32"), sym_args=(n))
  return lv0
"#;
        let mut module = IRModule::new();
        // Provide the tensor program so deduction/well-formedness passes.
        let nn = SymVar::new("n");
        let xb = relax_tir::Buffer::new("X", vec![nn.clone().into(), 2.into()], DataType::F32);
        let ob = relax_tir::Buffer::new("O", vec![(PrimExpr::from(nn) * 2.into())], DataType::F32);
        module.add_tir_func(relax_tir::PrimFunc::new(
            "flatten",
            vec![xb, ob],
            1,
            relax_tir::Stmt::Evaluate,
        ));
        parse_functions(text, &mut module).unwrap();
        let f = module.function("main").unwrap();
        let b = f.bindings().next().unwrap();
        match &b.value {
            Expr::CallTir { func, sym_args, .. } => {
                assert_eq!(func, "flatten");
                assert_eq!(sym_args.len(), 1);
            }
            other => panic!("expected call_tir, got {other:?}"),
        }
        assert!(crate::wellformed::assert_well_formed(&module).is_ok());
    }

    #[test]
    fn attr_values_with_brackets_round_trip() {
        // Printer armor (`axes=[0,2,1,3]`) is stripped, but brackets
        // that belong to the value itself survive verbatim: a comma-free
        // `[3]`, an unterminated `[7` (which must not swallow the `)`),
        // and a native bracketed list `[1,2]` armored as `[[1,2]]`.
        let text = r#"
def main(x: Tensor((4,), "f32")):
  with dataflow():
    lv0: Tensor((4,), "f32") = relu(x, axes=[0,2,1,3], k=[3], open=[7, pads=[[1,2]])
  return lv0
"#;
        let mut module = IRModule::new();
        parse_functions(text, &mut module).unwrap();
        let f = module.function("main").unwrap();
        let b = f.bindings().next().unwrap();
        let attrs = match &b.value {
            Expr::CallOp { attrs, .. } => attrs.clone(),
            other => panic!("expected an op call, got {other:?}"),
        };
        assert_eq!(attrs.get("axes").map(String::as_str), Some("0,2,1,3"));
        assert_eq!(attrs.get("k").map(String::as_str), Some("[3]"));
        assert_eq!(attrs.get("open").map(String::as_str), Some("[7"));
        assert_eq!(attrs.get("pads").map(String::as_str), Some("[1,2]"));

        let printed = module.to_string();
        let mut reparsed = IRModule::new();
        parse_functions(&printed, &mut reparsed).unwrap();
        assert_eq!(
            printed,
            reparsed.to_string(),
            "attr bracket armor must be a print/parse fixed point"
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "def main(x: Banana):\n  return x\n";
        let mut module = IRModule::new();
        let err = parse_functions(text, &mut module).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("annotation"));
    }

    #[test]
    fn unknown_variables_are_rejected() {
        let text = "def main(x: Tensor((4,), \"f32\")):\n  return ghost\n";
        let mut module = IRModule::new();
        let err = parse_functions(text, &mut module).unwrap_err();
        assert!(err.message.contains("unknown variable"));
    }
}
