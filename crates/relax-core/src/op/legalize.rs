//! Legalization: generating loop-level tensor programs for high-level
//! operators.
//!
//! The `LegalizeOps` pass (§4.7) walks every graph-level operator call and
//! replaces it with `call_tir` of a generated [`PrimFunc`]. The generators
//! here specialize every statically known dimension and keep symbolic
//! dimensions (batch size, sequence length) dynamic — the key property the
//! paper relies on ("generate code that specializes to most static
//! dimensions and only uses dynamic dimensions when necessary").

use std::fmt;

use relax_arith::{DataType, PrimExpr, Var};
use relax_tir::{grid, Buffer, MemScope, PrimFunc, Stmt, TirExpr};

use crate::expr::OpAttrs;
use crate::op::{attr_axes, attr_f64_or, attr_i64, InferError, Op};
use crate::struct_info::StructInfo;

/// Error produced while legalizing an operator to a tensor program.
#[derive(Debug, Clone, PartialEq)]
pub enum LegalizeError {
    /// The operator cannot be legalized because an input shape is coarse.
    CoarseShape {
        /// Operator name.
        op: &'static str,
    },
    /// The operator has no tensor-program legalization (e.g. the
    /// data-dependent `unique`, which lowers to a runtime builtin instead).
    Unsupported {
        /// Operator name.
        op: &'static str,
        /// Detail.
        detail: String,
    },
    /// Shape deduction failed while computing the output layout.
    Infer(InferError),
}

impl fmt::Display for LegalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LegalizeError::CoarseShape { op } => {
                write!(f, "{op}: cannot legalize with coarse input shapes")
            }
            LegalizeError::Unsupported { op, detail } => write!(f, "{op}: {detail}"),
            LegalizeError::Infer(e) => write!(f, "legalization failed: {e}"),
        }
    }
}

impl std::error::Error for LegalizeError {}

impl From<InferError> for LegalizeError {
    fn from(e: InferError) -> Self {
        LegalizeError::Infer(e)
    }
}

fn dims_of(op: Op, s: &StructInfo) -> Result<&[PrimExpr], LegalizeError> {
    s.tensor_dims()
        .ok_or(LegalizeError::CoarseShape { op: op.name() })
}

fn dtype_of(s: &StructInfo) -> DataType {
    s.tensor_dtype().unwrap_or(DataType::F32)
}

fn ivs_to_idx(ivs: &[Var]) -> Vec<PrimExpr> {
    ivs.iter().map(|v| PrimExpr::from(v.clone())).collect()
}

fn named_grid(dims: &[PrimExpr]) -> (Vec<Var>, relax_tir::LoopNest) {
    let names: Vec<String> = (0..dims.len()).map(|i| format!("i{i}")).collect();
    let spec: Vec<(&str, PrimExpr)> = names
        .iter()
        .map(String::as_str)
        .zip(dims.iter().cloned())
        .collect();
    grid(&spec)
}

/// Generates the tensor program implementing `op` for the given argument
/// annotations.
///
/// # Errors
///
/// Fails for coarse input shapes, for operators that lower to runtime
/// builtins instead ([`Op::Unique`]), or on inference errors.
pub fn legalize(
    op: Op,
    attrs: &OpAttrs,
    args: &[StructInfo],
    func_name: &str,
) -> Result<PrimFunc, LegalizeError> {
    match op {
        Op::Add | Op::Sub | Op::Mul | Op::Divide | Op::Maximum => {
            legalize_binary(op, attrs, args, func_name)
        }
        Op::Exp
        | Op::Relu
        | Op::Sqrt
        | Op::Neg
        | Op::Sigmoid
        | Op::Silu
        | Op::Gelu
        | Op::Tanh
        | Op::Cast => legalize_unary(op, attrs, args, func_name),
        Op::Matmul => legalize_matmul(op, attrs, args, func_name),
        Op::Reshape | Op::Flatten => legalize_reshape(op, attrs, args, func_name),
        Op::Permute => legalize_permute(op, attrs, args, func_name),
        Op::Concat => legalize_concat(op, attrs, args, func_name),
        Op::Take => legalize_take(op, attrs, args, func_name),
        Op::Sum | Op::Mean => legalize_reduce(op, attrs, args, func_name),
        Op::Softmax => legalize_softmax(op, attrs, args, func_name),
        Op::RmsNorm => legalize_rms_norm(op, attrs, args, func_name),
        Op::LayerNorm => legalize_layer_norm(op, attrs, args, func_name),
        Op::Split => legalize_split(op, attrs, args, func_name),
        Op::Slice => legalize_slice(op, attrs, args, func_name),
        Op::Attention => legalize_attention(op, attrs, args, func_name),
        Op::Unique => Err(LegalizeError::Unsupported {
            op: op.name(),
            detail: "data-dependent output shape; lowered to runtime builtin".to_string(),
        }),
    }
}

fn legalize_binary(
    op: Op,
    attrs: &OpAttrs,
    args: &[StructInfo],
    func_name: &str,
) -> Result<PrimFunc, LegalizeError> {
    let out_sinfo = op.infer(args, attrs)?;
    let out_dims = dims_of(op, &out_sinfo)?.to_vec();
    let a_dims = dims_of(op, &args[0])?.to_vec();
    let b_dims = dims_of(op, &args[1])?.to_vec();
    let a = Buffer::new("A", a_dims.clone(), dtype_of(&args[0]));
    let b = Buffer::new("B", b_dims.clone(), dtype_of(&args[1]));
    let o = Buffer::new("O", out_dims.clone(), dtype_of(&out_sinfo));
    let (ivs, nest) = named_grid(&out_dims);
    let idx = ivs_to_idx(&ivs);
    let a_idx = broadcast_index(&a_dims, &idx);
    let b_idx = broadcast_index(&b_dims, &idx);
    let lhs = TirExpr::load(&a, a_idx);
    let rhs = TirExpr::load(&b, b_idx);
    let value = match op {
        Op::Add => lhs + rhs,
        Op::Sub => lhs - rhs,
        Op::Mul => lhs * rhs,
        Op::Divide => lhs / rhs,
        Op::Maximum => TirExpr::Max(Box::new(lhs), Box::new(rhs)),
        _ => unreachable!("binary legalization dispatch"),
    };
    let body = nest.build(Stmt::store(&o, idx, value));
    Ok(PrimFunc::new(func_name, vec![a, b, o], 1, body))
}

/// Aligns an operand's indices to the output iteration space by suffix
/// broadcasting; size-1 dimensions index at 0.
fn broadcast_index(operand_dims: &[PrimExpr], out_idx: &[PrimExpr]) -> Vec<PrimExpr> {
    let offset = out_idx.len() - operand_dims.len();
    operand_dims
        .iter()
        .enumerate()
        .map(|(i, d)| {
            if d.as_int() == Some(1) {
                PrimExpr::Int(0)
            } else {
                out_idx[offset + i].clone()
            }
        })
        .collect()
}

fn legalize_unary(
    op: Op,
    attrs: &OpAttrs,
    args: &[StructInfo],
    func_name: &str,
) -> Result<PrimFunc, LegalizeError> {
    let out_sinfo = op.infer(args, attrs)?;
    let dims = dims_of(op, &args[0])?.to_vec();
    let x = Buffer::new("X", dims.clone(), dtype_of(&args[0]));
    let o = Buffer::new("O", dims.clone(), dtype_of(&out_sinfo));
    let (ivs, nest) = named_grid(&dims);
    let idx = ivs_to_idx(&ivs);
    let xv = TirExpr::load(&x, idx.clone());
    let value = unary_value(op, attrs, xv);
    let body = nest.build(Stmt::store(&o, idx, value));
    Ok(PrimFunc::new(func_name, vec![x, o], 1, body))
}

fn unary_value(op: Op, attrs: &OpAttrs, x: TirExpr) -> TirExpr {
    match op {
        Op::Exp => TirExpr::Exp(Box::new(x)),
        Op::Relu => TirExpr::Max(Box::new(x), Box::new(TirExpr::FloatImm(0.0))),
        Op::Sqrt => TirExpr::Sqrt(Box::new(x)),
        Op::Neg => TirExpr::Neg(Box::new(x)),
        Op::Sigmoid => TirExpr::Sigmoid(Box::new(x)),
        Op::Tanh => TirExpr::Tanh(Box::new(x)),
        Op::Silu => x.clone() * TirExpr::Sigmoid(Box::new(x)),
        Op::Gelu => {
            // 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3)))
            let x3 = x.clone() * x.clone() * x.clone();
            let inner =
                TirExpr::FloatImm(0.797_884_560_8) * (x.clone() + TirExpr::FloatImm(0.044715) * x3);
            TirExpr::FloatImm(0.5) * x * (TirExpr::FloatImm(1.0) + TirExpr::Tanh(Box::new(inner)))
        }
        Op::Cast => {
            let dt = attrs
                .get("dtype")
                .and_then(|v| v.parse().ok())
                .unwrap_or(DataType::F32);
            TirExpr::Cast(dt, Box::new(x))
        }
        _ => unreachable!("unary legalization dispatch"),
    }
}

fn legalize_matmul(
    op: Op,
    attrs: &OpAttrs,
    args: &[StructInfo],
    func_name: &str,
) -> Result<PrimFunc, LegalizeError> {
    let out_sinfo = op.infer(args, attrs)?;
    let out_dims = dims_of(op, &out_sinfo)?.to_vec();
    let a_dims = dims_of(op, &args[0])?.to_vec();
    let b_dims = dims_of(op, &args[1])?.to_vec();
    let k = a_dims.last().expect("rank checked by infer").clone();
    let a = Buffer::new("X", a_dims.clone(), dtype_of(&args[0]));
    let b = Buffer::new("W", b_dims.clone(), dtype_of(&args[1]));
    let o = Buffer::new("Y", out_dims.clone(), dtype_of(&out_sinfo));

    // Loops: all output dims, then the reduction dim.
    let mut loop_dims = out_dims.clone();
    loop_dims.push(k);
    let (ivs, nest) = named_grid(&loop_dims);
    let out_idx = ivs_to_idx(&ivs[..out_dims.len()]);
    let kv = PrimExpr::from(ivs[out_dims.len()].clone());

    // a index: batch dims + [i, k]
    let mut a_idx = out_idx[..out_dims.len() - 1].to_vec();
    a_idx.push(kv.clone());
    // b index: 2-D ([k, j]) or batched ([batch.., k, j]).
    let b_idx = if b_dims.len() == 2 {
        vec![kv.clone(), out_idx[out_dims.len() - 1].clone()]
    } else {
        let mut idx = out_idx[..out_dims.len() - 2].to_vec();
        idx.push(kv.clone());
        idx.push(out_idx[out_dims.len() - 1].clone());
        idx
    };

    let init = Stmt::IfEq {
        lhs: kv,
        rhs: 0.into(),
        then: Box::new(Stmt::store(&o, out_idx.clone(), TirExpr::FloatImm(0.0))),
    };
    let update = Stmt::store(
        &o,
        out_idx.clone(),
        TirExpr::load(&o, out_idx) + TirExpr::load(&a, a_idx) * TirExpr::load(&b, b_idx),
    );
    let body = nest.build(Stmt::seq(vec![init, update]));
    Ok(PrimFunc::new(func_name, vec![a, b, o], 1, body))
}

fn legalize_reshape(
    op: Op,
    attrs: &OpAttrs,
    args: &[StructInfo],
    func_name: &str,
) -> Result<PrimFunc, LegalizeError> {
    let out_sinfo = op.infer(args, attrs)?;
    let out_dims = dims_of(op, &out_sinfo)?.to_vec();
    let in_dims = dims_of(op, &args[0])?.to_vec();
    let x = Buffer::new("X", in_dims.clone(), dtype_of(&args[0]));
    let o = Buffer::new("O", out_dims.clone(), dtype_of(&out_sinfo));
    let (ivs, nest) = named_grid(&out_dims);
    let out_idx = ivs_to_idx(&ivs);
    // Linearize the output index, then delinearize into the input space.
    let mut linear = PrimExpr::Int(0);
    for (iv, d) in out_idx.iter().zip(&out_dims) {
        linear = linear * d.clone() + iv.clone();
    }
    let mut in_idx = vec![PrimExpr::Int(0); in_dims.len()];
    let mut rem = linear;
    for i in (0..in_dims.len()).rev() {
        if i == 0 {
            in_idx[0] = rem.clone();
        } else {
            in_idx[i] = rem.clone().floor_mod(in_dims[i].clone());
            rem = rem.floor_div(in_dims[i].clone());
        }
    }
    let body = nest.build(Stmt::store(&o, out_idx, TirExpr::load(&x, in_idx)));
    Ok(PrimFunc::new(func_name, vec![x, o], 1, body))
}

fn legalize_permute(
    op: Op,
    attrs: &OpAttrs,
    args: &[StructInfo],
    func_name: &str,
) -> Result<PrimFunc, LegalizeError> {
    let out_sinfo = op.infer(args, attrs)?;
    let out_dims = dims_of(op, &out_sinfo)?.to_vec();
    let in_dims = dims_of(op, &args[0])?.to_vec();
    let axes = attr_axes(op, attrs, "axes", in_dims.len())?;
    let x = Buffer::new("X", in_dims.clone(), dtype_of(&args[0]));
    let o = Buffer::new("O", out_dims.clone(), dtype_of(&out_sinfo));
    let (ivs, nest) = named_grid(&out_dims);
    let out_idx = ivs_to_idx(&ivs);
    let mut in_idx = vec![PrimExpr::Int(0); in_dims.len()];
    for (j, &src_axis) in axes.iter().enumerate() {
        in_idx[src_axis] = out_idx[j].clone();
    }
    let body = nest.build(Stmt::store(&o, out_idx, TirExpr::load(&x, in_idx)));
    Ok(PrimFunc::new(func_name, vec![x, o], 1, body))
}

fn legalize_concat(
    op: Op,
    attrs: &OpAttrs,
    args: &[StructInfo],
    func_name: &str,
) -> Result<PrimFunc, LegalizeError> {
    let out_sinfo = op.infer(args, attrs)?;
    let out_dims = dims_of(op, &out_sinfo)?.to_vec();
    let axis = attr_i64(op, attrs, "axis")? as usize;
    let o = Buffer::new("O", out_dims, dtype_of(&out_sinfo));
    let mut params = Vec::new();
    let mut parts = Vec::new();
    let mut offset = PrimExpr::Int(0);
    for (t, arg) in args.iter().enumerate() {
        let dims = dims_of(op, arg)?.to_vec();
        let buf = Buffer::new(format!("X{t}"), dims.clone(), dtype_of(arg));
        let (ivs, nest) = named_grid(&dims);
        let in_idx = ivs_to_idx(&ivs);
        let mut out_idx = in_idx.clone();
        out_idx[axis] = out_idx[axis].clone() + offset.clone();
        parts.push(nest.build(Stmt::store(&o, out_idx, TirExpr::load(&buf, in_idx))));
        offset = offset + dims[axis].clone();
        params.push(buf);
    }
    params.push(o);
    Ok(PrimFunc::new(func_name, params, 1, Stmt::seq(parts)))
}

fn legalize_take(
    op: Op,
    attrs: &OpAttrs,
    args: &[StructInfo],
    func_name: &str,
) -> Result<PrimFunc, LegalizeError> {
    let out_sinfo = op.infer(args, attrs)?;
    let out_dims = dims_of(op, &out_sinfo)?.to_vec();
    let table_dims = dims_of(op, &args[0])?.to_vec();
    let idx_dims = dims_of(op, &args[1])?.to_vec();
    let table = Buffer::new("T", table_dims.clone(), dtype_of(&args[0]));
    let indices = Buffer::new("I", idx_dims.clone(), dtype_of(&args[1]));
    let o = Buffer::new("O", out_dims.clone(), dtype_of(&out_sinfo));
    let (ivs, nest) = named_grid(&out_dims);
    let out_idx = ivs_to_idx(&ivs);
    let gather = TirExpr::load(&indices, out_idx[..idx_dims.len()].to_vec());
    let mut dyn_idx: Vec<TirExpr> = vec![gather];
    for iv in &out_idx[idx_dims.len()..] {
        dyn_idx.push(TirExpr::Index(iv.clone()));
    }
    let body = nest.build(Stmt::store(
        &o,
        out_idx,
        TirExpr::LoadDyn(table.clone(), dyn_idx),
    ));
    Ok(PrimFunc::new(func_name, vec![table, indices, o], 1, body))
}

fn legalize_reduce(
    op: Op,
    attrs: &OpAttrs,
    args: &[StructInfo],
    func_name: &str,
) -> Result<PrimFunc, LegalizeError> {
    let out_sinfo = op.infer(args, attrs)?;
    let out_dims = dims_of(op, &out_sinfo)?.to_vec();
    let in_dims = dims_of(op, &args[0])?.to_vec();
    let axis = attr_i64(op, attrs, "axis")? as usize;
    let x = Buffer::new("X", in_dims.clone(), dtype_of(&args[0]));
    let o = Buffer::new("O", out_dims.clone(), dtype_of(&out_sinfo));
    let mut loop_dims = out_dims.clone();
    loop_dims.push(in_dims[axis].clone());
    let (ivs, nest) = named_grid(&loop_dims);
    let out_idx = ivs_to_idx(&ivs[..out_dims.len()]);
    let kv = PrimExpr::from(ivs[out_dims.len()].clone());
    let mut in_idx = out_idx.clone();
    in_idx.insert(axis, kv.clone());
    let mut term = TirExpr::load(&x, in_idx);
    if op == Op::Mean {
        term = term
            / TirExpr::Cast(
                DataType::F32,
                Box::new(TirExpr::Index(in_dims[axis].clone())),
            );
    }
    let init = Stmt::IfEq {
        lhs: kv,
        rhs: 0.into(),
        then: Box::new(Stmt::store(&o, out_idx.clone(), TirExpr::FloatImm(0.0))),
    };
    let update = Stmt::store(&o, out_idx.clone(), TirExpr::load(&o, out_idx) + term);
    let body = nest.build(Stmt::seq(vec![init, update]));
    Ok(PrimFunc::new(func_name, vec![x, o], 1, body))
}

fn legalize_softmax(
    op: Op,
    attrs: &OpAttrs,
    args: &[StructInfo],
    func_name: &str,
) -> Result<PrimFunc, LegalizeError> {
    let _ = op.infer(args, attrs)?;
    let dims = dims_of(op, &args[0])?.to_vec();
    let dt = dtype_of(&args[0]);
    let x = Buffer::new("X", dims.clone(), dt);
    let o = Buffer::new("O", dims.clone(), dt);
    let outer = dims[..dims.len() - 1].to_vec();
    let d = dims[dims.len() - 1].clone();
    let mbuf = Buffer::with_scope("row_max", outer.clone(), DataType::F32, MemScope::Local);
    let sbuf = Buffer::with_scope("row_sum", outer.clone(), DataType::F32, MemScope::Local);

    let mut loop_dims = outer.clone();
    loop_dims.push(d);

    // Pass 1: running maximum.
    let (iv1, nest1) = named_grid(&loop_dims);
    let o_idx1 = ivs_to_idx(&iv1[..outer.len()]);
    let k1 = PrimExpr::from(iv1[outer.len()].clone());
    let full1 = {
        let mut v = o_idx1.clone();
        v.push(k1.clone());
        v
    };
    let pass1 = nest1.build(Stmt::seq(vec![
        Stmt::IfEq {
            lhs: k1.clone(),
            rhs: 0.into(),
            then: Box::new(Stmt::store(
                &mbuf,
                o_idx1.clone(),
                TirExpr::FloatImm(f64::NEG_INFINITY),
            )),
        },
        Stmt::store(
            &mbuf,
            o_idx1.clone(),
            TirExpr::Max(
                Box::new(TirExpr::load(&mbuf, o_idx1.clone())),
                Box::new(TirExpr::load(&x, full1)),
            ),
        ),
    ]));

    // Pass 2: exponential sum.
    let (iv2, nest2) = named_grid(&loop_dims);
    let o_idx2 = ivs_to_idx(&iv2[..outer.len()]);
    let k2 = PrimExpr::from(iv2[outer.len()].clone());
    let full2 = {
        let mut v = o_idx2.clone();
        v.push(k2.clone());
        v
    };
    let pass2 = nest2.build(Stmt::seq(vec![
        Stmt::IfEq {
            lhs: k2.clone(),
            rhs: 0.into(),
            then: Box::new(Stmt::store(&sbuf, o_idx2.clone(), TirExpr::FloatImm(0.0))),
        },
        Stmt::store(
            &sbuf,
            o_idx2.clone(),
            TirExpr::load(&sbuf, o_idx2.clone())
                + TirExpr::Exp(Box::new(
                    TirExpr::load(&x, full2) - TirExpr::load(&mbuf, o_idx2.clone()),
                )),
        ),
    ]));

    // Pass 3: normalize.
    let (iv3, nest3) = named_grid(&loop_dims);
    let o_idx3 = ivs_to_idx(&iv3[..outer.len()]);
    let k3 = PrimExpr::from(iv3[outer.len()].clone());
    let full3 = {
        let mut v = o_idx3.clone();
        v.push(k3);
        v
    };
    let pass3 = nest3.build(Stmt::store(
        &o,
        full3.clone(),
        TirExpr::Exp(Box::new(
            TirExpr::load(&x, full3) - TirExpr::load(&mbuf, o_idx3.clone()),
        )) / TirExpr::load(&sbuf, o_idx3),
    ));

    let body = Stmt::Alloc {
        buffer: mbuf,
        body: Box::new(Stmt::Alloc {
            buffer: sbuf,
            body: Box::new(Stmt::seq(vec![pass1, pass2, pass3])),
        }),
    };
    Ok(PrimFunc::new(func_name, vec![x, o], 1, body))
}

fn legalize_rms_norm(
    op: Op,
    attrs: &OpAttrs,
    args: &[StructInfo],
    func_name: &str,
) -> Result<PrimFunc, LegalizeError> {
    let _ = op.infer(args, attrs)?;
    let dims = dims_of(op, &args[0])?.to_vec();
    let w_dims = dims_of(op, &args[1])?.to_vec();
    let dt = dtype_of(&args[0]);
    let eps = attr_f64_or(attrs, "eps", 1e-5);
    let x = Buffer::new("X", dims.clone(), dt);
    let w = Buffer::new("W", w_dims, dt);
    let o = Buffer::new("O", dims.clone(), dt);
    let outer = dims[..dims.len() - 1].to_vec();
    let d = dims[dims.len() - 1].clone();
    let ss = Buffer::with_scope("sq_sum", outer.clone(), DataType::F32, MemScope::Local);

    let mut loop_dims = outer.clone();
    loop_dims.push(d.clone());

    let (iv1, nest1) = named_grid(&loop_dims);
    let o_idx1 = ivs_to_idx(&iv1[..outer.len()]);
    let k1 = PrimExpr::from(iv1[outer.len()].clone());
    let full1 = {
        let mut v = o_idx1.clone();
        v.push(k1.clone());
        v
    };
    let xv = TirExpr::load(&x, full1);
    let accumulate = nest1.build(Stmt::seq(vec![
        Stmt::IfEq {
            lhs: k1,
            rhs: 0.into(),
            then: Box::new(Stmt::store(&ss, o_idx1.clone(), TirExpr::FloatImm(0.0))),
        },
        Stmt::store(
            &ss,
            o_idx1.clone(),
            TirExpr::load(&ss, o_idx1) + xv.clone() * xv,
        ),
    ]));

    let (iv2, nest2) = named_grid(&loop_dims);
    let o_idx2 = ivs_to_idx(&iv2[..outer.len()]);
    let k2 = PrimExpr::from(iv2[outer.len()].clone());
    let full2 = {
        let mut v = o_idx2.clone();
        v.push(k2.clone());
        v
    };
    let mean_sq =
        TirExpr::load(&ss, o_idx2) / TirExpr::Cast(DataType::F32, Box::new(TirExpr::Index(d)));
    let normalize = nest2.build(Stmt::store(
        &o,
        full2.clone(),
        TirExpr::load(&x, full2) * TirExpr::load(&w, vec![k2])
            / TirExpr::Sqrt(Box::new(mean_sq + TirExpr::FloatImm(eps))),
    ));

    let body = Stmt::Alloc {
        buffer: ss,
        body: Box::new(Stmt::seq(vec![accumulate, normalize])),
    };
    Ok(PrimFunc::new(func_name, vec![x, w, o], 1, body))
}

fn legalize_layer_norm(
    op: Op,
    attrs: &OpAttrs,
    args: &[StructInfo],
    func_name: &str,
) -> Result<PrimFunc, LegalizeError> {
    let _ = op.infer(args, attrs)?;
    let dims = dims_of(op, &args[0])?.to_vec();
    let dt = dtype_of(&args[0]);
    let eps = attr_f64_or(attrs, "eps", 1e-5);
    let x = Buffer::new("X", dims.clone(), dt);
    let gamma = Buffer::new("G", vec![dims[dims.len() - 1].clone()], dt);
    let beta = Buffer::new("B", vec![dims[dims.len() - 1].clone()], dt);
    let o = Buffer::new("O", dims.clone(), dt);
    let outer = dims[..dims.len() - 1].to_vec();
    let d = dims[dims.len() - 1].clone();
    let mean = Buffer::with_scope("mean", outer.clone(), DataType::F32, MemScope::Local);
    let var = Buffer::with_scope("var", outer.clone(), DataType::F32, MemScope::Local);

    let mut loop_dims = outer.clone();
    loop_dims.push(d.clone());
    let inv_d = |e: TirExpr, d: &PrimExpr| {
        e / TirExpr::Cast(DataType::F32, Box::new(TirExpr::Index(d.clone())))
    };

    // Pass 1: mean.
    let (iv1, nest1) = named_grid(&loop_dims);
    let o1 = ivs_to_idx(&iv1[..outer.len()]);
    let k1 = PrimExpr::from(iv1[outer.len()].clone());
    let full1 = {
        let mut v = o1.clone();
        v.push(k1.clone());
        v
    };
    let pass1 = nest1.build(Stmt::seq(vec![
        Stmt::IfEq {
            lhs: k1,
            rhs: 0.into(),
            then: Box::new(Stmt::store(&mean, o1.clone(), TirExpr::FloatImm(0.0))),
        },
        Stmt::store(
            &mean,
            o1.clone(),
            TirExpr::load(&mean, o1.clone()) + inv_d(TirExpr::load(&x, full1), &d),
        ),
    ]));

    // Pass 2: variance.
    let (iv2, nest2) = named_grid(&loop_dims);
    let o2 = ivs_to_idx(&iv2[..outer.len()]);
    let k2 = PrimExpr::from(iv2[outer.len()].clone());
    let full2 = {
        let mut v = o2.clone();
        v.push(k2.clone());
        v
    };
    let centered = TirExpr::load(&x, full2) - TirExpr::load(&mean, o2.clone());
    let pass2 = nest2.build(Stmt::seq(vec![
        Stmt::IfEq {
            lhs: k2,
            rhs: 0.into(),
            then: Box::new(Stmt::store(&var, o2.clone(), TirExpr::FloatImm(0.0))),
        },
        Stmt::store(
            &var,
            o2.clone(),
            TirExpr::load(&var, o2.clone()) + inv_d(centered.clone() * centered, &d),
        ),
    ]));

    // Pass 3: normalize + affine.
    let (iv3, nest3) = named_grid(&loop_dims);
    let o3 = ivs_to_idx(&iv3[..outer.len()]);
    let k3 = PrimExpr::from(iv3[outer.len()].clone());
    let full3 = {
        let mut v = o3.clone();
        v.push(k3.clone());
        v
    };
    let norm = (TirExpr::load(&x, full3.clone()) - TirExpr::load(&mean, o3.clone()))
        / TirExpr::Sqrt(Box::new(TirExpr::load(&var, o3) + TirExpr::FloatImm(eps)));
    let pass3 = nest3.build(Stmt::store(
        &o,
        full3,
        norm * TirExpr::load(&gamma, vec![k3.clone()]) + TirExpr::load(&beta, vec![k3]),
    ));

    let body = Stmt::Alloc {
        buffer: mean,
        body: Box::new(Stmt::Alloc {
            buffer: var,
            body: Box::new(Stmt::seq(vec![pass1, pass2, pass3])),
        }),
    };
    Ok(PrimFunc::new(func_name, vec![x, gamma, beta, o], 1, body))
}

fn legalize_split(
    op: Op,
    attrs: &OpAttrs,
    args: &[StructInfo],
    func_name: &str,
) -> Result<PrimFunc, LegalizeError> {
    let out_sinfo = op.infer(args, attrs)?;
    let StructInfo::Tuple(fields) = &out_sinfo else {
        unreachable!("split infers a tuple");
    };
    let in_dims = dims_of(op, &args[0])?.to_vec();
    let dt = dtype_of(&args[0]);
    let axis = attr_i64(op, attrs, "axis")? as usize;
    let x = Buffer::new("X", in_dims, dt);
    let mut params = vec![x.clone()];
    let mut parts = Vec::new();
    for (s, field) in fields.iter().enumerate() {
        let fdims = field
            .tensor_dims()
            .ok_or(LegalizeError::CoarseShape { op: op.name() })?
            .to_vec();
        let out = Buffer::new(format!("O{s}"), fdims.clone(), dt);
        let (ivs, nest) = named_grid(&fdims);
        let out_idx = ivs_to_idx(&ivs);
        let mut in_idx = out_idx.clone();
        in_idx[axis] = in_idx[axis].clone() + fdims[axis].clone() * PrimExpr::Int(s as i64);
        parts.push(nest.build(Stmt::store(&out, out_idx, TirExpr::load(&x, in_idx))));
        params.push(out);
    }
    let num_outputs = fields.len();
    Ok(PrimFunc::new(
        func_name,
        params,
        num_outputs,
        Stmt::seq(parts),
    ))
}

fn legalize_slice(
    op: Op,
    attrs: &OpAttrs,
    args: &[StructInfo],
    func_name: &str,
) -> Result<PrimFunc, LegalizeError> {
    let out_sinfo = op.infer(args, attrs)?;
    let out_dims = dims_of(op, &out_sinfo)?.to_vec();
    let in_dims = dims_of(op, &args[0])?.to_vec();
    let dt = dtype_of(&args[0]);
    let axis = attr_i64(op, attrs, "axis")? as usize;
    let begin = attr_i64(op, attrs, "begin")?;
    let x = Buffer::new("X", in_dims, dt);
    let o = Buffer::new("O", out_dims.clone(), dt);
    let (ivs, nest) = named_grid(&out_dims);
    let out_idx = ivs_to_idx(&ivs);
    let mut in_idx = out_idx.clone();
    in_idx[axis] = in_idx[axis].clone() + PrimExpr::Int(begin);
    let body = nest.build(Stmt::store(&o, out_idx, TirExpr::load(&x, in_idx)));
    Ok(PrimFunc::new(func_name, vec![x, o], 1, body))
}

fn legalize_attention(
    op: Op,
    attrs: &OpAttrs,
    args: &[StructInfo],
    func_name: &str,
) -> Result<PrimFunc, LegalizeError> {
    let _ = op.infer(args, attrs)?;
    let q_dims = dims_of(op, &args[0])?.to_vec();
    let k_dims = dims_of(op, &args[1])?.to_vec();
    let dt = dtype_of(&args[0]);
    let scale = attr_f64_or(attrs, "scale", 1.0);
    let causal = attrs.get("causal").map(String::as_str) == Some("true");

    let (b, h, s, d) = (
        q_dims[0].clone(),
        q_dims[1].clone(),
        q_dims[2].clone(),
        q_dims[3].clone(),
    );
    let skv = k_dims[2].clone();
    // Grouped-query attention: query head h reads kv head h // group.
    let group: i64 = match (q_dims[1].as_int(), k_dims[1].as_int()) {
        (Some(hq), Some(hkv)) if hkv > 0 => hq / hkv,
        _ => 1,
    };
    let kv_head = |h: PrimExpr| -> PrimExpr {
        if group == 1 {
            h
        } else {
            h.floor_div(group.into())
        }
    };

    let q = Buffer::new("Q", q_dims.clone(), dt);
    let k = Buffer::new("K", k_dims.clone(), dt);
    let v = Buffer::new("V", k_dims.clone(), dt);
    let o = Buffer::new("O", q_dims.clone(), dt);
    let scores = Buffer::with_scope(
        "scores",
        vec![b.clone(), h.clone(), s.clone(), skv.clone()],
        DataType::F32,
        MemScope::Local,
    );
    let mbuf = Buffer::with_scope(
        "row_max",
        vec![b.clone(), h.clone(), s.clone()],
        DataType::F32,
        MemScope::Local,
    );
    let sbuf = Buffer::with_scope(
        "row_sum",
        vec![b.clone(), h.clone(), s.clone()],
        DataType::F32,
        MemScope::Local,
    );

    // Pass 1: scores[b,h,i,j] = scale * sum_kd q·k (+ causal mask)
    let (iv1, nest1) = grid(&[
        ("b", b.clone()),
        ("h", h.clone()),
        ("i", s.clone()),
        ("j", skv.clone()),
        ("kd", d.clone()),
    ]);
    let (bv, hv, i1, j1, kd) = (
        PrimExpr::from(iv1[0].clone()),
        PrimExpr::from(iv1[1].clone()),
        PrimExpr::from(iv1[2].clone()),
        PrimExpr::from(iv1[3].clone()),
        PrimExpr::from(iv1[4].clone()),
    );
    let sc_idx1 = vec![bv.clone(), hv.clone(), i1.clone(), j1.clone()];
    let pass1 = nest1.build(Stmt::seq(vec![
        Stmt::IfEq {
            lhs: kd.clone(),
            rhs: 0.into(),
            then: Box::new(Stmt::store(
                &scores,
                sc_idx1.clone(),
                TirExpr::FloatImm(0.0),
            )),
        },
        Stmt::store(
            &scores,
            sc_idx1.clone(),
            TirExpr::load(&scores, sc_idx1.clone())
                + TirExpr::load(&q, vec![bv.clone(), hv.clone(), i1.clone(), kd.clone()])
                    * TirExpr::load(&k, vec![bv, kv_head(hv), j1, kd]),
        ),
    ]));

    // Pass 2: scale + causal mask.
    let (iv2, nest2) = grid(&[
        ("b", b.clone()),
        ("h", h.clone()),
        ("i", s.clone()),
        ("j", skv.clone()),
    ]);
    let sc_idx2: Vec<PrimExpr> = ivs_to_idx(&iv2);
    let scaled = TirExpr::load(&scores, sc_idx2.clone()) * TirExpr::FloatImm(scale);
    let masked = if causal {
        // Allowed when j <= i + (skv - s); queries align to the cache tail.
        let i = sc_idx2[2].clone();
        let j = sc_idx2[3].clone();
        TirExpr::Select(
            Box::new(TirExpr::IndexLe(j, i + skv.clone() - s.clone())),
            Box::new(scaled.clone()),
            Box::new(TirExpr::FloatImm(-1e9)),
        )
    } else {
        scaled
    };
    let pass2 = nest2.build(Stmt::store(&scores, sc_idx2, masked));

    // Pass 3-4: softmax statistics over j.
    let (iv3, nest3) = grid(&[
        ("b", b.clone()),
        ("h", h.clone()),
        ("i", s.clone()),
        ("j", skv.clone()),
    ]);
    let row3 = ivs_to_idx(&iv3[..3]);
    let j3 = PrimExpr::from(iv3[3].clone());
    let full3 = {
        let mut x = row3.clone();
        x.push(j3.clone());
        x
    };
    let pass3 = nest3.build(Stmt::seq(vec![
        Stmt::IfEq {
            lhs: j3.clone(),
            rhs: 0.into(),
            then: Box::new(Stmt::store(
                &mbuf,
                row3.clone(),
                TirExpr::FloatImm(f64::NEG_INFINITY),
            )),
        },
        Stmt::store(
            &mbuf,
            row3.clone(),
            TirExpr::Max(
                Box::new(TirExpr::load(&mbuf, row3.clone())),
                Box::new(TirExpr::load(&scores, full3)),
            ),
        ),
    ]));
    let (iv4, nest4) = grid(&[
        ("b", b.clone()),
        ("h", h.clone()),
        ("i", s.clone()),
        ("j", skv.clone()),
    ]);
    let row4 = ivs_to_idx(&iv4[..3]);
    let j4 = PrimExpr::from(iv4[3].clone());
    let full4 = {
        let mut x = row4.clone();
        x.push(j4.clone());
        x
    };
    let pass4 = nest4.build(Stmt::seq(vec![
        Stmt::IfEq {
            lhs: j4.clone(),
            rhs: 0.into(),
            then: Box::new(Stmt::store(&sbuf, row4.clone(), TirExpr::FloatImm(0.0))),
        },
        Stmt::store(
            &sbuf,
            row4.clone(),
            TirExpr::load(&sbuf, row4.clone())
                + TirExpr::Exp(Box::new(
                    TirExpr::load(&scores, full4) - TirExpr::load(&mbuf, row4.clone()),
                )),
        ),
    ]));

    // Pass 5: weighted sum over v.
    let (iv5, nest5) = grid(&[("b", b), ("h", h), ("i", s), ("kd", d), ("j", skv)]);
    let (b5, h5, i5, kd5, j5) = (
        PrimExpr::from(iv5[0].clone()),
        PrimExpr::from(iv5[1].clone()),
        PrimExpr::from(iv5[2].clone()),
        PrimExpr::from(iv5[3].clone()),
        PrimExpr::from(iv5[4].clone()),
    );
    let out_idx = vec![b5.clone(), h5.clone(), i5.clone(), kd5.clone()];
    let row5 = vec![b5.clone(), h5.clone(), i5.clone()];
    let weight = TirExpr::Exp(Box::new(
        TirExpr::load(&scores, vec![b5.clone(), h5.clone(), i5, j5.clone()])
            - TirExpr::load(&mbuf, row5.clone()),
    )) / TirExpr::load(&sbuf, row5);
    let pass5 = nest5.build(Stmt::seq(vec![
        Stmt::IfEq {
            lhs: j5.clone(),
            rhs: 0.into(),
            then: Box::new(Stmt::store(&o, out_idx.clone(), TirExpr::FloatImm(0.0))),
        },
        Stmt::store(
            &o,
            out_idx.clone(),
            TirExpr::load(&o, out_idx) + weight * TirExpr::load(&v, vec![b5, kv_head(h5), j5, kd5]),
        ),
    ]));

    let body = Stmt::Alloc {
        buffer: scores,
        body: Box::new(Stmt::Alloc {
            buffer: mbuf,
            body: Box::new(Stmt::Alloc {
                buffer: sbuf,
                body: Box::new(Stmt::seq(vec![pass1, pass2, pass3, pass4, pass5])),
            }),
        }),
    };
    Ok(PrimFunc::new(func_name, vec![q, k, v, o], 1, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relax_arith::DataType;
    use relax_tir::{analysis, interp, NDArray};

    fn t32(dims: Vec<PrimExpr>) -> StructInfo {
        StructInfo::tensor(dims, DataType::F32)
    }

    #[test]
    fn binary_add_executes() {
        let n = Var::new("n");
        let f = legalize(
            Op::Add,
            &OpAttrs::new(),
            &[t32(vec![n.clone().into()]), t32(vec![n.into()])],
            "add",
        )
        .unwrap();
        let a = NDArray::from_f64(&[3], DataType::F32, vec![1., 2., 3.]).unwrap();
        let b = NDArray::from_f64(&[3], DataType::F32, vec![10., 20., 30.]).unwrap();
        let o = NDArray::zeros(&[3], DataType::F32);
        interp::run(&f, &[a, b, o.clone()]).unwrap();
        assert_eq!(o.to_f64_vec(), vec![11., 22., 33.]);
        assert_eq!(
            analysis::pattern_kind(&f),
            analysis::PatternKind::ElementWise
        );
    }

    #[test]
    fn bias_broadcast_executes() {
        let n = Var::new("n");
        let f = legalize(
            Op::Add,
            &OpAttrs::new(),
            &[t32(vec![n.into(), 2.into()]), t32(vec![2.into()])],
            "add_bias",
        )
        .unwrap();
        let a = NDArray::from_f64(&[2, 2], DataType::F32, vec![0., 1., 2., 3.]).unwrap();
        let b = NDArray::from_f64(&[2], DataType::F32, vec![10., 20.]).unwrap();
        let o = NDArray::zeros(&[2, 2], DataType::F32);
        interp::run(&f, &[a, b, o.clone()]).unwrap();
        assert_eq!(o.to_f64_vec(), vec![10., 21., 12., 23.]);
    }

    #[test]
    fn matmul_legalization_is_fma_fusible() {
        let n = Var::new("n");
        let f = legalize(
            Op::Matmul,
            &OpAttrs::new(),
            &[t32(vec![n.into(), 4.into()]), t32(vec![4.into(), 2.into()])],
            "mm",
        )
        .unwrap();
        assert_eq!(
            analysis::pattern_kind(&f),
            analysis::PatternKind::OutputEwiseFusible
        );
        let a = NDArray::from_f64(&[1, 4], DataType::F32, vec![1., 2., 3., 4.]).unwrap();
        let b = NDArray::from_f64(&[4, 2], DataType::F32, (0..8).map(f64::from).collect()).unwrap();
        let o = NDArray::zeros(&[1, 2], DataType::F32);
        interp::run(&f, &[a, b, o.clone()]).unwrap();
        assert_eq!(o.to_f64_vec(), vec![40., 50.]);
    }

    #[test]
    fn reshape_flatten_round_trip() {
        let n = Var::new("n");
        let f = legalize(
            Op::Reshape,
            &OpAttrs::new(),
            &[
                t32(vec![n.clone().into(), 2.into(), 2.into()]),
                StructInfo::shape(vec![n.into(), 4.into()]),
            ],
            "reshape",
        )
        .unwrap();
        let x = NDArray::from_f64(&[1, 2, 2], DataType::F32, vec![1., 2., 3., 4.]).unwrap();
        let o = NDArray::zeros(&[1, 4], DataType::F32);
        interp::run(&f, &[x, o.clone()]).unwrap();
        assert_eq!(o.to_f64_vec(), vec![1., 2., 3., 4.]);
        assert_eq!(analysis::pattern_kind(&f), analysis::PatternKind::Injective);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let n = Var::new("n");
        let f = legalize(
            Op::Softmax,
            &OpAttrs::new(),
            &[t32(vec![n.into(), 4.into()])],
            "softmax",
        )
        .unwrap();
        let x = NDArray::from_f64(
            &[2, 4],
            DataType::F32,
            vec![1., 2., 3., 4., -1., 0., 1., 2.],
        )
        .unwrap();
        let o = NDArray::zeros(&[2, 4], DataType::F32);
        interp::run(&f, &[x, o.clone()]).unwrap();
        let v = o.to_f64_vec();
        let row0: f64 = v[..4].iter().sum();
        let row1: f64 = v[4..].iter().sum();
        assert!((row0 - 1.0).abs() < 1e-5 && (row1 - 1.0).abs() < 1e-5);
        // Monotone within a row.
        assert!(v[0] < v[1] && v[1] < v[2] && v[2] < v[3]);
    }

    #[test]
    fn rms_norm_matches_reference() {
        let f = legalize(
            Op::RmsNorm,
            &OpAttrs::new(),
            &[t32(vec![1.into(), 4.into()]), t32(vec![4.into()])],
            "rms_norm",
        )
        .unwrap();
        let x = NDArray::from_f64(&[1, 4], DataType::F32, vec![1., 2., 3., 4.]).unwrap();
        let w = NDArray::from_f64(&[4], DataType::F32, vec![1., 1., 1., 1.]).unwrap();
        let o = NDArray::zeros(&[1, 4], DataType::F32);
        interp::run(&f, &[x, w, o.clone()]).unwrap();
        let ms: f64 = (1. + 4. + 9. + 16.) / 4.0;
        let denom = (ms + 1e-5).sqrt();
        let got = o.to_f64_vec();
        for (g, e) in got.iter().zip([1., 2., 3., 4.]) {
            assert!((g - e / denom).abs() < 1e-5);
        }
    }

    #[test]
    fn take_gathers_rows() {
        let f = legalize(
            Op::Take,
            &OpAttrs::new(),
            &[
                t32(vec![3.into(), 2.into()]),
                StructInfo::tensor(vec![2.into()], DataType::I64),
            ],
            "take",
        )
        .unwrap();
        let table =
            NDArray::from_f64(&[3, 2], DataType::F32, vec![0., 1., 10., 11., 20., 21.]).unwrap();
        let idx = NDArray::from_i64(&[2], DataType::I64, vec![2, 0]).unwrap();
        let o = NDArray::zeros(&[2, 2], DataType::F32);
        interp::run(&f, &[table, idx, o.clone()]).unwrap();
        assert_eq!(o.to_f64_vec(), vec![20., 21., 0., 1.]);
    }

    #[test]
    fn causal_attention_masks_future() {
        let mut attrs = OpAttrs::new();
        attrs.insert("scale".into(), "1.0".into());
        attrs.insert("causal".into(), "true".into());
        let s = 2usize;
        let f = legalize(
            Op::Attention,
            &attrs,
            &[
                t32(vec![1.into(), 1.into(), (s as i64).into(), 2.into()]),
                t32(vec![1.into(), 1.into(), (s as i64).into(), 2.into()]),
                t32(vec![1.into(), 1.into(), (s as i64).into(), 2.into()]),
            ],
            "attention",
        )
        .unwrap();
        // v rows are distinguishable; q=k makes position 0 attend only to 0.
        let q = NDArray::from_f64(&[1, 1, 2, 2], DataType::F32, vec![1., 0., 0., 1.]).unwrap();
        let k = q.deep_copy();
        let v = NDArray::from_f64(&[1, 1, 2, 2], DataType::F32, vec![5., 0., 0., 7.]).unwrap();
        let o = NDArray::zeros(&[1, 1, 2, 2], DataType::F32);
        interp::run(&f, &[q, k, v, o.clone()]).unwrap();
        let out = o.to_f64_vec();
        // Row 0 attends only to position 0 -> exactly [5, 0].
        assert!((out[0] - 5.0).abs() < 1e-5 && out[1].abs() < 1e-5);
        // Row 1 mixes both rows.
        assert!(out[2] > 0.0 && out[3] > 0.0);
    }

    #[test]
    fn unique_has_no_tir_legalization() {
        let err = legalize(
            Op::Unique,
            &OpAttrs::new(),
            &[t32(vec![4.into()])],
            "unique",
        )
        .unwrap_err();
        assert!(matches!(err, LegalizeError::Unsupported { .. }));
    }

    #[test]
    fn coarse_shapes_cannot_legalize() {
        let err = legalize(
            Op::Exp,
            &OpAttrs::new(),
            &[StructInfo::tensor_ndim(2, DataType::F32)],
            "exp",
        )
        .unwrap_err();
        assert_eq!(err, LegalizeError::CoarseShape { op: "relax.exp" });
    }
}

#[cfg(test)]
mod new_op_tests {
    use super::*;
    use relax_arith::DataType;
    use relax_tir::{interp, NDArray};

    fn t32(dims: Vec<PrimExpr>) -> StructInfo {
        StructInfo::tensor(dims, DataType::F32)
    }

    #[test]
    fn layer_norm_matches_reference() {
        let f = legalize(
            Op::LayerNorm,
            &OpAttrs::new(),
            &[
                t32(vec![1.into(), 4.into()]),
                t32(vec![4.into()]),
                t32(vec![4.into()]),
            ],
            "layer_norm",
        )
        .unwrap();
        let x = NDArray::from_f64(&[1, 4], DataType::F32, vec![1., 2., 3., 4.]).unwrap();
        let g = NDArray::from_f64(&[4], DataType::F32, vec![2., 2., 2., 2.]).unwrap();
        let b = NDArray::from_f64(&[4], DataType::F32, vec![0.5; 4]).unwrap();
        let o = NDArray::zeros(&[1, 4], DataType::F32);
        interp::run(&f, &[x, g, b, o.clone()]).unwrap();
        let mean = 2.5f64;
        let var = (1.5f64.powi(2) + 0.5f64.powi(2)) * 2.0 / 4.0;
        for (i, got) in o.to_f64_vec().iter().enumerate() {
            let xn = ((i + 1) as f64 - mean) / (var + 1e-5).sqrt();
            let expect = xn * 2.0 + 0.5;
            assert!((got - expect).abs() < 1e-4, "{i}: {got} vs {expect}");
        }
    }

    #[test]
    fn split_halves_along_axis() {
        let mut attrs = OpAttrs::new();
        attrs.insert("axis".into(), "1".into());
        attrs.insert("sections".into(), "2".into());
        let f = legalize(Op::Split, &attrs, &[t32(vec![2.into(), 4.into()])], "split").unwrap();
        assert_eq!(f.num_outputs(), 2);
        let x = NDArray::from_f64(&[2, 4], DataType::F32, (0..8).map(f64::from).collect()).unwrap();
        let a = NDArray::zeros(&[2, 2], DataType::F32);
        let b = NDArray::zeros(&[2, 2], DataType::F32);
        interp::run(&f, &[x, a.clone(), b.clone()]).unwrap();
        assert_eq!(a.to_f64_vec(), vec![0., 1., 4., 5.]);
        assert_eq!(b.to_f64_vec(), vec![2., 3., 6., 7.]);
    }

    #[test]
    fn split_rejects_uneven_sections() {
        let mut attrs = OpAttrs::new();
        attrs.insert("axis".into(), "0".into());
        attrs.insert("sections".into(), "3".into());
        let err = legalize(Op::Split, &attrs, &[t32(vec![4.into()])], "split").unwrap_err();
        assert!(matches!(
            err,
            LegalizeError::Infer(InferError::ShapeConflict { .. })
        ));
    }

    #[test]
    fn slice_extracts_interior_window() {
        let mut attrs = OpAttrs::new();
        attrs.insert("axis".into(), "0".into());
        attrs.insert("begin".into(), "1".into());
        attrs.insert("end".into(), "3".into());
        let n = relax_arith::Var::new("c");
        let f = legalize(Op::Slice, &attrs, &[t32(vec![4.into(), n.into()])], "slice").unwrap();
        let x = NDArray::from_f64(&[4, 2], DataType::F32, (0..8).map(f64::from).collect()).unwrap();
        let o = NDArray::zeros(&[2, 2], DataType::F32);
        interp::run(&f, &[x, o.clone()]).unwrap();
        assert_eq!(o.to_f64_vec(), vec![2., 3., 4., 5.]);
        // Out-of-range slices are statically rejected.
        let mut bad = OpAttrs::new();
        bad.insert("axis".into(), "0".into());
        bad.insert("begin".into(), "2".into());
        bad.insert("end".into(), "9".into());
        assert!(legalize(Op::Slice, &bad, &[t32(vec![4.into()])], "s").is_err());
    }

    #[test]
    fn split_through_the_whole_pipeline() {
        // Split the symbolic axis of (n, 4) into two (n, 2) halves, then
        // add them: exercises tuple-returning call_tir end to end.
        use crate::builder::BlockBuilder;
        use crate::expr::Expr;
        let mut bb = BlockBuilder::new();
        let n = relax_arith::Var::new("n");
        let p = bb.begin_function(
            "main",
            vec![(
                "x".into(),
                StructInfo::tensor(vec![n.into(), 4.into()], DataType::F32),
            )],
        );
        bb.begin_dataflow();
        let attrs: OpAttrs = [
            ("axis".to_string(), "1".to_string()),
            ("sections".to_string(), "2".to_string()),
        ]
        .into_iter()
        .collect();
        let halves = bb
            .emit_op_attrs(Op::Split, vec![p[0].clone().into()], attrs)
            .unwrap();
        let a = bb
            .emit(Expr::TupleGetItem(Box::new(halves.clone().into()), 0))
            .unwrap();
        let b = bb
            .emit(Expr::TupleGetItem(Box::new(halves.into()), 1))
            .unwrap();
        let out = bb
            .emit_output(Expr::op_call(Op::Add, vec![a.into(), b.into()]))
            .unwrap();
        bb.end_dataflow();
        bb.finish_function(out.into(), None).unwrap();
        let m = bb.finish();
        assert!(crate::wellformed::assert_well_formed(&m).is_ok());
    }
}
