//! The high-level operator registry: names, shape-deduction rules
//! (`FInferStructInfo`) and legalization to loop-level tensor programs.

mod legalize;

pub use legalize::{legalize, LegalizeError};

use std::fmt;

use relax_arith::{Analyzer, DataType, PrimExpr};

use crate::expr::OpAttrs;
use crate::struct_info::{ShapeDesc, StructInfo};

/// A registered graph-level tensor operator.
///
/// Each operator has a *registered shape deduction rule* ([`Op::infer`])
/// that takes input annotations (and, for shape-consuming operators like
/// `reshape`, input *values*) and produces the output annotation — the
/// forward deduction of §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Element-wise addition (with suffix broadcasting).
    Add,
    /// Element-wise subtraction.
    Sub,
    /// Element-wise multiplication.
    Mul,
    /// Element-wise division.
    Divide,
    /// Element-wise maximum.
    Maximum,
    /// Element-wise exponential.
    Exp,
    /// Rectified linear unit.
    Relu,
    /// Element-wise square root.
    Sqrt,
    /// Element-wise negation.
    Neg,
    /// Logistic sigmoid.
    Sigmoid,
    /// SiLU activation `x * sigmoid(x)`.
    Silu,
    /// GELU activation (tanh approximation).
    Gelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Data type cast; attrs: `dtype`.
    Cast,
    /// Matrix multiplication; supports `[.., m, k] × [k, n]` and equal-rank
    /// batched forms.
    Matmul,
    /// Reshape; second argument is the target shape value.
    Reshape,
    /// Flatten to one dimension.
    Flatten,
    /// Dimension permutation; attrs: `axes` (comma-separated).
    Permute,
    /// Concatenation; attrs: `axis`.
    Concat,
    /// Embedding lookup along axis 0: `take(table, indices)`.
    Take,
    /// Sum reduction; attrs: `axis`.
    Sum,
    /// Mean reduction; attrs: `axis`.
    Mean,
    /// Softmax over the last axis.
    Softmax,
    /// Root-mean-square normalization over the last axis; args
    /// `(x, weight)`; attrs: `eps`.
    RmsNorm,
    /// Splits a tensor into equal sections along an axis; attrs: `axis`,
    /// `sections`. Produces a tuple.
    Split,
    /// Static slice along one axis; attrs: `axis`, `begin`, `end`.
    Slice,
    /// Layer normalization over the last axis; args `(x, gamma, beta)`;
    /// attrs: `eps`.
    LayerNorm,
    /// Data-dependent deduplication; output shape unknown at compile time.
    Unique,
    /// Fused scaled-dot-product attention `(q, k, v)` with shapes
    /// `[b, h, s, d]`; attrs: `scale`, `causal`.
    Attention,
}

impl Op {
    /// The canonical operator name, e.g. `"relax.matmul"`.
    pub fn name(self) -> &'static str {
        match self {
            Op::Add => "relax.add",
            Op::Sub => "relax.sub",
            Op::Mul => "relax.mul",
            Op::Divide => "relax.divide",
            Op::Maximum => "relax.maximum",
            Op::Exp => "relax.exp",
            Op::Relu => "relax.relu",
            Op::Sqrt => "relax.sqrt",
            Op::Neg => "relax.neg",
            Op::Sigmoid => "relax.sigmoid",
            Op::Silu => "relax.silu",
            Op::Gelu => "relax.gelu",
            Op::Tanh => "relax.tanh",
            Op::Cast => "relax.cast",
            Op::Matmul => "relax.matmul",
            Op::Reshape => "relax.reshape",
            Op::Flatten => "relax.flatten",
            Op::Permute => "relax.permute",
            Op::Concat => "relax.concat",
            Op::Take => "relax.take",
            Op::Sum => "relax.sum",
            Op::Mean => "relax.mean",
            Op::Softmax => "relax.softmax",
            Op::RmsNorm => "relax.rms_norm",
            Op::Split => "relax.split",
            Op::Slice => "relax.slice",
            Op::LayerNorm => "relax.layer_norm",
            Op::Unique => "relax.unique",
            Op::Attention => "relax.attention",
        }
    }

    /// Short name used when generating tensor-program names during
    /// legalization (e.g. `matmul`, `rms_norm`).
    pub fn short_name(self) -> &'static str {
        self.name().trim_start_matches("relax.")
    }

    /// All registered operators.
    pub fn all() -> &'static [Op] {
        &[
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Divide,
            Op::Maximum,
            Op::Exp,
            Op::Relu,
            Op::Sqrt,
            Op::Neg,
            Op::Sigmoid,
            Op::Silu,
            Op::Gelu,
            Op::Tanh,
            Op::Cast,
            Op::Matmul,
            Op::Reshape,
            Op::Flatten,
            Op::Permute,
            Op::Concat,
            Op::Take,
            Op::Sum,
            Op::Mean,
            Op::Softmax,
            Op::RmsNorm,
            Op::Split,
            Op::Slice,
            Op::LayerNorm,
            Op::Unique,
            Op::Attention,
        ]
    }

    /// Looks up an operator by its short name (`"matmul"`, `"rms_norm"`).
    pub fn from_short_name(name: &str) -> Option<Op> {
        Op::all().iter().copied().find(|o| o.short_name() == name)
    }

    /// `true` for element-wise unary/binary operators.
    pub fn is_elementwise(self) -> bool {
        matches!(
            self,
            Op::Add
                | Op::Sub
                | Op::Mul
                | Op::Divide
                | Op::Maximum
                | Op::Exp
                | Op::Relu
                | Op::Sqrt
                | Op::Neg
                | Op::Sigmoid
                | Op::Silu
                | Op::Gelu
                | Op::Tanh
                | Op::Cast
        )
    }

    /// Deduces the output annotation from the inputs (forward deduction).
    ///
    /// # Errors
    ///
    /// Returns [`InferError`] when arity, ranks, dtypes, or provably
    /// mismatched dimensions rule the call out.
    pub fn infer(self, args: &[StructInfo], attrs: &OpAttrs) -> Result<StructInfo, InferError> {
        match self {
            Op::Add | Op::Sub | Op::Mul | Op::Divide | Op::Maximum => {
                expect_arity(self, args, 2)?;
                infer_broadcast_binary(self, &args[0], &args[1])
            }
            Op::Exp
            | Op::Relu
            | Op::Sqrt
            | Op::Neg
            | Op::Sigmoid
            | Op::Silu
            | Op::Gelu
            | Op::Tanh
            | Op::Softmax => {
                expect_arity(self, args, 1)?;
                expect_tensor(self, &args[0]).map(|_| args[0].clone())
            }
            Op::Cast => {
                expect_arity(self, args, 1)?;
                expect_tensor(self, &args[0])?;
                let dtype = attr_dtype(self, attrs, "dtype")?;
                match &args[0] {
                    StructInfo::Tensor { shape, .. } => Ok(StructInfo::Tensor {
                        shape: shape.clone(),
                        dtype: Some(dtype),
                    }),
                    _ => unreachable!("checked by expect_tensor"),
                }
            }
            Op::Matmul => {
                expect_arity(self, args, 2)?;
                infer_matmul(self, &args[0], &args[1])
            }
            Op::Reshape => {
                expect_arity(self, args, 2)?;
                expect_tensor(self, &args[0])?;
                let dtype = args[0].tensor_dtype();
                match &args[1] {
                    StructInfo::Shape(ShapeDesc::Known(dims)) => {
                        check_same_numel(self, &args[0], dims)?;
                        Ok(StructInfo::Tensor {
                            shape: ShapeDesc::Known(dims.clone()),
                            dtype,
                        })
                    }
                    StructInfo::Shape(ShapeDesc::Ndim(n)) => Ok(StructInfo::Tensor {
                        shape: ShapeDesc::Ndim(*n),
                        dtype,
                    }),
                    StructInfo::Shape(ShapeDesc::Unknown) | StructInfo::Object => {
                        Ok(StructInfo::Tensor {
                            shape: ShapeDesc::Unknown,
                            dtype,
                        })
                    }
                    other => Err(InferError::BadArgument {
                        op: self.name(),
                        detail: format!("reshape target must be a Shape, got {other}"),
                    }),
                }
            }
            Op::Flatten => {
                expect_arity(self, args, 1)?;
                expect_tensor(self, &args[0])?;
                let dtype = args[0].tensor_dtype();
                match args[0].tensor_dims() {
                    Some(dims) => {
                        let numel = dims
                            .iter()
                            .cloned()
                            .fold(PrimExpr::Int(1), |acc, d| acc * d);
                        let numel = Analyzer::new().simplify(&numel);
                        Ok(StructInfo::Tensor {
                            shape: ShapeDesc::Known(vec![numel]),
                            dtype,
                        })
                    }
                    None => Ok(StructInfo::Tensor {
                        shape: ShapeDesc::Ndim(1),
                        dtype,
                    }),
                }
            }
            Op::Permute => {
                expect_arity(self, args, 1)?;
                expect_tensor(self, &args[0])?;
                let dtype = args[0].tensor_dtype();
                let dims = args[0]
                    .tensor_dims()
                    .ok_or_else(|| InferError::BadArgument {
                        op: self.name(),
                        detail: "permute requires a known-shape tensor".to_string(),
                    })?;
                let axes = attr_axes(self, attrs, "axes", dims.len())?;
                Ok(StructInfo::Tensor {
                    shape: ShapeDesc::Known(axes.iter().map(|&a| dims[a].clone()).collect()),
                    dtype,
                })
            }
            Op::Concat => {
                if args.is_empty() {
                    return Err(InferError::Arity {
                        op: self.name(),
                        expected: 1,
                        actual: 0,
                    });
                }
                infer_concat(self, args, attrs)
            }
            Op::Take => {
                expect_arity(self, args, 2)?;
                let table_dims = args[0]
                    .tensor_dims()
                    .ok_or_else(|| InferError::BadArgument {
                        op: self.name(),
                        detail: "take requires a known-shape table".to_string(),
                    })?;
                let dtype = args[0].tensor_dtype();
                let idx_dims = args[1]
                    .tensor_dims()
                    .ok_or_else(|| InferError::BadArgument {
                        op: self.name(),
                        detail: "take requires known-shape indices".to_string(),
                    })?;
                let mut out = idx_dims.to_vec();
                out.extend(table_dims[1..].iter().cloned());
                Ok(StructInfo::Tensor {
                    shape: ShapeDesc::Known(out),
                    dtype,
                })
            }
            Op::Sum | Op::Mean => {
                expect_arity(self, args, 1)?;
                let dims = args[0]
                    .tensor_dims()
                    .ok_or_else(|| InferError::BadArgument {
                        op: self.name(),
                        detail: "reduction requires a known-shape tensor".to_string(),
                    })?;
                let axis = attr_i64(self, attrs, "axis")? as usize;
                if axis >= dims.len() {
                    return Err(InferError::BadArgument {
                        op: self.name(),
                        detail: format!("axis {axis} out of range for rank {}", dims.len()),
                    });
                }
                let mut out = dims.to_vec();
                out.remove(axis);
                Ok(StructInfo::Tensor {
                    shape: ShapeDesc::Known(out),
                    dtype: args[0].tensor_dtype(),
                })
            }
            Op::RmsNorm => {
                expect_arity(self, args, 2)?;
                expect_tensor(self, &args[0])?;
                expect_tensor(self, &args[1])?;
                Ok(args[0].clone())
            }
            Op::LayerNorm => {
                expect_arity(self, args, 3)?;
                for a in args {
                    expect_tensor(self, a)?;
                }
                Ok(args[0].clone())
            }
            Op::Split => {
                expect_arity(self, args, 1)?;
                let dims = args[0]
                    .tensor_dims()
                    .ok_or_else(|| InferError::BadArgument {
                        op: self.name(),
                        detail: "split requires a known-shape tensor".to_string(),
                    })?;
                let axis = attr_i64(self, attrs, "axis")? as usize;
                let sections = attr_i64(self, attrs, "sections")?;
                if axis >= dims.len() || sections < 1 {
                    return Err(InferError::BadAttr {
                        op: self.name(),
                        key: "axis/sections".to_string(),
                    });
                }
                // The split axis must divide evenly; for symbolic dims the
                // division is recorded symbolically.
                let analyzer = Analyzer::new();
                let part = match dims[axis].as_int() {
                    Some(v) if v % sections != 0 => {
                        return Err(InferError::ShapeConflict {
                            op: self.name(),
                            detail: format!("axis extent {v} not divisible by {sections}"),
                        })
                    }
                    Some(v) => PrimExpr::Int(v / sections),
                    None => analyzer.simplify(&dims[axis].clone().floor_div(sections.into())),
                };
                let mut field = dims.to_vec();
                field[axis] = part;
                let sinfo = StructInfo::Tensor {
                    shape: ShapeDesc::Known(field),
                    dtype: args[0].tensor_dtype(),
                };
                Ok(StructInfo::Tuple(vec![sinfo; sections as usize]))
            }
            Op::Slice => {
                expect_arity(self, args, 1)?;
                let dims = args[0]
                    .tensor_dims()
                    .ok_or_else(|| InferError::BadArgument {
                        op: self.name(),
                        detail: "slice requires a known-shape tensor".to_string(),
                    })?;
                let axis = attr_i64(self, attrs, "axis")? as usize;
                let begin = attr_i64(self, attrs, "begin")?;
                let end = attr_i64(self, attrs, "end")?;
                if axis >= dims.len() || begin < 0 || end < begin {
                    return Err(InferError::BadAttr {
                        op: self.name(),
                        key: "axis/begin/end".to_string(),
                    });
                }
                if let Some(extent) = dims[axis].as_int() {
                    if end > extent {
                        return Err(InferError::ShapeConflict {
                            op: self.name(),
                            detail: format!("slice end {end} exceeds extent {extent}"),
                        });
                    }
                }
                let mut out = dims.to_vec();
                out[axis] = PrimExpr::Int(end - begin);
                Ok(StructInfo::Tensor {
                    shape: ShapeDesc::Known(out),
                    dtype: args[0].tensor_dtype(),
                })
            }
            Op::Unique => {
                expect_arity(self, args, 1)?;
                expect_tensor(self, &args[0])?;
                // Data-dependent: only the rank (1) and dtype are known.
                Ok(StructInfo::Tensor {
                    shape: ShapeDesc::Ndim(1),
                    dtype: args[0].tensor_dtype(),
                })
            }
            Op::Attention => {
                expect_arity(self, args, 3)?;
                let q = args[0]
                    .tensor_dims()
                    .ok_or_else(|| InferError::BadArgument {
                        op: self.name(),
                        detail: "attention requires known-shape q".to_string(),
                    })?;
                if q.len() != 4 {
                    return Err(InferError::BadArgument {
                        op: self.name(),
                        detail: format!("attention expects [b, h, s, d] q, got rank {}", q.len()),
                    });
                }
                // Grouped-query attention: the number of query heads must
                // be a multiple of the number of KV heads.
                if let Some(k) = args[1].tensor_dims() {
                    if let (Some(hq), Some(hkv)) = (q[1].as_int(), k[1].as_int()) {
                        if hkv == 0 || hq % hkv != 0 {
                            return Err(InferError::ShapeConflict {
                                op: self.name(),
                                detail: format!(
                                    "query heads {hq} not a multiple of kv heads {hkv}"
                                ),
                            });
                        }
                    }
                }
                Ok(args[0].clone())
            }
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Error produced by operator shape deduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferError {
    /// Wrong number of arguments.
    Arity {
        /// Operator name.
        op: &'static str,
        /// Arguments expected.
        expected: usize,
        /// Arguments given.
        actual: usize,
    },
    /// An argument had the wrong structure.
    BadArgument {
        /// Operator name.
        op: &'static str,
        /// Detail.
        detail: String,
    },
    /// Two dimensions were provably unequal.
    ShapeConflict {
        /// Operator name.
        op: &'static str,
        /// Detail.
        detail: String,
    },
    /// A required attribute was missing or malformed.
    BadAttr {
        /// Operator name.
        op: &'static str,
        /// Attribute key.
        key: String,
    },
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferError::Arity {
                op,
                expected,
                actual,
            } => write!(f, "{op}: expected {expected} arguments, got {actual}"),
            InferError::BadArgument { op, detail } => write!(f, "{op}: {detail}"),
            InferError::ShapeConflict { op, detail } => {
                write!(f, "{op}: shape conflict: {detail}")
            }
            InferError::BadAttr { op, key } => {
                write!(f, "{op}: missing or malformed attribute `{key}`")
            }
        }
    }
}

impl std::error::Error for InferError {}

fn expect_arity(op: Op, args: &[StructInfo], n: usize) -> Result<(), InferError> {
    if args.len() != n {
        Err(InferError::Arity {
            op: op.name(),
            expected: n,
            actual: args.len(),
        })
    } else {
        Ok(())
    }
}

fn expect_tensor(op: Op, s: &StructInfo) -> Result<&StructInfo, InferError> {
    match s {
        StructInfo::Tensor { .. } => Ok(s),
        other => Err(InferError::BadArgument {
            op: op.name(),
            detail: format!("expected a Tensor argument, got {other}"),
        }),
    }
}

fn merge_dtype(
    op: Op,
    a: Option<DataType>,
    b: Option<DataType>,
) -> Result<Option<DataType>, InferError> {
    match (a, b) {
        (Some(x), Some(y)) if x != y => Err(InferError::BadArgument {
            op: op.name(),
            detail: format!("dtype mismatch: {x} vs {y}"),
        }),
        (Some(x), _) => Ok(Some(x)),
        (_, y) => Ok(y),
    }
}

fn infer_broadcast_binary(
    op: Op,
    a: &StructInfo,
    b: &StructInfo,
) -> Result<StructInfo, InferError> {
    expect_tensor(op, a)?;
    expect_tensor(op, b)?;
    let dtype = merge_dtype(op, a.tensor_dtype(), b.tensor_dtype())?;
    let (ad, bd) = match (a.tensor_dims(), b.tensor_dims()) {
        (Some(ad), Some(bd)) => (ad, bd),
        _ => {
            // Coarse fallback: rank of the higher-rank side if known.
            let ndim = match (a, b) {
                (StructInfo::Tensor { shape: sa, .. }, StructInfo::Tensor { shape: sb, .. }) => {
                    match (sa.ndim(), sb.ndim()) {
                        (Some(x), Some(y)) => Some(x.max(y)),
                        _ => None,
                    }
                }
                _ => None,
            };
            return Ok(StructInfo::Tensor {
                shape: match ndim {
                    Some(n) => ShapeDesc::Ndim(n),
                    None => ShapeDesc::Unknown,
                },
                dtype,
            });
        }
    };
    // Suffix broadcasting: the lower-rank operand must match the trailing
    // dimensions of the higher-rank one (or be scalar).
    let (long, short) = if ad.len() >= bd.len() {
        (ad, bd)
    } else {
        (bd, ad)
    };
    let offset = long.len() - short.len();
    let analyzer = Analyzer::new();
    for (i, sdim) in short.iter().enumerate() {
        let ldim = &long[offset + i];
        if sdim.as_int() == Some(1) {
            continue;
        }
        if sdim.is_const() && ldim.is_const() && sdim.as_int() != ldim.as_int() {
            return Err(InferError::ShapeConflict {
                op: op.name(),
                detail: format!("dimension `{sdim}` vs `{ldim}`"),
            });
        }
        let _ = analyzer; // equality beyond constants is accepted (runtime checked)
    }
    Ok(StructInfo::Tensor {
        shape: ShapeDesc::Known(long.to_vec()),
        dtype,
    })
}

fn infer_matmul(op: Op, a: &StructInfo, b: &StructInfo) -> Result<StructInfo, InferError> {
    expect_tensor(op, a)?;
    expect_tensor(op, b)?;
    let dtype = merge_dtype(op, a.tensor_dtype(), b.tensor_dtype())?;
    let (ad, bd) = match (a.tensor_dims(), b.tensor_dims()) {
        (Some(ad), Some(bd)) => (ad, bd),
        _ => {
            return Ok(StructInfo::Tensor {
                shape: ShapeDesc::Unknown,
                dtype,
            })
        }
    };
    if ad.len() < 2 || bd.len() < 2 {
        return Err(InferError::BadArgument {
            op: op.name(),
            detail: "matmul operands must have rank >= 2".to_string(),
        });
    }
    let k_a = &ad[ad.len() - 1];
    let k_b = &bd[bd.len() - 2];
    if k_a.is_const() && k_b.is_const() && k_a.as_int() != k_b.as_int() {
        return Err(InferError::ShapeConflict {
            op: op.name(),
            detail: format!("inner dimensions `{k_a}` vs `{k_b}`"),
        });
    }
    let mut out: Vec<PrimExpr>;
    if bd.len() == 2 {
        out = ad[..ad.len() - 1].to_vec();
        out.push(bd[1].clone());
    } else if ad.len() == bd.len() {
        // Batched: leading dims must agree (constants checked).
        for (x, y) in ad[..ad.len() - 2].iter().zip(&bd[..bd.len() - 2]) {
            if x.is_const() && y.is_const() && x.as_int() != y.as_int() {
                return Err(InferError::ShapeConflict {
                    op: op.name(),
                    detail: format!("batch dimensions `{x}` vs `{y}`"),
                });
            }
        }
        out = ad[..ad.len() - 1].to_vec();
        out.push(bd[bd.len() - 1].clone());
    } else {
        return Err(InferError::BadArgument {
            op: op.name(),
            detail: format!("unsupported matmul ranks {} x {}", ad.len(), bd.len()),
        });
    }
    Ok(StructInfo::Tensor {
        shape: ShapeDesc::Known(out),
        dtype,
    })
}

fn infer_concat(op: Op, args: &[StructInfo], attrs: &OpAttrs) -> Result<StructInfo, InferError> {
    let axis = attr_i64(op, attrs, "axis")? as usize;
    let mut dims: Option<Vec<PrimExpr>> = None;
    let mut dtype = None;
    for a in args {
        expect_tensor(op, a)?;
        dtype = merge_dtype(op, dtype, a.tensor_dtype())?;
        let ad = a.tensor_dims().ok_or_else(|| InferError::BadArgument {
            op: op.name(),
            detail: "concat requires known shapes".to_string(),
        })?;
        if axis >= ad.len() {
            return Err(InferError::BadArgument {
                op: op.name(),
                detail: format!("axis {axis} out of range for rank {}", ad.len()),
            });
        }
        match &mut dims {
            None => dims = Some(ad.to_vec()),
            Some(acc) => {
                if acc.len() != ad.len() {
                    return Err(InferError::ShapeConflict {
                        op: op.name(),
                        detail: "rank mismatch between concat inputs".to_string(),
                    });
                }
                acc[axis] = Analyzer::new().simplify(&(acc[axis].clone() + ad[axis].clone()));
            }
        }
    }
    Ok(StructInfo::Tensor {
        shape: ShapeDesc::Known(dims.expect("at least one arg")),
        dtype,
    })
}

fn check_same_numel(op: Op, input: &StructInfo, target: &[PrimExpr]) -> Result<(), InferError> {
    if let Some(dims) = input.tensor_dims() {
        let analyzer = Analyzer::new();
        let in_numel = dims
            .iter()
            .cloned()
            .fold(PrimExpr::Int(1), |acc, d| acc * d);
        let out_numel = target
            .iter()
            .cloned()
            .fold(PrimExpr::Int(1), |acc, d| acc * d);
        let a = analyzer.simplify(&in_numel);
        let b = analyzer.simplify(&out_numel);
        if a.is_const() && b.is_const() && a != b {
            return Err(InferError::ShapeConflict {
                op: op.name(),
                detail: format!("reshape changes element count: {a} vs {b}"),
            });
        }
    }
    Ok(())
}

/// Parses an `i64` attribute.
pub(crate) fn attr_i64(op: Op, attrs: &OpAttrs, key: &str) -> Result<i64, InferError> {
    attrs
        .get(key)
        .and_then(|v| v.parse().ok())
        .ok_or(InferError::BadAttr {
            op: op.name(),
            key: key.to_string(),
        })
}

/// Parses an `f64` attribute, with a default.
pub(crate) fn attr_f64_or(attrs: &OpAttrs, key: &str, default: f64) -> f64 {
    attrs
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses a permutation attribute like `"1,0"` and validates it.
pub(crate) fn attr_axes(
    op: Op,
    attrs: &OpAttrs,
    key: &str,
    rank: usize,
) -> Result<Vec<usize>, InferError> {
    let raw = attrs.get(key).ok_or(InferError::BadAttr {
        op: op.name(),
        key: key.to_string(),
    })?;
    let axes: Option<Vec<usize>> = raw.split(',').map(|s| s.trim().parse().ok()).collect();
    let axes = axes.ok_or(InferError::BadAttr {
        op: op.name(),
        key: key.to_string(),
    })?;
    let mut seen = vec![false; rank];
    if axes.len() != rank
        || axes
            .iter()
            .any(|&a| a >= rank || std::mem::replace(&mut seen[a], true))
    {
        return Err(InferError::BadAttr {
            op: op.name(),
            key: key.to_string(),
        });
    }
    Ok(axes)
}

/// Parses a dtype attribute.
pub(crate) fn attr_dtype(op: Op, attrs: &OpAttrs, key: &str) -> Result<DataType, InferError> {
    attrs
        .get(key)
        .and_then(|v| v.parse().ok())
        .ok_or(InferError::BadAttr {
            op: op.name(),
            key: key.to_string(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use relax_arith::Var;

    fn t(dims: Vec<PrimExpr>) -> StructInfo {
        StructInfo::tensor(dims, DataType::F32)
    }

    #[test]
    fn binary_same_shape() {
        let n = Var::new("n");
        let a = t(vec![n.clone().into(), 4.into()]);
        let out = Op::Add
            .infer(&[a.clone(), a.clone()], &OpAttrs::new())
            .unwrap();
        assert_eq!(out, a);
    }

    #[test]
    fn binary_suffix_broadcast() {
        let n = Var::new("n");
        let a = t(vec![n.clone().into(), 256.into()]);
        let bias = t(vec![256.into()]);
        let out = Op::Add.infer(&[a.clone(), bias], &OpAttrs::new()).unwrap();
        assert_eq!(out, a);
        let bad = t(vec![128.into()]);
        assert!(Op::Add.infer(&[a, bad], &OpAttrs::new()).is_err());
    }

    #[test]
    fn matmul_nd_by_2d() {
        let n = Var::new("n");
        let x = t(vec![n.clone().into(), 128.into()]);
        let w = t(vec![128.into(), 256.into()]);
        let out = Op::Matmul.infer(&[x, w], &OpAttrs::new()).unwrap();
        assert_eq!(out, t(vec![n.into(), 256.into()]));
    }

    #[test]
    fn matmul_batched_and_conflicts() {
        let b = Var::new("b");
        let q = t(vec![b.clone().into(), 8.into(), 1.into(), 64.into()]);
        let k = t(vec![b.clone().into(), 8.into(), 64.into(), 32.into()]);
        let out = Op::Matmul.infer(&[q, k], &OpAttrs::new()).unwrap();
        assert_eq!(out, t(vec![b.into(), 8.into(), 1.into(), 32.into()]));
        let x = t(vec![4.into(), 128.into()]);
        let w = t(vec![64.into(), 256.into()]);
        assert!(matches!(
            Op::Matmul.infer(&[x, w], &OpAttrs::new()),
            Err(InferError::ShapeConflict { .. })
        ));
    }

    #[test]
    fn reshape_and_flatten_track_symbolic_numel() {
        let n = Var::new("n");
        // Figure 3: reshape (n, 2, 2) with shape (n, 4); flatten -> (n*4,)
        let x = t(vec![n.clone().into(), 2.into(), 2.into()]);
        let target = StructInfo::shape(vec![n.clone().into(), 4.into()]);
        let reshaped = Op::Reshape.infer(&[x, target], &OpAttrs::new()).unwrap();
        assert_eq!(reshaped, t(vec![n.clone().into(), 4.into()]));
        let flat = Op::Flatten.infer(&[reshaped], &OpAttrs::new()).unwrap();
        let expected = Analyzer::new().simplify(&(PrimExpr::from(n) * 4.into()));
        assert_eq!(flat.tensor_dims().unwrap(), &[expected]);
    }

    #[test]
    fn reshape_rejects_provably_wrong_numel() {
        let x = t(vec![2.into(), 3.into()]);
        let target = StructInfo::shape(vec![7.into()]);
        assert!(matches!(
            Op::Reshape.infer(&[x, target], &OpAttrs::new()),
            Err(InferError::ShapeConflict { .. })
        ));
    }

    #[test]
    fn unique_is_data_dependent() {
        let n = Var::new("n");
        let x = t(vec![n.into()]);
        let out = Op::Unique.infer(&[x], &OpAttrs::new()).unwrap();
        assert_eq!(out, StructInfo::tensor_ndim(1, DataType::F32));
    }

    #[test]
    fn permute_applies_axes() {
        let (n, m) = (Var::new("n"), Var::new("m"));
        let x = t(vec![n.clone().into(), m.clone().into()]);
        let mut attrs = OpAttrs::new();
        attrs.insert("axes".into(), "1,0".into());
        let out = Op::Permute.infer(&[x], &attrs).unwrap();
        assert_eq!(out, t(vec![m.into(), n.into()]));
        let bad: OpAttrs = [("axes".to_string(), "0,0".to_string())]
            .into_iter()
            .collect();
        let y = t(vec![2.into(), 3.into()]);
        assert!(Op::Permute.infer(&[y], &bad).is_err());
    }

    #[test]
    fn concat_sums_axis() {
        let n = Var::new("n");
        let a = t(vec![n.clone().into(), 8.into()]);
        let b = t(vec![1.into(), 8.into()]);
        let mut attrs = OpAttrs::new();
        attrs.insert("axis".into(), "0".into());
        let out = Op::Concat.infer(&[a, b], &attrs).unwrap();
        let expected = Analyzer::new().simplify(&(PrimExpr::from(n) + 1.into()));
        assert_eq!(out.tensor_dims().unwrap()[0], expected);
    }

    #[test]
    fn take_produces_gathered_shape() {
        let s = Var::new("s");
        let table = t(vec![32000.into(), 4096.into()]);
        let idx = StructInfo::tensor(vec![1.into(), s.clone().into()], DataType::F32);
        let out = Op::Take.infer(&[table, idx], &OpAttrs::new()).unwrap();
        assert_eq!(out, t(vec![1.into(), s.into(), 4096.into()]));
    }

    #[test]
    fn cast_changes_dtype_only() {
        let n = Var::new("n");
        let x = t(vec![n.clone().into()]);
        let attrs: OpAttrs = [("dtype".to_string(), "f16".to_string())]
            .into_iter()
            .collect();
        let out = Op::Cast.infer(&[x], &attrs).unwrap();
        assert_eq!(out, StructInfo::tensor(vec![n.into()], DataType::F16));
    }

    #[test]
    fn op_names_round_trip() {
        for &op in Op::all() {
            assert_eq!(Op::from_short_name(op.short_name()), Some(op));
            assert!(op.name().starts_with("relax."));
            assert_eq!(op.to_string(), op.short_name());
        }
        assert_eq!(Op::from_short_name("nope"), None);
    }

    #[test]
    fn split_and_slice_infer() {
        let n = Var::new("n");
        let x = t(vec![n.clone().into(), 8.into()]);
        let attrs: OpAttrs = [
            ("axis".to_string(), "1".to_string()),
            ("sections".to_string(), "2".to_string()),
        ]
        .into_iter()
        .collect();
        let out = Op::Split.infer(std::slice::from_ref(&x), &attrs).unwrap();
        match out {
            StructInfo::Tuple(fields) => {
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[0].tensor_dims().unwrap()[1], PrimExpr::Int(4));
            }
            other => panic!("expected tuple, got {other}"),
        }
        // Symbolic split axis records a floor division.
        let y = t(vec![n.clone().into()]);
        let sattrs: OpAttrs = [
            ("axis".to_string(), "0".to_string()),
            ("sections".to_string(), "2".to_string()),
        ]
        .into_iter()
        .collect();
        let out = Op::Split.infer(&[y], &sattrs).unwrap();
        let StructInfo::Tuple(fields) = out else {
            panic!()
        };
        assert_eq!(
            fields[0].tensor_dims().unwrap()[0],
            Analyzer::new().simplify(&PrimExpr::from(n).floor_div(2.into()))
        );
    }

    #[test]
    fn dtype_mismatch_rejected() {
        let a = StructInfo::tensor(vec![4.into()], DataType::F32);
        let b = StructInfo::tensor(vec![4.into()], DataType::F16);
        assert!(Op::Add.infer(&[a, b], &OpAttrs::new()).is_err());
    }
}
