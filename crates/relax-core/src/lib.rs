//! The Relax IR: a cross-level program abstraction with first-class
//! symbolic shapes for end-to-end dynamic machine learning.
//!
//! This crate implements the paper's primary contribution:
//!
//! - **Structural annotations** ([`StructInfo`], Table 1): `Object`,
//!   `Shape`, `Tensor`, `Tuple`, `Callable`, with tensor dimensions as
//!   symbolic integer expressions.
//! - **Dataflow blocks** ([`BindingBlock`] with [`BlockKind::Dataflow`]):
//!   side-effect-free straight-line regions where graph rewrites are always
//!   safe.
//! - **Cross-level calls** ([`Expr::CallTir`], [`Expr::CallDps`], Figure
//!   4/5): graph-level code invoking loop-level tensor programs and
//!   external libraries in destination-passing style, carrying output
//!   annotations and extra symbolic arguments.
//! - **First-class symbolic shapes** with [`Expr::MatchCast`] as the
//!   dynamic fallback (Figure 3), and **forward deduction** ([`deduce`])
//!   that instantiates callee signatures at call sites (Figure 7).
//! - A [`BlockBuilder`] that normalizes and deduces while constructing
//!   programs, an operator registry ([`Op`]) with per-operator inference
//!   and [`legalize`] rules, a well-formedness checker and a paper-style
//!   pretty printer.

#![forbid(unsafe_code)]

mod builder;
mod deduce;
mod expr;
mod module;
mod op;
mod parser;
mod printer;
mod struct_info;
mod wellformed;

pub use builder::{BlockBuilder, BuildError};
pub use deduce::{deduce, deduce_call_signature, shape_of, DeduceError};
pub use expr::{Binding, BindingBlock, BlockKind, Expr, Function, OpAttrs, Var};
pub use module::IRModule;
pub use op::{legalize, InferError, LegalizeError, Op};
pub use parser::{parse_functions, ParseError};
pub use printer::FunctionDisplay;
pub use struct_info::{unify_struct_info, Compat, ShapeDesc, StructInfo};
pub use wellformed::{assert_well_formed, check_module, WellFormedError};

// Re-export the data type so downstream users rarely need relax-arith
// directly.
pub use relax_arith::DataType;
