//! Pretty printer for Relax functions in the paper's Python-like notation.

use std::collections::BTreeSet;
use std::fmt;

use crate::expr::{BlockKind, Expr, Function};

/// Prints a function in the paper's notation (Figure 4 style).
pub(crate) fn print_function(
    name: &str,
    func: &Function,
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    write!(f, "def {name}(")?;
    for (i, p) in func.params.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{}: {}", p.name(), p.struct_info())?;
    }
    writeln!(f, "):")?;

    // Declare the symbolic variables used anywhere in the function.
    let mut sym_names: BTreeSet<String> = BTreeSet::new();
    for p in &func.params {
        for v in p.struct_info().free_symbolic_vars() {
            sym_names.insert(v.name().to_string());
        }
    }
    for b in func.bindings() {
        for v in b.var.struct_info().free_symbolic_vars() {
            sym_names.insert(v.name().to_string());
        }
    }
    if !sym_names.is_empty() {
        let names: Vec<String> = sym_names.into_iter().collect();
        let calls: Vec<&str> = names.iter().map(|_| "sym_var()").collect();
        writeln!(f, "  {} = {}", names.join(", "), calls.join(", "))?;
    }

    for block in &func.blocks {
        let indent = match block.kind {
            BlockKind::Dataflow => {
                writeln!(f, "  with dataflow():")?;
                "    "
            }
            BlockKind::Binding => "  ",
        };
        for b in &block.bindings {
            write!(f, "{indent}{}: {} = ", b.var.name(), b.var.struct_info())?;
            print_expr(&b.value, f)?;
            writeln!(f)?;
        }
    }
    write!(f, "  return ")?;
    print_expr(&func.ret, f)?;
    writeln!(f)
}

fn print_expr(expr: &Expr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match expr {
        Expr::Var(v) => write!(f, "{}", v.name()),
        Expr::Constant(arr) => write!(f, "const(shape={:?}, \"{}\")", arr.shape(), arr.dtype()),
        Expr::ShapeValue(dims) => {
            write!(f, "shape(")?;
            for (i, d) in dims.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{d}")?;
            }
            write!(f, ")")
        }
        Expr::PrimValue(e) => write!(f, "{e}"),
        Expr::Tuple(items) => {
            write!(f, "(")?;
            for (i, e) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                print_expr(e, f)?;
            }
            write!(f, ")")
        }
        Expr::TupleGetItem(e, i) => {
            print_expr(e, f)?;
            write!(f, "[{i}]")
        }
        Expr::CallOp { op, args, attrs } => {
            write!(f, "{}(", op.short_name())?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                print_expr(a, f)?;
            }
            for (k, v) in attrs {
                // Values containing commas (axis lists like `0,2,1,3`)
                // are bracketed so the parser can tell the value's commas
                // from argument separators.
                if v.contains(',') {
                    write!(f, ", {k}=[{v}]")?;
                } else {
                    write!(f, ", {k}={v}")?;
                }
            }
            write!(f, ")")
        }
        Expr::CallGlobal { func, args } => {
            write!(f, "{func}(")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                print_expr(a, f)?;
            }
            write!(f, ")")
        }
        Expr::CallTir {
            func,
            args,
            out_sinfo,
            sym_args,
        } => {
            write!(f, "call_tir({func}, [")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                print_expr(a, f)?;
            }
            write!(f, "], {out_sinfo}")?;
            if !sym_args.is_empty() {
                write!(f, ", sym_args=(")?;
                for (i, s) in sym_args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, ")")?;
            }
            write!(f, ")")
        }
        Expr::CallDps {
            func,
            args,
            out_sinfo,
        } => {
            write!(f, "call_dps_library(\"{func}\", [")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                print_expr(a, f)?;
            }
            write!(f, "], {out_sinfo})")
        }
        Expr::MatchCast { value, sinfo } => {
            write!(f, "match_cast(")?;
            print_expr(value, f)?;
            write!(f, ", {sinfo})")
        }
    }
}

/// Wrapper that displays a function with its name.
pub struct FunctionDisplay<'a> {
    /// Function name.
    pub name: &'a str,
    /// The function.
    pub func: &'a Function,
}

impl fmt::Display for FunctionDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        print_function(self.name, self.func, f)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::BlockBuilder;
    use crate::expr::Expr;
    use crate::op::Op;
    use crate::struct_info::StructInfo;
    use relax_arith::{DataType, Var as SV};

    #[test]
    fn module_prints_paper_style() {
        let mut bb = BlockBuilder::new();
        let n = SV::new("n");
        let params = bb.begin_function(
            "main",
            vec![(
                "x".into(),
                StructInfo::tensor(vec![n.into(), 128.into()], DataType::F32),
            )],
        );
        bb.begin_dataflow();
        let out = bb
            .emit_output(Expr::op_call(Op::Relu, vec![params[0].clone().into()]))
            .unwrap();
        bb.end_dataflow();
        bb.finish_function(out.into(), None).unwrap();
        let text = bb.finish().to_string();
        assert!(text.contains("def main(x: Tensor((n, 128), \"f32\")):"));
        assert!(text.contains("n = sym_var()"));
        assert!(text.contains("with dataflow():"));
        assert!(text.contains("lv0: Tensor((n, 128), \"f32\") = relu(x)"));
        assert!(text.contains("return lv0"));
    }
}
