//! Well-formedness checking for Relax modules.

use std::collections::HashSet;
use std::fmt;

use crate::expr::{BlockKind, Expr, Function, Var};
use crate::module::IRModule;

/// A well-formedness violation.
#[derive(Debug, Clone, PartialEq)]
pub enum WellFormedError {
    /// A variable was used before being bound.
    UseBeforeDef {
        /// Function name.
        func: String,
        /// Variable name.
        var: String,
    },
    /// A dataflow-scoped variable escaped its dataflow block.
    DataflowVarEscapes {
        /// Function name.
        func: String,
        /// Variable name.
        var: String,
    },
    /// A `call_tir` referenced a tensor program not in the module.
    MissingTirFunc {
        /// Function name.
        func: String,
        /// Missing tensor program name.
        callee: String,
    },
    /// A subgraph call referenced a function not in the module.
    MissingGlobal {
        /// Function name.
        func: String,
        /// Missing callee name.
        callee: String,
    },
    /// A `call_tir` passed a number of arguments inconsistent with the
    /// callee's input parameters.
    CallTirArity {
        /// Function name.
        func: String,
        /// The tensor program.
        callee: String,
        /// Inputs expected.
        expected: usize,
        /// Arguments given.
        actual: usize,
    },
}

impl fmt::Display for WellFormedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WellFormedError::UseBeforeDef { func, var } => {
                write!(f, "{func}: variable `{var}` used before definition")
            }
            WellFormedError::DataflowVarEscapes { func, var } => {
                write!(f, "{func}: dataflow variable `{var}` escapes its block")
            }
            WellFormedError::MissingTirFunc { func, callee } => {
                write!(f, "{func}: call_tir target `{callee}` not in module")
            }
            WellFormedError::MissingGlobal { func, callee } => {
                write!(f, "{func}: callee `{callee}` not in module")
            }
            WellFormedError::CallTirArity {
                func,
                callee,
                expected,
                actual,
            } => write!(
                f,
                "{func}: call_tir `{callee}` expects {expected} inputs, got {actual}"
            ),
        }
    }
}

impl std::error::Error for WellFormedError {}

/// Checks every function in the module; returns all violations found.
pub fn check_module(module: &IRModule) -> Vec<WellFormedError> {
    let mut errors = Vec::new();
    for (name, func) in module.functions() {
        check_function(name, func, module, &mut errors);
    }
    errors
}

/// Convenience wrapper returning `Err` on the first violation.
///
/// # Errors
///
/// Returns the first [`WellFormedError`] encountered.
pub fn assert_well_formed(module: &IRModule) -> Result<(), WellFormedError> {
    match check_module(module).into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn check_function(
    name: &str,
    func: &Function,
    module: &IRModule,
    errors: &mut Vec<WellFormedError>,
) {
    let mut defined: HashSet<u64> = func.params.iter().map(Var::id).collect();
    let mut dataflow_scope: HashSet<u64> = HashSet::new();

    for block in &func.blocks {
        let is_dataflow = block.kind == BlockKind::Dataflow;
        if is_dataflow {
            dataflow_scope.clear();
        }
        for binding in &block.bindings {
            check_expr(
                name,
                &binding.value,
                &defined,
                &dataflow_scope,
                is_dataflow,
                module,
                errors,
            );
            defined.insert(binding.var.id());
            if binding.var.is_dataflow() {
                dataflow_scope.insert(binding.var.id());
            }
        }
        if is_dataflow {
            // Variables scoped to this block may not be used later.
            for v in &dataflow_scope.clone() {
                defined.remove(v);
            }
        }
    }

    let mut used = Vec::new();
    func.ret.collect_used_vars(&mut used);
    for v in used {
        if !defined.contains(&v.id()) {
            let err = if v.is_dataflow() {
                WellFormedError::DataflowVarEscapes {
                    func: name.to_string(),
                    var: v.name().to_string(),
                }
            } else {
                WellFormedError::UseBeforeDef {
                    func: name.to_string(),
                    var: v.name().to_string(),
                }
            };
            errors.push(err);
        }
    }
}

fn check_expr(
    func_name: &str,
    expr: &Expr,
    defined: &HashSet<u64>,
    dataflow_scope: &HashSet<u64>,
    in_dataflow: bool,
    module: &IRModule,
    errors: &mut Vec<WellFormedError>,
) {
    let mut used = Vec::new();
    expr.collect_used_vars(&mut used);
    for v in used {
        let visible =
            defined.contains(&v.id()) || (in_dataflow && dataflow_scope.contains(&v.id()));
        if !visible {
            let err = if v.is_dataflow() && !in_dataflow {
                WellFormedError::DataflowVarEscapes {
                    func: func_name.to_string(),
                    var: v.name().to_string(),
                }
            } else {
                WellFormedError::UseBeforeDef {
                    func: func_name.to_string(),
                    var: v.name().to_string(),
                }
            };
            errors.push(err);
        }
    }
    match expr {
        Expr::CallTir { func, args, .. } => match module.tir_func(func) {
            None => errors.push(WellFormedError::MissingTirFunc {
                func: func_name.to_string(),
                callee: func.clone(),
            }),
            Some(prim) => {
                // Inputs only; outputs are implicit in DPS.
                let expected = prim.inputs().len();
                if args.len() != expected {
                    errors.push(WellFormedError::CallTirArity {
                        func: func_name.to_string(),
                        callee: func.clone(),
                        expected,
                        actual: args.len(),
                    });
                }
            }
        },
        Expr::CallGlobal { func, .. } if module.function(func).is_none() => {
            errors.push(WellFormedError::MissingGlobal {
                func: func_name.to_string(),
                callee: func.clone(),
            });
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BlockBuilder;
    use crate::expr::{Binding, BindingBlock, OpAttrs};
    use crate::op::Op;
    use crate::struct_info::StructInfo;
    use relax_arith::DataType;

    #[test]
    fn builder_output_is_well_formed() {
        let mut bb = BlockBuilder::new();
        let p = bb.begin_function(
            "main",
            vec![(
                "x".into(),
                StructInfo::tensor(vec![4.into()], DataType::F32),
            )],
        );
        bb.begin_dataflow();
        let out = bb
            .emit_output(Expr::op_call(Op::Relu, vec![p[0].clone().into()]))
            .unwrap();
        bb.end_dataflow();
        bb.finish_function(out.into(), None).unwrap();
        let m = bb.finish();
        assert!(check_module(&m).is_empty());
        assert!(assert_well_formed(&m).is_ok());
    }

    #[test]
    fn dataflow_escape_is_caught() {
        let s = StructInfo::tensor(vec![4.into()], DataType::F32);
        let p = Var::new("x", s.clone());
        let lv = Var::new_dataflow("lv0", s.clone());
        let func = Function {
            params: vec![p.clone()],
            blocks: vec![BindingBlock {
                kind: BlockKind::Dataflow,
                bindings: vec![Binding {
                    var: lv.clone(),
                    value: Expr::op_call(Op::Relu, vec![p.into()]),
                }],
            }],
            // Returning a dataflow var outside its block is illegal.
            ret: lv.into(),
            ret_sinfo: s,
            attrs: OpAttrs::new(),
        };
        let mut m = IRModule::new();
        m.add_function("bad", func);
        let errors = check_module(&m);
        assert!(errors
            .iter()
            .any(|e| matches!(e, WellFormedError::DataflowVarEscapes { .. })));
    }

    #[test]
    fn missing_callees_are_caught() {
        let s = StructInfo::tensor(vec![4.into()], DataType::F32);
        let p = Var::new("x", s.clone());
        let lv = Var::new("lv0", s.clone());
        let func = Function {
            params: vec![p.clone()],
            blocks: vec![BindingBlock {
                kind: BlockKind::Binding,
                bindings: vec![Binding {
                    var: lv.clone(),
                    value: Expr::CallTir {
                        func: "ghost".into(),
                        args: vec![p.into()],
                        out_sinfo: s.clone(),
                        sym_args: vec![],
                    },
                }],
            }],
            ret: lv.into(),
            ret_sinfo: s,
            attrs: OpAttrs::new(),
        };
        let mut m = IRModule::new();
        m.add_function("f", func);
        let errors = check_module(&m);
        assert!(errors
            .iter()
            .any(|e| matches!(e, WellFormedError::MissingTirFunc { .. })));
    }

    #[test]
    fn use_before_def_is_caught() {
        let s = StructInfo::tensor(vec![4.into()], DataType::F32);
        let ghost = Var::new("ghost", s.clone());
        let lv = Var::new("lv0", s.clone());
        let func = Function {
            params: vec![],
            blocks: vec![BindingBlock {
                kind: BlockKind::Binding,
                bindings: vec![Binding {
                    var: lv.clone(),
                    value: Expr::op_call(Op::Relu, vec![ghost.into()]),
                }],
            }],
            ret: lv.into(),
            ret_sinfo: s,
            attrs: OpAttrs::new(),
        };
        let mut m = IRModule::new();
        m.add_function("f", func);
        assert!(matches!(
            assert_well_formed(&m),
            Err(WellFormedError::UseBeforeDef { .. })
        ));
    }
}
