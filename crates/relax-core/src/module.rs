//! The IRModule: the unit of compilation holding graph-level functions and
//! loop-level tensor programs side by side — the cross-level abstraction.

use std::collections::BTreeMap;
use std::fmt;

use relax_tir::PrimFunc;

use crate::expr::Function;

/// A module containing both graph-level [`Function`]s and loop-level
/// [`PrimFunc`] tensor programs, plus the names of external library
/// functions it references.
///
/// Having all levels in one module is what lets passes *partially lower*,
/// read loop-level analysis results from the graph level, and jointly
/// rewrite both levels (§3.3).
///
/// # Examples
///
/// ```
/// use relax_core::IRModule;
/// let m = IRModule::new();
/// assert!(m.functions().next().is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct IRModule {
    funcs: BTreeMap<String, Function>,
    tir_funcs: BTreeMap<String, PrimFunc>,
}

impl IRModule {
    /// Creates an empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a graph-level function under `name`.
    pub fn add_function(&mut self, name: impl Into<String>, func: Function) {
        self.funcs.insert(name.into(), func);
    }

    /// Adds a tensor program, uniquifying its name if taken. Returns the
    /// name under which it was registered.
    pub fn add_tir_func(&mut self, func: PrimFunc) -> String {
        let base = func.name().to_string();
        let name = self.fresh_tir_name(&base);
        let func = if name == base {
            func
        } else {
            func.renamed(name.clone())
        };
        self.tir_funcs.insert(name.clone(), func);
        name
    }

    /// Replaces a tensor program under an exact name.
    pub fn set_tir_func(&mut self, name: impl Into<String>, func: PrimFunc) {
        self.tir_funcs.insert(name.into(), func);
    }

    /// Removes a graph-level function.
    pub fn remove_function(&mut self, name: &str) -> Option<Function> {
        self.funcs.remove(name)
    }

    /// Removes a tensor program.
    pub fn remove_tir_func(&mut self, name: &str) -> Option<PrimFunc> {
        self.tir_funcs.remove(name)
    }

    /// Looks up a graph-level function.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.funcs.get(name)
    }

    /// Looks up a tensor program.
    pub fn tir_func(&self, name: &str) -> Option<&PrimFunc> {
        self.tir_funcs.get(name)
    }

    /// Iterates over graph-level functions in name order.
    pub fn functions(&self) -> impl Iterator<Item = (&String, &Function)> {
        self.funcs.iter()
    }

    /// Iterates over tensor programs in name order.
    pub fn tir_funcs(&self) -> impl Iterator<Item = (&String, &PrimFunc)> {
        self.tir_funcs.iter()
    }

    /// Names of all graph-level functions.
    pub fn function_names(&self) -> Vec<String> {
        self.funcs.keys().cloned().collect()
    }

    /// Returns a name not yet used by any tensor program, derived from
    /// `base`.
    pub fn fresh_tir_name(&self, base: &str) -> String {
        if !self.tir_funcs.contains_key(base) {
            return base.to_string();
        }
        let mut i = 1;
        loop {
            let candidate = format!("{base}{i}");
            if !self.tir_funcs.contains_key(&candidate) {
                return candidate;
            }
            i += 1;
        }
    }

    /// Returns a name not yet used by any graph-level function.
    pub fn fresh_function_name(&self, base: &str) -> String {
        if !self.funcs.contains_key(base) {
            return base.to_string();
        }
        let mut i = 1;
        loop {
            let candidate = format!("{base}{i}");
            if !self.funcs.contains_key(&candidate) {
                return candidate;
            }
            i += 1;
        }
    }
}

impl fmt::Display for IRModule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, func) in &self.funcs {
            crate::printer::print_function(name, func, f)?;
            writeln!(f)?;
        }
        for func in self.tir_funcs.values() {
            writeln!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relax_arith::DataType;
    use relax_tir::{Buffer, Stmt};

    fn dummy_tir(name: &str) -> PrimFunc {
        let x = Buffer::new("X", vec![1.into()], DataType::F32);
        PrimFunc::new(name, vec![x], 1, Stmt::Evaluate)
    }

    #[test]
    fn tir_names_are_uniquified() {
        let mut m = IRModule::new();
        let a = m.add_tir_func(dummy_tir("mm"));
        let b = m.add_tir_func(dummy_tir("mm"));
        assert_eq!(a, "mm");
        assert_eq!(b, "mm1");
        assert!(m.tir_func("mm").is_some());
        assert!(m.tir_func("mm1").is_some());
        assert_eq!(m.tir_func("mm1").unwrap().name(), "mm1");
    }

    #[test]
    fn lookup_and_removal() {
        let mut m = IRModule::new();
        m.add_tir_func(dummy_tir("f"));
        assert!(m.remove_tir_func("f").is_some());
        assert!(m.tir_func("f").is_none());
    }
}
