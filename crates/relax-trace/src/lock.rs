//! Lock-wait instrumentation: per-site contention counters and a
//! `try_lock`-first acquisition helper.
//!
//! Each instrumented call site declares one `static` [`LockSite`].
//! [`LockSite::lock`] (and [`LockSite::write`] / [`LockSite::read`] for
//! `RwLock`s) first attempts a non-blocking acquisition; only when that
//! fails does it time the blocking wait, bump the site's counters and —
//! if tracing is enabled — emit a [`Payload::Lock`] instant. The
//! uncontended fast path therefore costs exactly one `try_lock`, and a
//! site that never contends never registers, never allocates and never
//! appears in [`lock_wait_stats`].
//!
//! The counters are process-global and always on (they are only touched
//! on the contended slow path, where the thread just blocked anyway).
//! Benchmarks snapshot them with [`lock_wait_stats`] and zero them with
//! [`reset_lock_wait_stats`] between scenarios.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use crate::event::Payload;

/// One instrumented lock site: a stable name plus contended-wait
/// counters. Declare as `static SITE: LockSite = LockSite::new("…")` at
/// the call site and route acquisitions through it.
pub struct LockSite {
    name: &'static str,
    registered: AtomicBool,
    waits: AtomicU64,
    total_wait_ns: AtomicU64,
    max_wait_ns: AtomicU64,
}

/// Snapshot of one site's counters, as returned by [`lock_wait_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockWaitStat {
    /// The site name passed to [`LockSite::new`].
    pub site: &'static str,
    /// Number of acquisitions that had to block.
    pub waits: u64,
    /// Total nanoseconds spent blocked across those acquisitions.
    pub total_wait_ns: u64,
    /// Longest single blocked acquisition, in nanoseconds.
    pub max_wait_ns: u64,
}

/// Sites that have recorded at least one contended wait. Appended to
/// once per site (guarded by `LockSite::registered`); snapshots read it
/// briefly under the mutex.
fn registry() -> &'static Mutex<Vec<&'static LockSite>> {
    static REGISTRY: OnceLock<Mutex<Vec<&'static LockSite>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

impl LockSite {
    /// A new site with zeroed counters. `const` so it can back a
    /// `static` at the call site.
    pub const fn new(name: &'static str) -> Self {
        LockSite {
            name,
            registered: AtomicBool::new(false),
            waits: AtomicU64::new(0),
            total_wait_ns: AtomicU64::new(0),
            max_wait_ns: AtomicU64::new(0),
        }
    }

    /// Records one contended wait of `waited` against this site.
    /// Exposed so callers that block on condvars (not lock guards) can
    /// report through the same table.
    pub fn record_wait(&'static self, waited: Duration) {
        let ns = waited.as_nanos().min(u64::MAX as u128) as u64;
        self.waits.fetch_add(1, Ordering::Relaxed);
        self.total_wait_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_wait_ns.fetch_max(ns, Ordering::Relaxed);
        if !self.registered.swap(true, Ordering::Relaxed) {
            let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
            reg.push(self);
        }
        if crate::enabled() {
            crate::instant(
                "lock",
                || format!("lock_wait:{}", self.name),
                || Payload::Lock {
                    site: self.name,
                    wait_ns: ns,
                },
            );
        }
    }

    /// Acquires `m`, timing the wait only if `try_lock` fails. Poisoned
    /// locks are recovered (this crate never leaves data in a
    /// torn state under a guard).
    pub fn lock<'a, T>(&'static self, m: &'a Mutex<T>) -> MutexGuard<'a, T> {
        match m.try_lock() {
            Ok(g) => return g,
            Err(std::sync::TryLockError::Poisoned(e)) => return e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {}
        }
        let start = Instant::now();
        let g = m.lock().unwrap_or_else(|e| e.into_inner());
        self.record_wait(start.elapsed());
        g
    }

    /// Read-acquires `rw`, timing the wait only if `try_read` fails.
    pub fn read<'a, T>(&'static self, rw: &'a RwLock<T>) -> RwLockReadGuard<'a, T> {
        match rw.try_read() {
            Ok(g) => return g,
            Err(std::sync::TryLockError::Poisoned(e)) => return e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {}
        }
        let start = Instant::now();
        let g = rw.read().unwrap_or_else(|e| e.into_inner());
        self.record_wait(start.elapsed());
        g
    }

    /// Write-acquires `rw`, timing the wait only if `try_write` fails.
    pub fn write<'a, T>(&'static self, rw: &'a RwLock<T>) -> RwLockWriteGuard<'a, T> {
        match rw.try_write() {
            Ok(g) => return g,
            Err(std::sync::TryLockError::Poisoned(e)) => return e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {}
        }
        let start = Instant::now();
        let g = rw.write().unwrap_or_else(|e| e.into_inner());
        self.record_wait(start.elapsed());
        g
    }
}

/// Snapshot of every site that has recorded at least one contended
/// wait, sorted by total wait time (largest first). Sites whose
/// counters were zeroed by [`reset_lock_wait_stats`] but which have
/// seen no contention since are omitted.
pub fn lock_wait_stats() -> Vec<LockWaitStat> {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    let mut out: Vec<LockWaitStat> = reg
        .iter()
        .map(|s| LockWaitStat {
            site: s.name,
            waits: s.waits.load(Ordering::Relaxed),
            total_wait_ns: s.total_wait_ns.load(Ordering::Relaxed),
            max_wait_ns: s.max_wait_ns.load(Ordering::Relaxed),
        })
        .filter(|s| s.waits > 0)
        .collect();
    out.sort_by(|a, b| b.total_wait_ns.cmp(&a.total_wait_ns).then(a.site.cmp(b.site)));
    out
}

/// Zeroes every registered site's counters. Registration persists, so a
/// site re-appears in [`lock_wait_stats`] as soon as it contends again.
pub fn reset_lock_wait_stats() {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    for s in reg.iter() {
        s.waits.store(0, Ordering::Relaxed);
        s.total_wait_ns.store(0, Ordering::Relaxed);
        s.max_wait_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn uncontended_lock_records_nothing() {
        static SITE: LockSite = LockSite::new("test.uncontended");
        let m = Mutex::new(0u32);
        for _ in 0..100 {
            *SITE.lock(&m) += 1;
        }
        assert_eq!(*SITE.lock(&m), 100);
        assert!(lock_wait_stats().iter().all(|s| s.site != "test.uncontended"));
    }

    #[test]
    fn contended_lock_is_counted_once_per_blocked_acquisition() {
        static SITE: LockSite = LockSite::new("test.contended");
        let m = Arc::new(Mutex::new(()));
        let held = m.lock().unwrap();
        let m2 = Arc::clone(&m);
        let t = std::thread::spawn(move || {
            let _g = SITE.lock(&m2);
        });
        // Hold long enough that the spawned thread's try_lock loses.
        std::thread::sleep(Duration::from_millis(20));
        drop(held);
        t.join().unwrap();
        let stats = lock_wait_stats();
        let s = stats.iter().find(|s| s.site == "test.contended").unwrap();
        assert_eq!(s.waits, 1);
        assert!(s.total_wait_ns > 0);
        assert_eq!(s.max_wait_ns, s.total_wait_ns);
    }

    #[test]
    fn reset_zeroes_counters_but_keeps_registration() {
        static SITE: LockSite = LockSite::new("test.reset");
        SITE.record_wait(Duration::from_micros(5));
        assert!(lock_wait_stats().iter().any(|s| s.site == "test.reset"));
        reset_lock_wait_stats();
        assert!(lock_wait_stats().iter().all(|s| s.site != "test.reset"));
        SITE.record_wait(Duration::from_micros(7));
        let stats = lock_wait_stats();
        let s = stats.iter().find(|s| s.site == "test.reset").unwrap();
        assert_eq!(s.waits, 1);
    }

    #[test]
    fn rwlock_paths_recover_from_contention() {
        static SITE: LockSite = LockSite::new("test.rwlock");
        let rw = Arc::new(RwLock::new(1u32));
        assert_eq!(*SITE.read(&rw), 1);
        *SITE.write(&rw) = 2;
        assert_eq!(*SITE.read(&rw), 2);
    }
}
