//! The global lock-sharded trace buffer and the drained [`Trace`].
//!
//! Events land in one of [`SHARD_COUNT`] `Mutex<Vec<TraceEvent>>` shards
//! picked by the emitting thread's trace-local id, so concurrent
//! emitters rarely contend on the same lock and one record is never
//! interleaved with another. The buffer is bounded: when a shard is at
//! capacity an *opening* event (Begin, AsyncBegin, Instant) is counted
//! in a drop counter instead of stored, and the emitting span is marked
//! unrecorded so its close is skipped too. *Closing* events (End,
//! AsyncEnd) are exempt from the capacity check: a close is only ever
//! emitted for a span whose open was stored, so each shard holds at
//! most `capacity` opens plus their matched closes — occupancy stays
//! bounded and a drained trace stays balanced even when a shard fills
//! mid-span.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::event::{EventKind, SpanId, TraceEvent};

/// Number of independently locked shards.
const SHARD_COUNT: usize = 16;

/// Default total event capacity across all shards.
pub const DEFAULT_CAPACITY: usize = 1 << 18;

static SHARDS: [Mutex<Vec<TraceEvent>>; SHARD_COUNT] =
    [const { Mutex::new(Vec::new()) }; SHARD_COUNT];
static CAP_PER_SHARD: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY / SHARD_COUNT);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static SEQ: AtomicU64 = AtomicU64::new(0);
static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// Allocates a fresh nonzero span id.
pub(crate) fn next_span_id() -> SpanId {
    NEXT_ID.fetch_add(1, Ordering::Relaxed) + 1
}

/// Stores `event` (stamping its global sequence number), or counts a
/// drop if the emitting thread's shard is full. Returns `true` when the
/// event was stored.
///
/// Close events (End, AsyncEnd) bypass the capacity check and are
/// always stored: callers only emit a close for a span whose open was
/// stored, so every close admitted here matches a stored open and the
/// overshoot per shard is bounded by the number of stored opens. This
/// keeps a drained trace Begin/End-balanced even when a shard fills
/// between a span's open and its close.
pub(crate) fn push(mut event: TraceEvent) -> bool {
    let is_close = matches!(event.kind, EventKind::End | EventKind::AsyncEnd);
    let shard = &SHARDS[(event.tid as usize) % SHARD_COUNT];
    let mut events = shard.lock().unwrap_or_else(|e| e.into_inner());
    if !is_close && events.len() >= CAP_PER_SHARD.load(Ordering::Relaxed) {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return false;
    }
    event.seq = SEQ.fetch_add(1, Ordering::Relaxed) + 1;
    events.push(event);
    true
}

/// Sets the total buffer capacity (split evenly across shards, at least
/// one event per shard). Takes effect for subsequent events; already
/// stored events are kept.
pub fn set_capacity(total: usize) {
    CAP_PER_SHARD.store((total / SHARD_COUNT).max(1), Ordering::Relaxed);
}

/// Events dropped since the last [`take`]/[`clear`].
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Drains every shard into a single [`Trace`] ordered by emission
/// sequence, and resets the drop counter.
pub fn take() -> Trace {
    let mut events = Vec::new();
    for shard in &SHARDS {
        events.append(&mut *shard.lock().unwrap_or_else(|e| e.into_inner()));
    }
    events.sort_by_key(|e| e.seq);
    Trace {
        events,
        dropped: DROPPED.swap(0, Ordering::Relaxed),
    }
}

/// Discards all buffered events and resets the drop counter.
pub fn clear() {
    for shard in &SHARDS {
        shard.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
    DROPPED.store(0, Ordering::Relaxed);
}

/// A drained trace: every buffered event in emission order, plus how
/// many events the bounded buffer had to drop.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events ordered by [`TraceEvent::seq`].
    pub events: Vec<TraceEvent>,
    /// Events dropped at capacity while this trace was recorded.
    pub dropped: u64,
}

impl Trace {
    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Counts closed synchronous spans in `cat` whose name starts with
    /// `name_prefix` (each Begin/End pair counts once).
    pub fn sync_span_count(&self, cat: &str, name_prefix: &str) -> usize {
        self.events
            .iter()
            .filter(|e| {
                e.kind == EventKind::Begin && e.cat == cat && e.name.starts_with(name_prefix)
            })
            .count()
    }

    /// Exports the trace as Chrome trace-event JSON. See
    /// [`crate::chrome_json`].
    pub fn chrome_json(&self) -> String {
        crate::chrome::chrome_json(self)
    }

    /// Renders the plain-text flame summary. See
    /// [`crate::flame_summary`].
    pub fn flame_summary(&self) -> String {
        crate::flame::flame_summary(self)
    }

    /// Checks span-tree well-formedness:
    ///
    /// - sequence numbers are unique and strictly increasing;
    /// - timestamps are monotonic per thread;
    /// - per thread, Begin/End events nest like brackets and agree on
    ///   span id and name, and every opened span is closed;
    /// - async begin/end events pair up one-to-one on `(cat, name, id)`
    ///   with begin preceding end;
    /// - every recorded parent id refers to a span whose begin event
    ///   precedes the child's.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut last_seq = 0u64;
        let mut last_ts: HashMap<u64, u64> = HashMap::new();
        let mut stacks: HashMap<u64, Vec<(SpanId, String)>> = HashMap::new();
        let mut begun: HashSet<SpanId> = HashSet::new();
        let mut async_open: HashMap<SpanId, (String, String)> = HashMap::new();

        for e in &self.events {
            if e.seq <= last_seq {
                return Err(format!(
                    "event `{}`: seq {} not increasing (previous {})",
                    e.name, e.seq, last_seq
                ));
            }
            last_seq = e.seq;
            let prev_ts = last_ts.entry(e.tid).or_insert(0);
            if e.ts_ns < *prev_ts {
                return Err(format!(
                    "event `{}`: ts {}ns goes backwards on tid {} (previous {}ns)",
                    e.name, e.ts_ns, e.tid, prev_ts
                ));
            }
            *prev_ts = e.ts_ns;

            if let Some(parent) = e.parent {
                if !begun.contains(&parent) {
                    return Err(format!(
                        "event `{}`: parent span {} does not precede it",
                        e.name, parent
                    ));
                }
            }

            match e.kind {
                EventKind::Begin => {
                    if !begun.insert(e.id) {
                        return Err(format!("span id {} begun twice (`{}`)", e.id, e.name));
                    }
                    stacks
                        .entry(e.tid)
                        .or_default()
                        .push((e.id, e.name.clone()));
                }
                EventKind::End => {
                    let stack = stacks.entry(e.tid).or_default();
                    match stack.pop() {
                        Some((id, name)) if id == e.id && name == e.name => {}
                        Some((id, name)) => {
                            return Err(format!(
                                "tid {}: end of `{}` (id {}) does not match open `{}` (id {})",
                                e.tid, e.name, e.id, name, id
                            ));
                        }
                        None => {
                            return Err(format!(
                                "tid {}: end of `{}` with no open span",
                                e.tid, e.name
                            ));
                        }
                    }
                }
                EventKind::AsyncBegin => {
                    if !begun.insert(e.id) {
                        return Err(format!("span id {} begun twice (`{}`)", e.id, e.name));
                    }
                    if async_open
                        .insert(e.id, (e.cat.to_string(), e.name.clone()))
                        .is_some()
                    {
                        return Err(format!("async span {} opened twice", e.id));
                    }
                }
                EventKind::AsyncEnd => match async_open.remove(&e.id) {
                    Some((cat, name)) if cat == e.cat && name == e.name => {}
                    Some((cat, name)) => {
                        return Err(format!(
                            "async end `{}:{}` (id {}) does not match begin `{}:{}`",
                            e.cat, e.name, e.id, cat, name
                        ));
                    }
                    None => {
                        return Err(format!(
                            "async end `{}` (id {}) without a begin",
                            e.name, e.id
                        ));
                    }
                },
                EventKind::Instant => {}
            }
        }

        for (tid, stack) in &stacks {
            if let Some((id, name)) = stack.last() {
                return Err(format!(
                    "tid {tid}: span `{name}` (id {id}) was never closed"
                ));
            }
        }
        if let Some((id, (_, name))) = async_open.iter().next() {
            return Err(format!("async span `{name}` (id {id}) was never closed"));
        }
        Ok(())
    }
}
