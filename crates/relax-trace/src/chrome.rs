//! Chrome trace-event JSON: exporter and in-repo validator.
//!
//! The exporter writes the "JSON object format" understood by
//! `chrome://tracing` and Perfetto: a `traceEvents` array of objects
//! with `ph` phases `"B"`/`"E"` (synchronous, nested per thread),
//! `"b"`/`"e"` (asynchronous, matched by category + name + id across
//! threads) and `"i"` (instant), timestamps in microseconds. The
//! validator re-parses that JSON with a small in-repo parser (the
//! workspace has no serde) and re-checks the invariants a viewer relies
//! on: balanced B/E per thread, monotonic timestamps per thread, and
//! paired async events.

use std::collections::HashMap;

use crate::buffer::Trace;
use crate::event::{EventKind, Payload, TraceEvent};

/// Escapes a string for a JSON literal (quotes, backslashes, control
/// characters).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a payload as the members of a Chrome `args` object (no
/// surrounding braces; empty string for [`Payload::None`]).
fn payload_args(p: &Payload) -> String {
    match p {
        Payload::None => String::new(),
        Payload::Pass { pass, changed } => {
            format!("\"pass\":\"{}\",\"changed\":{changed}", esc(pass))
        }
        Payload::Kernel {
            kernel,
            shapes,
            cache,
        } => {
            let mut s = format!("\"kernel\":\"{}\",\"shapes\":\"{}\"", esc(kernel), esc(shapes));
            if let Some(c) = cache {
                s.push_str(&format!(",\"cache\":\"{}\"", c.label()));
            }
            s
        }
        Payload::Request { request, phase } => {
            format!("\"request\":{request},\"phase\":\"{}\"", phase.label())
        }
        Payload::Session { session, phase } => {
            format!("\"session\":{session},\"phase\":\"{}\"", phase.label())
        }
        Payload::Worker { worker, event } => {
            format!("\"worker\":{worker},\"event\":\"{}\"", event.label())
        }
        Payload::Lock { site, wait_ns } => {
            format!("\"site\":\"{}\",\"wait_ns\":{wait_ns}", esc(site))
        }
    }
}

/// One trace event as a Chrome JSON object.
fn event_json(e: &TraceEvent) -> String {
    let ph = match e.kind {
        EventKind::Begin => "B",
        EventKind::End => "E",
        EventKind::AsyncBegin => "b",
        EventKind::AsyncEnd => "e",
        EventKind::Instant => "i",
    };
    let ts_us = e.ts_ns / 1_000;
    let ts_frac = e.ts_ns % 1_000;
    let mut args = payload_args(&e.payload);
    if let Some(parent) = e.parent {
        if !args.is_empty() {
            args.push(',');
        }
        args.push_str(&format!("\"parent_span\":{parent}"));
    }
    let mut obj = format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{ph}\",\"ts\":{ts_us}.{ts_frac:03},\"pid\":1,\"tid\":{}",
        esc(&e.name),
        e.cat,
        e.tid
    );
    match e.kind {
        // Async events are matched by (cat, name, id); instants carry
        // thread scope.
        EventKind::AsyncBegin | EventKind::AsyncEnd => {
            obj.push_str(&format!(",\"id\":{}", e.id));
        }
        EventKind::Instant => obj.push_str(",\"s\":\"t\""),
        EventKind::Begin | EventKind::End => {}
    }
    if !args.is_empty() {
        obj.push_str(&format!(",\"args\":{{{args}}}"));
    }
    obj.push('}');
    obj
}

/// Exports a drained [`Trace`] as Chrome trace-event JSON, loadable in
/// `chrome://tracing` or <https://ui.perfetto.dev>. The top-level object
/// also records how many events the bounded buffer dropped.
pub fn chrome_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.events.len() * 96 + 128);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, e) in trace.events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&event_json(e));
    }
    out.push_str(&format!(
        "\n],\"otherData\":{{\"dropped\":{}}}}}\n",
        trace.dropped
    ));
    out
}

// ---------------------------------------------------------------------
// Mini JSON parser — just enough to re-validate exported traces.
// ---------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char,
                self.pos,
                self.src
                    .get(self.pos)
                    .map(|&c| (c as char).to_string())
                    .unwrap_or_else(|| "eof".to_string())
            ))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.src.get(self.pos) else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.src.get(self.pos) else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .src
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                other => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    if other < 0x80 {
                        out.push(other as char);
                    } else {
                        let start = self.pos - 1;
                        let mut end = self.pos;
                        while end < self.src.len() && (self.src[end] & 0xC0) == 0x80 {
                            end += 1;
                        }
                        out.push_str(
                            std::str::from_utf8(&self.src[start..end])
                                .map_err(|e| e.to_string())?,
                        );
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .src
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_digit() || b"+-.eE".contains(&b))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    let key = self.string()?;
                    self.expect(b':')?;
                    members.push((key, self.value()?));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(members));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(_) => Ok(Json::Num(self.number()?)),
            None => Err("unexpected end of input".to_string()),
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// A description of the first syntax error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = JsonParser {
        src: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// Counts reported by [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChromeStats {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// Matched synchronous `B`/`E` pairs.
    pub sync_pairs: usize,
    /// Matched asynchronous `b`/`e` pairs.
    pub async_pairs: usize,
    /// Instant (`i`) events.
    pub instants: usize,
    /// Distinct thread ids seen.
    pub threads: usize,
    /// Events the exporter reported dropped at the buffer.
    pub dropped: u64,
}

/// Validates exported Chrome trace JSON from the text up: parses it with
/// the in-repo JSON parser, then checks that `B`/`E` events are balanced
/// and properly nested per thread (matching names), timestamps are
/// monotonic per thread, and async `b`/`e` events pair on
/// `(cat, name, id)`.
///
/// # Errors
///
/// A description of the first syntax or structural violation.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeStats, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .ok_or("missing `traceEvents` array")?;

    let mut stats = ChromeStats {
        events: events.len(),
        dropped: doc
            .get("otherData")
            .and_then(|o| o.get("dropped"))
            .and_then(|d| d.as_f64())
            .unwrap_or(0.0) as u64,
        ..ChromeStats::default()
    };
    let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
    let mut last_ts: HashMap<u64, f64> = HashMap::new();
    let mut async_open: HashMap<(String, String, u64), usize> = HashMap::new();

    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing `ph`"))?;
        let tid = e
            .get("tid")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("event {i}: missing `tid`"))? as u64;
        let ts = e
            .get("ts")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("event {i}: missing `ts`"))?;
        let name = e.get("name").and_then(|v| v.as_str()).unwrap_or_default();

        let prev = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
        if ts < *prev {
            return Err(format!(
                "event {i} (`{name}`): ts {ts} goes backwards on tid {tid} (previous {prev})"
            ));
        }
        *prev = ts;

        match ph {
            "B" => stacks.entry(tid).or_default().push(name.to_string()),
            "E" => {
                let stack = stacks.entry(tid).or_default();
                match stack.pop() {
                    Some(open) if open == name => stats.sync_pairs += 1,
                    Some(open) => {
                        return Err(format!(
                            "event {i}: tid {tid} E `{name}` does not match open B `{open}`"
                        ));
                    }
                    None => {
                        return Err(format!("event {i}: tid {tid} E `{name}` with empty stack"));
                    }
                }
            }
            "b" | "e" => {
                let cat = e.get("cat").and_then(|v| v.as_str()).unwrap_or_default();
                let id = e
                    .get("id")
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("event {i}: async event missing `id`"))?
                    as u64;
                let key = (cat.to_string(), name.to_string(), id);
                if ph == "b" {
                    *async_open.entry(key).or_insert(0) += 1;
                } else {
                    let open = async_open.get_mut(&key).ok_or_else(|| {
                        format!("event {i}: async `e` `{cat}:{name}` id {id} without `b`")
                    })?;
                    if *open == 0 {
                        return Err(format!(
                            "event {i}: async `e` `{cat}:{name}` id {id} without `b`"
                        ));
                    }
                    *open -= 1;
                    stats.async_pairs += 1;
                }
            }
            "i" | "I" => stats.instants += 1,
            other => return Err(format!("event {i}: unsupported phase `{other}`")),
        }
    }

    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("tid {tid}: B `{open}` never closed"));
        }
    }
    for ((cat, name, id), open) in &async_open {
        if *open != 0 {
            return Err(format!("async `{cat}:{name}` id {id} never closed"));
        }
    }
    stats.threads = last_ts.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_roundtrips_values() {
        let doc = parse_json(
            r#"{"a": [1, 2.5, -3e2], "b": "x\n\"y\"", "c": true, "d": null, "e": {}}"#,
        )
        .unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(doc.get("b").unwrap().as_str(), Some("x\n\"y\""));
        assert_eq!(doc.get("c"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("d"), Some(&Json::Null));
        assert_eq!(doc.get("e"), Some(&Json::Obj(Vec::new())));
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("{} extra").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn checker_accepts_balanced_trace() {
        let text = r#"{"traceEvents":[
            {"name":"a","cat":"c","ph":"B","ts":1.0,"pid":1,"tid":1},
            {"name":"b","cat":"c","ph":"B","ts":2.0,"pid":1,"tid":1},
            {"name":"b","cat":"c","ph":"E","ts":3.0,"pid":1,"tid":1},
            {"name":"r","cat":"c","ph":"b","ts":3.5,"pid":1,"tid":2,"id":7},
            {"name":"x","cat":"c","ph":"i","ts":4.0,"pid":1,"tid":1,"s":"t"},
            {"name":"r","cat":"c","ph":"e","ts":4.5,"pid":1,"tid":1,"id":7},
            {"name":"a","cat":"c","ph":"E","ts":5.0,"pid":1,"tid":1}
        ],"otherData":{"dropped":2}}"#;
        let stats = validate_chrome_trace(text).unwrap();
        assert_eq!(stats.events, 7);
        assert_eq!(stats.sync_pairs, 2);
        assert_eq!(stats.async_pairs, 1);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.dropped, 2);
    }

    #[test]
    fn checker_rejects_unbalanced_and_nonmonotonic() {
        let unbalanced = r#"{"traceEvents":[
            {"name":"a","cat":"c","ph":"B","ts":1.0,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(unbalanced).unwrap_err().contains("never closed"));

        let crossed = r#"{"traceEvents":[
            {"name":"a","cat":"c","ph":"B","ts":1.0,"pid":1,"tid":1},
            {"name":"b","cat":"c","ph":"B","ts":2.0,"pid":1,"tid":1},
            {"name":"a","cat":"c","ph":"E","ts":3.0,"pid":1,"tid":1},
            {"name":"b","cat":"c","ph":"E","ts":4.0,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(crossed).unwrap_err().contains("does not match"));

        let backwards = r#"{"traceEvents":[
            {"name":"a","cat":"c","ph":"B","ts":5.0,"pid":1,"tid":1},
            {"name":"a","cat":"c","ph":"E","ts":4.0,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(backwards).unwrap_err().contains("backwards"));
    }
}
