//! End-to-end tracing for the Relax stack: hierarchical spans across
//! compile, VM and serving, with Chrome trace-event export.
//!
//! The compiler (`relax-passes`), the VM (`relax-vm`) and the
//! serving engine (`relax-serve`) each kept their own timing silo —
//! per-pass wall times, per-kernel compile/run splits, request latency
//! percentiles. This crate gives them one time-ordered substrate:
//!
//! - [`span`] opens a synchronous RAII span on the current thread. Spans
//!   nest through a thread-local stack, so a kernel span launched while
//!   a request executes records that request as its parent. The guard
//!   **always** measures wall time — [`SpanGuard::finish`] returns the
//!   elapsed [`Duration`] whether or not tracing is enabled — so callers
//!   feed their reports (e.g. `CompileReport`) from the same clock that
//!   stamps the trace, and the two can never disagree.
//! - [`async_begin`]/[`async_end`] bracket work that migrates across
//!   threads (a serving request travels from the submit thread through
//!   the queue to a worker); the [`SpanId`] is carried alongside the
//!   work and closes the span wherever it lands.
//! - [`instant`] marks point events (allocator fallbacks, shed
//!   requests).
//!
//! Events carry typed [`Payload`]s and land in a lock-sharded bounded
//! buffer ([`take`] drains it). Two exporters read a drained [`Trace`]:
//! [`chrome_json`] writes Chrome trace-event JSON loadable in
//! `chrome://tracing` / Perfetto (re-checkable with
//! [`validate_chrome_trace`]), and [`flame_summary`] prints a
//! plain-text hot-path table.
//!
//! # Cost when disabled
//!
//! Tracing is compiled in but **off** by default. The off fast path of
//! every emission function is a single relaxed atomic load (after a
//! one-time env check): no id is allocated, no name is formatted — name
//! and payload arguments are closures evaluated only when recording —
//! and nothing is pushed. Set `RELAX_TRACE=1` in the environment or
//! call [`set_enabled`]`(true)` to record.
//!
//! ```
//! let _capture = relax_trace::Capture::begin();
//! {
//!     let sp = relax_trace::span("compile", || "pass:demo".to_string());
//!     let wall = sp.finish_with(|| relax_trace::Payload::Pass {
//!         pass: "demo".to_string(),
//!         changed: false,
//!     });
//!     assert!(wall.as_nanos() > 0);
//! }
//! let trace = _capture.finish();
//! trace.validate().unwrap();
//! assert_eq!(trace.sync_span_count("compile", "pass:"), 1);
//! let stats = relax_trace::validate_chrome_trace(&trace.chrome_json()).unwrap();
//! assert_eq!(stats.sync_pairs, 1);
//! ```

#![forbid(unsafe_code)]

mod buffer;
mod chrome;
mod event;
mod flame;
mod lock;

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

pub use buffer::{clear, dropped, set_capacity, take, Trace, DEFAULT_CAPACITY};
pub use chrome::{chrome_json, parse_json, validate_chrome_trace, ChromeStats, Json};
pub use event::{
    CacheOutcome, EventKind, Payload, RequestPhase, SessionPhase, SpanId, TraceEvent, WorkerEvent,
};
pub use flame::flame_summary;
pub use lock::{lock_wait_stats, reset_lock_wait_stats, LockSite, LockWaitStat};

// ---------------------------------------------------------------------
// The enable switch.
// ---------------------------------------------------------------------

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// One-time cold path: resolve the initial state from `RELAX_TRACE`.
#[cold]
fn init_state() -> bool {
    let on = matches!(
        std::env::var("RELAX_TRACE").ok().as_deref(),
        Some("1") | Some("true") | Some("on")
    );
    // Racing initializers agree (the env cannot change between them),
    // and an explicit `set_enabled` always wins via a plain store.
    let _ = STATE.compare_exchange(
        STATE_UNINIT,
        if on { STATE_ON } else { STATE_OFF },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    STATE.load(Ordering::Relaxed) == STATE_ON
}

/// `true` when tracing records events. The hot path is a single relaxed
/// atomic load; the first call per process consults `RELAX_TRACE`.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_state(),
    }
}

/// Programmatically switches tracing on or off, overriding
/// `RELAX_TRACE`.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Per-thread identity and the parent stack.
// ---------------------------------------------------------------------

static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
    static PARENTS: RefCell<Vec<SpanId>> = const { RefCell::new(Vec::new()) };
}

/// The trace-local id of the calling thread (assigned densely from 1 on
/// first use; stable for the thread's lifetime).
pub fn thread_id() -> u64 {
    TID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT_TID.fetch_add(1, Ordering::Relaxed) + 1;
            t.set(id);
        }
        id
    })
}

/// Nanoseconds since the process trace epoch (the first event ever
/// recorded anchors it).
fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

fn current_parent() -> Option<SpanId> {
    PARENTS.with(|p| p.borrow().last().copied())
}

// ---------------------------------------------------------------------
// Emission.
// ---------------------------------------------------------------------

fn emit(kind: EventKind, id: SpanId, parent: Option<SpanId>, cat: &'static str, name: String, payload: Payload) -> bool {
    buffer::push(TraceEvent {
        seq: 0, // stamped by the buffer
        ts_ns: now_ns(),
        tid: thread_id(),
        kind,
        id,
        parent,
        cat,
        name,
        payload,
    })
}

/// An open synchronous span. Dropping it closes the span; prefer
/// [`SpanGuard::finish`]/[`SpanGuard::finish_with`] to also read the
/// measured wall time back (reports and traces then share one clock).
#[must_use = "dropping immediately measures nothing"]
pub struct SpanGuard {
    start: Instant,
    /// `0` when the span is not recorded (tracing off or buffer full).
    id: SpanId,
    cat: &'static str,
    /// Kept so the close event repeats the open event's name.
    name: Option<String>,
    closed: bool,
}

impl SpanGuard {
    /// This span's id, for cross-thread stitching via
    /// [`span_under`]/[`async_end`]. `0` when unrecorded.
    pub fn id(&self) -> SpanId {
        self.id
    }

    fn close(&mut self, payload: Payload) {
        self.closed = true;
        if self.id == 0 {
            return;
        }
        PARENTS.with(|p| {
            let mut stack = p.borrow_mut();
            if stack.last() == Some(&self.id) {
                stack.pop();
            }
        });
        let name = self.name.take().unwrap_or_default();
        // Close events bypass the buffer's capacity check (this span's
        // Begin was stored, so its End always fits the balance bound);
        // emit() cannot fail here.
        emit(EventKind::End, self.id, None, self.cat, name, payload);
    }

    /// Closes the span and returns its measured wall time.
    pub fn finish(self) -> Duration {
        self.finish_with(|| Payload::None)
    }

    /// Closes the span with a payload (built lazily, only when the span
    /// is recorded) and returns its measured wall time.
    pub fn finish_with(mut self, payload: impl FnOnce() -> Payload) -> Duration {
        let wall = self.start.elapsed();
        let payload = if self.id != 0 { payload() } else { Payload::None };
        self.close(payload);
        wall
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.closed {
            self.close(Payload::None);
        }
    }
}

/// Opens a synchronous span on the current thread, parented to the
/// innermost open span. `name` is evaluated only when recording. The
/// guard measures wall time regardless of whether tracing is enabled.
pub fn span(cat: &'static str, name: impl FnOnce() -> String) -> SpanGuard {
    span_under(cat, None, name)
}

/// Opens a synchronous span with an explicit parent (use the [`SpanId`]
/// carried across a thread boundary; `None` or `Some(0)` falls back to
/// the thread-local parent). This is how a serving worker stitches its
/// execute span under the request span opened on the submit thread.
pub fn span_under(
    cat: &'static str,
    parent: Option<SpanId>,
    name: impl FnOnce() -> String,
) -> SpanGuard {
    let start = Instant::now();
    if !enabled() {
        return SpanGuard {
            start,
            id: 0,
            cat,
            name: None,
            closed: false,
        };
    }
    let name = name();
    let parent = parent.filter(|&p| p != 0).or_else(current_parent);
    let id = buffer::next_span_id();
    if !emit(EventKind::Begin, id, parent, cat, name.clone(), Payload::None) {
        // Buffer full: the span stays unrecorded so the trace keeps its
        // Begin/End balance.
        return SpanGuard {
            start,
            id: 0,
            cat,
            name: None,
            closed: false,
        };
    }
    PARENTS.with(|p| p.borrow_mut().push(id));
    SpanGuard {
        start,
        id,
        cat,
        name: Some(name),
        closed: false,
    }
}

/// Records a point event (no duration). Name and payload are evaluated
/// only when recording.
pub fn instant(
    cat: &'static str,
    name: impl FnOnce() -> String,
    payload: impl FnOnce() -> Payload,
) {
    if !enabled() {
        return;
    }
    let id = buffer::next_span_id();
    emit(EventKind::Instant, id, current_parent(), cat, name(), payload());
}

/// Opens an asynchronous span that may close on another thread. Returns
/// the [`SpanId`] to carry with the work and hand to [`async_end`]
/// (and, optionally, to [`span_under`] for on-worker children). Returns
/// `0` when unrecorded; `async_end(…, 0, …)` is a no-op, so callers
/// need no conditional.
pub fn async_begin(
    cat: &'static str,
    name: &'static str,
    payload: impl FnOnce() -> Payload,
) -> SpanId {
    if !enabled() {
        return 0;
    }
    let id = buffer::next_span_id();
    if emit(
        EventKind::AsyncBegin,
        id,
        current_parent(),
        cat,
        name.to_string(),
        payload(),
    ) {
        id
    } else {
        0
    }
}

/// Closes an asynchronous span by the id [`async_begin`] returned.
/// `cat` and `name` must match the begin. A zero id is a no-op.
pub fn async_end(
    cat: &'static str,
    name: &'static str,
    id: SpanId,
    payload: impl FnOnce() -> Payload,
) {
    if id == 0 {
        return;
    }
    // A nonzero id means the AsyncBegin was stored, and close events
    // bypass the buffer's capacity check — emit() cannot fail here.
    emit(EventKind::AsyncEnd, id, None, cat, name.to_string(), payload());
}

/// Formats a concrete shape signature for [`Payload::Kernel`]:
/// `"7x8;8x4"` for a matmul's argument list, `-` for rank-0/scalar
/// entries.
pub fn shape_sig(shapes: &[Vec<usize>]) -> String {
    let mut out = String::new();
    for (i, dims) in shapes.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        if dims.is_empty() {
            out.push('-');
        } else {
            for (j, d) in dims.iter().enumerate() {
                if j > 0 {
                    out.push('x');
                }
                out.push_str(&d.to_string());
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Exclusive capture sessions.
// ---------------------------------------------------------------------

static CAPTURE_LOCK: Mutex<()> = Mutex::new(());

/// An exclusive recording session over the global buffer: begins by
/// clearing the buffer and enabling tracing, ends by draining it and
/// restoring the previous enable state. Sessions serialize on a global
/// lock, so concurrent tests (or a bench and a smoke run) cannot mix
/// their events.
pub struct Capture {
    prev: bool,
    lock: Option<MutexGuard<'static, ()>>,
    finished: bool,
}

impl Capture {
    /// Starts an exclusive capture (blocking until any other capture
    /// finishes), clears leftover events and enables tracing.
    pub fn begin() -> Capture {
        let lock = CAPTURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = enabled();
        clear();
        set_enabled(true);
        Capture {
            prev,
            lock: Some(lock),
            finished: false,
        }
    }

    /// Stops recording, restores the previous enable state and drains
    /// the captured [`Trace`]. Make sure emitting threads are quiescent
    /// (workers joined) first, or their half-open spans will fail
    /// validation.
    pub fn finish(mut self) -> Trace {
        set_enabled(self.prev);
        self.finished = true;
        let trace = take();
        drop(self.lock.take());
        trace
    }
}

impl Drop for Capture {
    fn drop(&mut self) {
        if !self.finished {
            set_enabled(self.prev);
            clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_emission_records_nothing_but_still_times() {
        let _lock = CAPTURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        clear();
        set_enabled(false);
        let sp = span("vm", || unreachable!("name must not be built when disabled"));
        std::thread::sleep(Duration::from_millis(1));
        let wall = sp.finish_with(|| unreachable!("payload must not be built when disabled"));
        assert!(wall >= Duration::from_millis(1));
        instant("vm", || unreachable!(), || unreachable!());
        let id = async_begin("vm", "x", || unreachable!());
        assert_eq!(id, 0);
        async_end("vm", "x", id, || unreachable!());
        assert!(take().is_empty());
    }

    #[test]
    fn nesting_parents_and_async_stitching() {
        let cap = Capture::begin();
        let outer = span("vm", || "outer".to_string());
        let outer_id = outer.id();
        let inner = span("vm", || "inner".to_string());
        drop(inner);
        drop(outer);

        let req = async_begin("serve", "request", || Payload::Request {
            request: 1,
            phase: RequestPhase::Queue,
        });
        let handle = std::thread::spawn(move || {
            let sp = span_under("serve", Some(req), || "execute".to_string());
            sp.finish_with(|| Payload::Request {
                request: 1,
                phase: RequestPhase::Execute,
            });
            async_end("serve", "request", req, || Payload::Request {
                request: 1,
                phase: RequestPhase::Reply,
            });
        });
        handle.join().unwrap();

        let trace = cap.finish();
        trace.validate().unwrap();
        let inner_begin = trace
            .events
            .iter()
            .find(|e| e.kind == EventKind::Begin && e.name == "inner")
            .unwrap();
        assert_eq!(inner_begin.parent, Some(outer_id));
        let exec_begin = trace
            .events
            .iter()
            .find(|e| e.kind == EventKind::Begin && e.name == "execute")
            .unwrap();
        assert_eq!(exec_begin.parent, Some(req));
        assert_ne!(
            exec_begin.tid,
            trace.events.first().unwrap().tid,
            "execute ran on another thread"
        );
        let stats = validate_chrome_trace(&trace.chrome_json()).unwrap();
        assert_eq!(stats.sync_pairs, 3);
        assert_eq!(stats.async_pairs, 1);
    }

    #[test]
    fn bounded_buffer_drops_whole_spans_and_stays_balanced() {
        let cap = Capture::begin();
        set_capacity(32); // 2 events per shard
        for i in 0..500 {
            let sp = span("vm", || format!("s{i}"));
            sp.finish();
        }
        set_capacity(DEFAULT_CAPACITY);
        let trace = cap.finish();
        assert!(trace.dropped > 0, "tiny buffer must drop");
        trace.validate().unwrap();
        validate_chrome_trace(&trace.chrome_json()).unwrap();
    }

    #[test]
    fn nested_spans_and_instants_stay_balanced_at_odd_capacity() {
        // Regression: a shard filling *between* a span's Begin and its
        // End used to drop the End, leaving a recorded span unclosed.
        // Odd per-shard capacity plus nesting plus instants forces
        // exactly that interleaving on a single thread.
        let cap = Capture::begin();
        set_capacity(48); // 3 events per shard
        for i in 0..200 {
            let outer = span("vm", || format!("outer{i}"));
            instant("vm", || format!("mark{i}"), || Payload::None);
            let inner = span("vm", || format!("inner{i}"));
            let req = async_begin("serve", "request", || Payload::None);
            async_end("serve", "request", req, || Payload::None);
            drop(inner);
            drop(outer);
        }
        set_capacity(DEFAULT_CAPACITY);
        let trace = cap.finish();
        assert!(trace.dropped > 0, "tiny odd capacity must drop");
        trace.validate().unwrap();
        validate_chrome_trace(&trace.chrome_json()).unwrap();
    }

    #[test]
    fn shape_sig_formats() {
        assert_eq!(shape_sig(&[vec![7, 8], vec![8, 4]]), "7x8;8x4");
        assert_eq!(shape_sig(&[vec![], vec![3]]), "-;3");
        assert_eq!(shape_sig(&[]), "");
    }

    #[test]
    fn flame_summary_mentions_hot_paths() {
        let cap = Capture::begin();
        let outer = span("compile", || "pipeline".to_string());
        let p = span("compile", || "pass:fuse".to_string());
        drop(p);
        drop(outer);
        instant("vm", || "alloc_fallback".to_string(), || Payload::None);
        let trace = cap.finish();
        let text = trace.flame_summary();
        assert!(text.contains("pipeline;pass:fuse"));
        assert!(text.contains("alloc_fallback"));
    }
}
