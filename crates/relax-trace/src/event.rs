//! Trace records: span identity, event kinds and typed payloads.

/// Identity of a recorded span. `0` means "not recorded" (tracing was
/// disabled, or the buffer was full when the span opened); every API
/// treats a zero id as a no-op so unrecorded spans cost nothing further.
pub type SpanId = u64;

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A synchronous span opened on this thread (Chrome `"B"`).
    Begin,
    /// The matching close of a [`EventKind::Begin`] (Chrome `"E"`).
    End,
    /// An asynchronous span opened; it may close on another thread
    /// (Chrome `"b"`, matched by `(cat, name, id)`).
    AsyncBegin,
    /// The matching close of an [`EventKind::AsyncBegin`] (Chrome `"e"`).
    AsyncEnd,
    /// A point event with no duration (Chrome `"i"`).
    Instant,
}

/// How a kernel launch interacted with the plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The shape-specialized plan was already cached.
    Hit,
    /// No plan was cached; this launch compiled one.
    Miss,
    /// The planner refused the function; the launch ran on the
    /// interpreter via a cached negative entry.
    Unplannable,
}

impl CacheOutcome {
    /// Stable lower-case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Unplannable => "unplannable",
        }
    }
}

/// Where in its lifecycle a serving request is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestPhase {
    /// Admission control on the submit thread.
    Admit,
    /// Waiting in the MPMC queue.
    Queue,
    /// Running on a worker VM.
    Execute,
    /// Shed unexecuted (deadline passed while queued, or evicted by
    /// overload control).
    Shed,
    /// A transient failure was re-enqueued for another attempt under
    /// the engine's retry policy.
    Retry,
    /// Reply delivered to the ticket.
    Reply,
}

impl RequestPhase {
    /// Stable lower-case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            RequestPhase::Admit => "admit",
            RequestPhase::Queue => "queue",
            RequestPhase::Execute => "execute",
            RequestPhase::Shed => "shed",
            RequestPhase::Retry => "retry",
            RequestPhase::Reply => "reply",
        }
    }
}

/// Where in its lifecycle a generation session is. Sessions are the
/// continuous-batching scheduler's unit of work: one paged KV cache
/// plus a token stream, admitted and retired between decode
/// iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionPhase {
    /// The scheduler admitted the session into the running set.
    Admit,
    /// A prefill iteration ran the prompt through the copy-based path
    /// and seeded the paged cache.
    Prefill,
    /// A decode iteration appended one token into the paged cache.
    Decode,
    /// The session produced all requested tokens and released its
    /// pages back to the pool.
    Retire,
    /// The session was evicted under page-pool pressure (earliest
    /// deadline first) and its pages were reclaimed.
    Evict,
    /// The session failed (deterministic VM error or exhausted retry
    /// budget) and its pages were reclaimed.
    Fail,
}

impl SessionPhase {
    /// Stable lower-case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            SessionPhase::Admit => "admit",
            SessionPhase::Prefill => "prefill",
            SessionPhase::Decode => "decode",
            SessionPhase::Retire => "retire",
            SessionPhase::Evict => "evict",
            SessionPhase::Fail => "fail",
        }
    }
}

/// A worker-lifecycle event observed by the serving supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerEvent {
    /// The worker panicked; its in-flight request was resolved typed.
    Panic,
    /// Heartbeat monitoring declared the worker wedged.
    Stall,
    /// The supervisor respawned a fresh worker into the slot.
    Restart,
    /// The slot exhausted its restart budget and was quarantined.
    Quarantine,
}

impl WorkerEvent {
    /// Stable lower-case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            WorkerEvent::Panic => "panic",
            WorkerEvent::Stall => "stall",
            WorkerEvent::Restart => "restart",
            WorkerEvent::Quarantine => "quarantine",
        }
    }
}

/// Typed event payload. Exporters render these as Chrome `args`; the
/// variants mirror the three instrumented layers so tools never parse
/// information back out of span names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// No structured payload.
    None,
    /// A compiler pass finished: its registered name and whether it
    /// changed the module/executable.
    Pass { pass: String, changed: bool },
    /// A kernel event: TIR/library function name, the concrete shape
    /// signature (see [`crate::shape_sig`]) and the plan-cache outcome
    /// (`None` when no cache was involved).
    Kernel {
        kernel: String,
        shapes: String,
        cache: Option<CacheOutcome>,
    },
    /// A serving-request event: the engine-assigned request id and the
    /// lifecycle phase this event marks.
    Request { request: u64, phase: RequestPhase },
    /// A session-lifecycle event: the scheduler-assigned session id
    /// and the lifecycle phase this event marks.
    Session { session: u64, phase: SessionPhase },
    /// A worker-lifecycle event: which worker slot, and what the
    /// supervisor observed or did.
    Worker { worker: u64, event: WorkerEvent },
    /// A contended lock acquisition: which instrumented site blocked,
    /// and how long the acquiring thread waited. Uncontended
    /// acquisitions never emit this (the fast path is a `try_lock`).
    Lock { site: &'static str, wait_ns: u64 },
}

/// One record in the trace buffer.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Global emission order (unique, strictly increasing).
    pub seq: u64,
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Trace-local thread id (assigned densely from 1 per thread).
    pub tid: u64,
    /// What this event marks.
    pub kind: EventKind,
    /// Span identity. Begin/End pairs share it; async pairs share it
    /// across threads; instants get their own.
    pub id: SpanId,
    /// The span this one nests under, when known. Synchronous spans
    /// inherit the innermost open span on their thread; cross-thread
    /// children carry an explicitly stitched parent.
    pub parent: Option<SpanId>,
    /// Coarse category: `"compile"`, `"vm"` or `"serve"`.
    pub cat: &'static str,
    /// Human-readable name (`pass:fuse_ops`, `kernel:matmul`, …).
    pub name: String,
    /// Structured payload.
    pub payload: Payload,
}
