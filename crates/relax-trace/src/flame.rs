//! Plain-text flame summary: inclusive time per span stack path.
//!
//! The renderer replays each thread's Begin/End events to reconstruct
//! the span stack, accumulates inclusive wall time and call counts per
//! `root;child;leaf` path, and prints the hottest paths first — a
//! terminal-friendly answer to "where did the time go" without loading
//! the Chrome JSON into a viewer.

use std::collections::HashMap;

use crate::buffer::Trace;
use crate::event::EventKind;

/// Formats nanoseconds compactly (`741ns`, `12.3µs`, `4.56ms`, `1.23s`).
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Renders the flame summary of a drained trace. Synchronous spans are
/// grouped by stack path with inclusive time; async spans (which may
/// cross threads) are summarised per name below them.
pub fn flame_summary(trace: &Trace) -> String {
    // path -> (inclusive ns, count)
    let mut paths: HashMap<String, (u64, u64)> = HashMap::new();
    // tid -> stack of (name, begin ts)
    let mut stacks: HashMap<u64, Vec<(String, u64)>> = HashMap::new();
    // async id -> (name, begin ts)
    let mut async_open: HashMap<u64, (String, u64)> = HashMap::new();
    // name -> (total ns, count)
    let mut async_totals: HashMap<String, (u64, u64)> = HashMap::new();
    let mut instants: HashMap<String, u64> = HashMap::new();
    let mut sync_spans = 0u64;

    for e in &trace.events {
        match e.kind {
            EventKind::Begin => stacks
                .entry(e.tid)
                .or_default()
                .push((e.name.clone(), e.ts_ns)),
            EventKind::End => {
                let stack = stacks.entry(e.tid).or_default();
                if let Some((_, begin_ts)) = stack.pop() {
                    let mut path = String::new();
                    for (frame, _) in stack.iter() {
                        path.push_str(frame);
                        path.push(';');
                    }
                    path.push_str(&e.name);
                    let slot = paths.entry(path).or_insert((0, 0));
                    slot.0 += e.ts_ns.saturating_sub(begin_ts);
                    slot.1 += 1;
                    sync_spans += 1;
                }
            }
            EventKind::AsyncBegin => {
                async_open.insert(e.id, (e.name.clone(), e.ts_ns));
            }
            EventKind::AsyncEnd => {
                if let Some((name, begin_ts)) = async_open.remove(&e.id) {
                    let slot = async_totals.entry(name).or_insert((0, 0));
                    slot.0 += e.ts_ns.saturating_sub(begin_ts);
                    slot.1 += 1;
                }
            }
            EventKind::Instant => *instants.entry(e.name.clone()).or_insert(0) += 1,
        }
    }

    let wall = trace
        .events
        .last()
        .map(|e| e.ts_ns)
        .unwrap_or(0)
        .saturating_sub(trace.events.first().map(|e| e.ts_ns).unwrap_or(0));
    let threads = {
        let mut tids: Vec<u64> = trace.events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        tids.len()
    };

    let mut out = format!(
        "trace: {} events over {} thread(s), {} wall, {} sync span(s), {} dropped\n",
        trace.events.len(),
        threads,
        fmt_ns(wall),
        sync_spans,
        trace.dropped
    );

    let mut rows: Vec<(&String, &(u64, u64))> = paths.iter().collect();
    rows.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then_with(|| a.0.cmp(b.0)));
    let width = rows
        .iter()
        .take(40)
        .map(|(p, _)| p.len())
        .max()
        .unwrap_or(0)
        .min(72);
    for (path, (ns, count)) in rows.iter().take(40) {
        out.push_str(&format!(
            "  {:<width$}  {:>9}  x{}\n",
            path,
            fmt_ns(*ns),
            count,
            width = width
        ));
    }
    if rows.len() > 40 {
        out.push_str(&format!("  … {} more path(s)\n", rows.len() - 40));
    }

    if !async_totals.is_empty() {
        out.push_str("async spans:\n");
        let mut rows: Vec<(&String, &(u64, u64))> = async_totals.iter().collect();
        rows.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then_with(|| a.0.cmp(b.0)));
        for (name, (ns, count)) in rows {
            out.push_str(&format!("  {name}  total {}  x{count}\n", fmt_ns(*ns)));
        }
    }
    if !instants.is_empty() {
        out.push_str("instants:\n");
        let mut rows: Vec<(&String, &u64)> = instants.iter().collect();
        rows.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        for (name, count) in rows {
            out.push_str(&format!("  {name}  x{count}\n"));
        }
    }
    out
}
