//! End-to-end LLM integration tests: the tiny model configuration runs
//! numerically through the full pipeline, across optimization levels,
//! batch sizes and growing KV caches — all from single compilations.

use std::collections::HashMap;

use relax::core::{DataType, ShapeDesc, StructInfo};
use relax::models::llama::{build_decode, build_prefill, LlamaConfig, ModelIr};
use relax::passes::{compile, CompileOptions};
use relax::tir::NDArray;
use relax::vm::{Value, Vm, VmErrorKind};

fn random_arr(shape: &[usize], dtype: DataType, seed: &mut u64) -> NDArray {
    let n: usize = shape.iter().product();
    let vals: Vec<f64> = (0..n)
        .map(|_| {
            *seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (((*seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5) * 0.2
        })
        .collect();
    NDArray::from_f64(shape, dtype, vals).unwrap()
}

fn concrete(ir: &ModelIr, sinfo: &StructInfo, batch: i64, seq: i64) -> (Vec<usize>, DataType) {
    let mut env = HashMap::new();
    env.insert(ir.batch.clone(), batch);
    env.insert(ir.seq.clone(), seq);
    match sinfo {
        StructInfo::Tensor {
            shape: ShapeDesc::Known(dims),
            dtype,
        } => (
            dims.iter()
                .map(|d| d.eval(&env).unwrap() as usize)
                .collect(),
            dtype.unwrap(),
        ),
        other => panic!("unexpected annotation {other}"),
    }
}

fn decode_args(ir: &ModelIr, batch: i64, kv: i64, seed: &mut u64) -> Vec<Value> {
    ir.params
        .iter()
        .map(|(name, sinfo)| {
            let (dims, dt) = concrete(ir, sinfo, batch, kv);
            if name == "tokens" {
                Value::Tensor(NDArray::from_i64(&dims, dt, vec![3; dims.iter().product()]).unwrap())
            } else {
                Value::Tensor(random_arr(&dims, dt, seed))
            }
        })
        .collect()
}

#[test]
fn decode_numerics_agree_across_optimization_levels() {
    let cfg = LlamaConfig::tiny();
    let ir = build_decode(&cfg).unwrap();
    let mut seed = 11u64;
    let args = decode_args(&ir, 2, 4, &mut seed);

    let mut outputs = Vec::new();
    for opts in [
        CompileOptions::default(),
        CompileOptions::baseline(),
        CompileOptions {
            fusion: false,
            ..CompileOptions::default()
        },
        CompileOptions {
            dispatch_library: false,
            ..CompileOptions::default()
        },
        CompileOptions {
            memory_plan: false,
            graph_capture: false,
            ..CompileOptions::default()
        },
    ] {
        let exec = compile(ir.module.clone(), &opts).unwrap();
        let mut vm = Vm::new(exec);
        let out = vm.run("decode", &args).unwrap();
        let logits = out.as_tuple().unwrap()[0].as_tensor().unwrap().to_f64_vec();
        assert!(logits.iter().all(|v| v.is_finite()));
        outputs.push(logits);
    }
    for other in &outputs[1..] {
        for (a, b) in outputs[0].iter().zip(other) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }
}

#[test]
fn one_compilation_serves_batches_and_cache_lengths() {
    let cfg = LlamaConfig::tiny();
    let ir = build_decode(&cfg).unwrap();
    let exec = compile(ir.module.clone(), &CompileOptions::default()).unwrap();
    let mut vm = Vm::new(exec);
    let mut seed = 5u64;
    for (batch, kv) in [(1i64, 1i64), (2, 3), (4, 7), (1, 16)] {
        let args = decode_args(&ir, batch, kv, &mut seed);
        let out = vm.run("decode", &args).unwrap();
        let tuple = out.as_tuple().unwrap();
        let logits = tuple[0].as_tensor().unwrap();
        assert_eq!(
            logits.shape(),
            &[batch as usize, 1, cfg.vocab as usize],
            "batch {batch}, kv {kv}"
        );
        // Returned caches grew by one position.
        let k0 = tuple[1].as_tensor().unwrap();
        assert_eq!(k0.shape()[2], kv as usize + 1);
    }
    // Dynamic shapes triggered re-capture per shape signature, then replay.
    let args = decode_args(&ir, 1, 16, &mut seed);
    vm.run("decode", &args).unwrap();
    assert!(vm.telemetry().replays >= 1);
}

#[test]
fn prefill_then_decode_composes() {
    let cfg = LlamaConfig::tiny();
    let prefill_ir = build_prefill(&cfg).unwrap();
    let decode_ir = build_decode(&cfg).unwrap();
    let prefill_exec = compile(prefill_ir.module.clone(), &CompileOptions::default()).unwrap();
    let decode_exec = compile(decode_ir.module.clone(), &CompileOptions::default()).unwrap();

    // Shared weights by name.
    let mut seed = 3u64;
    let mut weights: HashMap<String, NDArray> = HashMap::new();
    for (name, sinfo) in prefill_ir.params.iter().skip(1) {
        let (dims, dt) = concrete(&prefill_ir, sinfo, 1, 3);
        weights.insert(name.clone(), random_arr(&dims, dt, &mut seed));
    }

    let mut pvm = Vm::new(prefill_exec);
    let tokens = NDArray::from_i64(&[1, 3], DataType::I64, vec![1, 2, 3]).unwrap();
    let mut args = vec![Value::Tensor(tokens)];
    for (name, _) in prefill_ir.params.iter().skip(1) {
        args.push(Value::Tensor(weights[name].clone()));
    }
    let caches = pvm.run("prefill", &args).unwrap();
    let caches: Vec<NDArray> = caches
        .as_tuple()
        .unwrap()
        .iter()
        .map(|v| v.as_tensor().unwrap().clone())
        .collect();
    assert_eq!(caches.len(), 2 * cfg.n_layers);
    assert_eq!(
        caches[0].shape(),
        &[1, cfg.n_kv_heads as usize, 3, cfg.head_dim as usize]
    );

    // One decode step on top of the prefilled cache.
    let mut dvm = Vm::new(decode_exec);
    let token = NDArray::from_i64(&[1, 1], DataType::I64, vec![2]).unwrap();
    let mut dargs = vec![Value::Tensor(token)];
    for c in &caches {
        dargs.push(Value::Tensor(c.clone()));
    }
    for (name, _) in decode_ir.params.iter().skip(1 + caches.len()) {
        dargs.push(Value::Tensor(weights[name].clone()));
    }
    let out = dvm.run("decode", &dargs).unwrap();
    let tuple = out.as_tuple().unwrap();
    assert_eq!(tuple[1].as_tensor().unwrap().shape()[2], 4);
}

#[test]
fn quantized_tiny_model_runs() {
    let cfg = LlamaConfig::tiny().quantized();
    let ir = build_decode(&cfg).unwrap();
    let exec = compile(ir.module.clone(), &CompileOptions::default()).unwrap();
    let mut vm = Vm::new(exec);
    let mut seed = 17u64;
    let args: Vec<Value> = ir
        .params
        .iter()
        .map(|(name, sinfo)| {
            let (dims, dt) = concrete(&ir, sinfo, 1, 2);
            if name == "tokens" {
                Value::Tensor(NDArray::from_i64(&dims, dt, vec![1]).unwrap())
            } else if dt == DataType::U32 {
                // Packed q4 weights: random u32 payloads.
                let n: usize = dims.iter().product();
                Value::Tensor(
                    NDArray::from_i64(
                        &dims,
                        dt,
                        (0..n)
                            .map(|i| (i as i64).wrapping_mul(2654435761) & 0xFFFF_FFFF)
                            .collect(),
                    )
                    .unwrap(),
                )
            } else {
                Value::Tensor(random_arr(&dims, dt, &mut seed))
            }
        })
        .collect();
    let out = vm.run("decode", &args).unwrap();
    let logits = out.as_tuple().unwrap()[0].as_tensor().unwrap().to_f64_vec();
    assert!(logits.iter().all(|v| v.is_finite()));
}

#[test]
fn boundary_checks_catch_inconsistent_caches() {
    let cfg = LlamaConfig::tiny();
    let ir = build_decode(&cfg).unwrap();
    let exec = compile(ir.module.clone(), &CompileOptions::default()).unwrap();
    let mut vm = Vm::new(exec);
    let mut seed = 23u64;
    let mut args = decode_args(&ir, 1, 4, &mut seed);
    // Corrupt one cache: its kv length disagrees with the others.
    let (dims, dt) = concrete(&ir, &ir.params[3].1, 1, 9);
    args[3] = Value::Tensor(NDArray::zeros(&dims, dt));
    let err = vm.run("decode", &args).unwrap_err();
    assert!(
        matches!(
            err.kind,
            VmErrorKind::ShapeCheck { .. } | VmErrorKind::Interp(_)
        ),
        "got {err}"
    );
}
