//! Printer/parser round-trip golden tests over the model frontends.
//!
//! For each model the printed IR must (a) match the committed golden
//! file under `tests/golden/` byte-for-byte and (b) re-parse through the
//! textual parser into a module that prints identically — the printed
//! form is a fixed point of print → parse → print.
//!
//! To regenerate the goldens after an intentional printer or builder
//! change: `RELAX_BLESS=1 cargo test --test golden_roundtrip`.

use std::path::PathBuf;

use relax::core::{parse_functions, IRModule};
use relax::models::llama::{
    build_decode, build_decode_paged, build_decode_paged_multi, LlamaConfig,
};
use relax::models::llava::{build_vision_encoder, LlavaConfig};
use relax::models::moe::build_dispatch;
use relax::models::whisper::{build_decoder_step, WhisperConfig};
use relax::models::MoeConfig;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.relax"))
}

fn check_roundtrip(name: &str, module: &IRModule) {
    let text = module.to_string();

    // 1. Golden comparison (RELAX_BLESS=1 regenerates).
    let path = golden_path(name);
    if std::env::var("RELAX_BLESS").as_deref() == Ok("1") {
        std::fs::write(&path, &text).unwrap_or_else(|e| panic!("bless {name}: {e}"));
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("{name}: missing golden file {path:?} ({e}); regenerate with RELAX_BLESS=1")
    });
    assert_eq!(
        text, golden,
        "{name}: printed IR diverged from {path:?}; if intentional, \
         regenerate with RELAX_BLESS=1"
    );

    // 2. Structural round trip: parse the printed text and require the
    // reparse to print identically (print∘parse is a fixed point).
    let mut reparsed = IRModule::new();
    parse_functions(&text, &mut reparsed)
        .unwrap_or_else(|e| panic!("{name}: printed IR failed to re-parse: {e}"));
    assert_eq!(
        reparsed.functions().count(),
        module.functions().count(),
        "{name}: function count changed across the round trip"
    );
    assert_eq!(
        reparsed.to_string(),
        text,
        "{name}: print→parse→print is not a fixed point"
    );
    relax::core::assert_well_formed(&reparsed)
        .unwrap_or_else(|e| panic!("{name}: reparsed module ill-formed: {e}"));
}

#[test]
fn llama_decode_roundtrips() {
    let ir = build_decode(&LlamaConfig::tiny()).unwrap();
    check_roundtrip("llama_tiny_decode", &ir.module);
}

#[test]
fn whisper_decoder_step_roundtrips() {
    let ir = build_decoder_step(&WhisperConfig::tiny()).unwrap();
    check_roundtrip("whisper_tiny_decoder_step", &ir.module);
}

#[test]
fn llava_vision_encoder_roundtrips() {
    let ir = build_vision_encoder(&LlavaConfig::tiny()).unwrap();
    check_roundtrip("llava_tiny_vision_encoder", &ir.module);
}

/// The MoE router + ragged per-expert FFN dispatch: every
/// data-dependent `match_cast` binding in the printed form must survive
/// the textual round trip.
#[test]
fn moe_dispatch_roundtrips() {
    let ir = build_dispatch(&MoeConfig::tiny()).unwrap();
    check_roundtrip("moe_tiny_dispatch", &ir.module);
}

/// The speculative-decoding pair in one module: a 1-layer draft's paged
/// decode next to the verify model's variable-length multi-token decode
/// (symbolic `seq` flowing into the `(batch, seq, vocab)` logits).
#[test]
fn spec_decode_draft_verify_roundtrips() {
    let cfg = LlamaConfig::tiny();
    let draft_cfg = LlamaConfig {
        n_layers: 1,
        ..cfg.clone()
    };
    let draft = build_decode_paged(&draft_cfg).unwrap();
    let mut module = build_decode_paged_multi(&cfg).unwrap().module;
    for (name, func) in draft.module.functions() {
        module.add_function(name.clone(), func.clone());
    }
    check_roundtrip("spec_decode_draft_verify", &module);
}
