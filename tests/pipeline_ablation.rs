//! Pipeline ablation matrix: the existing MLP module compiled under every
//! on/off combination of `dispatch_library` / `fusion` / `memory_plan` /
//! `graph_capture` / `kernel_schedule` must produce a verifiable
//! executable and bit-identical VM outputs — optimizations may only
//! change *how* the answer is computed, never the answer.

use std::collections::HashMap;

use relax_core::{BlockBuilder, DataType, Expr, IRModule, Op, StructInfo};
use relax_passes::{compile, CompileOptions};
use relax_tir::NDArray;
use relax_vm::{Value, Vm};

/// x @ w1 -> +b1 -> relu -> @ w2 -> rms_norm, on symbolic batch — the
/// same MLP the pipeline unit tests use.
fn mlp_module() -> IRModule {
    let mut bb = BlockBuilder::new();
    let n = relax_arith::Var::new("n");
    let p = bb.begin_function(
        "main",
        vec![
            (
                "x".into(),
                StructInfo::tensor(vec![n.clone().into(), 8.into()], DataType::F32),
            ),
            (
                "w1".into(),
                StructInfo::tensor(vec![8.into(), 16.into()], DataType::F32),
            ),
            (
                "b1".into(),
                StructInfo::tensor(vec![16.into()], DataType::F32),
            ),
            (
                "w2".into(),
                StructInfo::tensor(vec![16.into(), 8.into()], DataType::F32),
            ),
            (
                "g".into(),
                StructInfo::tensor(vec![8.into()], DataType::F32),
            ),
        ],
    );
    bb.begin_dataflow();
    let h = bb.emit_op(Op::Matmul, &[p[0].clone(), p[1].clone()]).unwrap();
    let h = bb.emit_op(Op::Add, &[h, p[2].clone()]).unwrap();
    let h = bb.emit(Expr::op_call(Op::Relu, vec![h.into()])).unwrap();
    let h = bb.emit_op(Op::Matmul, &[h, p[3].clone()]).unwrap();
    let out = bb
        .emit_output(Expr::op_call(
            Op::RmsNorm,
            vec![h.into(), p[4].clone().into()],
        ))
        .unwrap();
    bb.end_dataflow();
    bb.finish_function(out.into(), None).unwrap();
    bb.finish()
}

fn mlp_args() -> Vec<Value> {
    let x = NDArray::from_f64(
        &[2, 8],
        DataType::F32,
        (0..16).map(|v| (v as f64) / 7.0 - 1.0).collect(),
    )
    .unwrap();
    let w1 = NDArray::from_f64(
        &[8, 16],
        DataType::F32,
        (0..128).map(|v| ((v % 7) as f64) / 7.0 - 0.4).collect(),
    )
    .unwrap();
    let b1 = NDArray::from_f64(&[16], DataType::F32, vec![0.1; 16]).unwrap();
    let w2 = NDArray::from_f64(
        &[16, 8],
        DataType::F32,
        (0..128).map(|v| ((v % 5) as f64) / 5.0 - 0.3).collect(),
    )
    .unwrap();
    let g = NDArray::from_f64(&[8], DataType::F32, vec![1.0; 8]).unwrap();
    [x, w1, b1, w2, g].into_iter().map(Value::Tensor).collect()
}

#[test]
fn all_thirty_two_configurations_verify_and_agree_bitwise() {
    let args = mlp_args();
    let mut reference: Option<Vec<u64>> = None;
    for mask in 0..32u32 {
        let opts = CompileOptions {
            dispatch_library: mask & 1 != 0,
            fusion: mask & 2 != 0,
            memory_plan: mask & 4 != 0,
            graph_capture: mask & 8 != 0,
            kernel_schedule: mask & 16 != 0,
            dispatch_rules: Default::default(),
            shape_bounds: HashMap::new(),
        };
        let exec = compile(mlp_module(), &opts)
            .unwrap_or_else(|e| panic!("config {mask:05b} failed to compile: {e}"));
        relax_vm::verify(&exec, &relax_vm::registry::Registry::new())
            .unwrap_or_else(|e| panic!("config {mask:05b} failed verification: {e}"));

        let mut vm = Vm::new(exec);
        // Three runs so graph-capture replays are exercised too.
        let out = vm.run("main", &args).unwrap();
        vm.run("main", &args).unwrap();
        let out_replay = vm.run("main", &args).unwrap();

        let bits = |v: &Value| -> Vec<u64> {
            v.as_tensor()
                .unwrap()
                .to_f64_vec()
                .iter()
                .map(|x| x.to_bits())
                .collect()
        };
        let this = bits(&out);
        assert_eq!(
            this,
            bits(&out_replay),
            "config {mask:05b}: replay diverged from first run"
        );
        match &reference {
            None => reference = Some(this),
            Some(want) => assert_eq!(
                &this, want,
                "config {mask:05b} output differs bitwise from config 00000"
            ),
        }
    }
}
