//! Differential property test for the MoE routing workload: the
//! compiled `moe_ffn` / `moe_dispatch` modules must be **bitwise**
//! equal to the pure-Rust oracle (`relax_models::moe::reference_moe`)
//! on seeded random token→expert assignments — including empty
//! experts, all-tokens-to-one-expert, and more experts than tokens —
//! serially and on 8 concurrent workers, with the plan cache on and
//! off, and with `kernel_schedule` on and off.
//!
//! Every per-expert FFN kernel here runs with a ragged leading dim
//! `n_e` bound at runtime by `match_cast`, so this suite is the proof
//! that data-dependent shapes flow through legalization, fusion,
//! memory planning, the plan cache, and the VM without perturbing a
//! single bit.

use std::sync::Arc;

use relax_core::DataType;
use relax_models::moe::{
    build_dispatch, build_ffn_with_assignments, reference_moe, reference_route, MoeConfig,
};
use relax_passes::{compile, CompileOptions};
use relax_tir::NDArray;
use relax_vm::{registry::Registry, SharedPlanCache, Value, Vm};

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Random f32-rounded values in roughly [-1, 1) — the same convention
/// every kernel-produced tensor in the pipeline follows.
fn random_f32s(n: usize, seed: &mut u64) -> Vec<f64> {
    (0..n)
        .map(|_| {
            relax_tir::round_to_dtype(
                (lcg(seed) as f64 / (1u64 << 31) as f64) - 1.0,
                DataType::F32,
            )
        })
        .collect()
}

fn tensor2(rows: usize, cols: usize, vals: &[f64]) -> Value {
    Value::Tensor(NDArray::from_f64(&[rows, cols], DataType::F32, vals.to_vec()).unwrap())
}

/// Deterministic expert weights for a config, seeded.
struct Weights {
    w1: Vec<Vec<f64>>,
    w2: Vec<Vec<f64>>,
}

fn make_weights(cfg: &MoeConfig, seed: u64) -> Weights {
    let (d, h, e) = (
        cfg.d_model as usize,
        cfg.d_ff as usize,
        cfg.experts as usize,
    );
    let mut s = seed;
    Weights {
        w1: (0..e).map(|_| random_f32s(d * h, &mut s)).collect(),
        w2: (0..e).map(|_| random_f32s(h * d, &mut s)).collect(),
    }
}

fn weight_values(w: &Weights, cfg: &MoeConfig) -> Vec<Value> {
    let (d, h) = (cfg.d_model as usize, cfg.d_ff as usize);
    let mut vals = Vec::new();
    for e in 0..cfg.experts as usize {
        vals.push(tensor2(d, h, &w.w1[e]));
        vals.push(tensor2(h, d, &w.w2[e]));
    }
    vals
}

fn bits(v: &Value) -> Vec<u64> {
    v.as_tensor()
        .unwrap()
        .to_f64_vec()
        .iter()
        .map(|x| x.to_bits())
        .collect()
}

fn ref_bits(vals: &[f64]) -> Vec<u64> {
    vals.iter().map(|x| x.to_bits()).collect()
}

/// The assignment schedules under test: seeded-random plus the named
/// edge cases from the issue.
fn assignment_cases(cfg: &MoeConfig) -> Vec<(String, usize, Vec<i64>)> {
    let e = cfg.experts;
    let mut cases = Vec::new();
    // Random assignments at several ragged token counts.
    let mut s = 0x0E0E_5EED_u64;
    for t in [1usize, 3, 5, 8, 13] {
        let assign: Vec<i64> = (0..t).map(|_| (lcg(&mut s) % e as u64) as i64).collect();
        cases.push((format!("random_t{t}"), t, assign));
    }
    // Every token to one expert (others genuinely empty).
    cases.push(("all_one_expert".into(), 6, vec![e - 1; 6]));
    // Expert count exceeds token count (most experts see zero rows).
    cases.push(("experts_gt_tokens".into(), 2, vec![0, e - 1]));
    // Round-robin (no expert empty when t >= e).
    cases.push((
        "round_robin".into(),
        2 * e as usize,
        (0..2 * e).map(|i| i % e).collect(),
    ));
    cases
}

fn compile_opts(kernel_schedule: bool) -> CompileOptions {
    CompileOptions {
        kernel_schedule,
        ..CompileOptions::default()
    }
}

/// Core check: one compiled `moe_ffn` executable, one VM, every
/// assignment case — bitwise against the oracle.
fn check_ffn(vm: &mut Vm, cfg: &MoeConfig, w: &Weights, label: &str) {
    let (d, h) = (cfg.d_model as usize, cfg.d_ff as usize);
    let weight_vals = weight_values(w, cfg);
    let mut seed = 0xA55A_1234_u64;
    for (name, t, assign) in assignment_cases(cfg) {
        let tokens = random_f32s(t * d, &mut seed);
        let mut args = vec![
            tensor2(t, d, &tokens),
            Value::Tensor(NDArray::from_i64(&[t], DataType::I64, assign.clone()).unwrap()),
        ];
        args.extend(weight_vals.iter().cloned());
        let got = vm.run("moe_ffn", &args).unwrap();
        let expect = reference_moe(&tokens, &assign, &w.w1, &w.w2, d, h);
        assert_eq!(
            bits(&got),
            ref_bits(&expect),
            "case {name} diverged from the oracle under {label}"
        );
    }
}

#[test]
fn moe_ffn_matches_oracle_serial_across_ablations() {
    let cfg = MoeConfig::tiny();
    let w = make_weights(&cfg, 0xFACE_0FF5);
    for kernel_schedule in [true, false] {
        let exec = compile(
            build_ffn_with_assignments(&cfg).unwrap().module,
            &compile_opts(kernel_schedule),
        )
        .unwrap();
        relax_vm::verify(&exec, &Registry::new()).unwrap();
        for cache_capacity in [64usize, 0] {
            let mut vm = Vm::new(exec.clone());
            vm.set_plan_cache_capacity(cache_capacity);
            check_ffn(
                &mut vm,
                &cfg,
                &w,
                &format!("schedule={kernel_schedule} cache={cache_capacity}"),
            );
        }
    }
}

#[test]
fn moe_ffn_matches_oracle_on_eight_workers_sharing_one_plan_cache() {
    let cfg = MoeConfig::tiny();
    let w = Arc::new(make_weights(&cfg, 0xFACE_0FF5));
    let exec = Arc::new(
        compile(
            build_ffn_with_assignments(&cfg).unwrap().module,
            &compile_opts(true),
        )
        .unwrap(),
    );
    let registry = Arc::new(Registry::new());
    let cache = SharedPlanCache::new(256);
    let mut handles = Vec::new();
    for worker in 0..8 {
        let exec = Arc::clone(&exec);
        let registry = Arc::clone(&registry);
        let cache = cache.clone();
        let cfg = cfg.clone();
        let w = Arc::clone(&w);
        handles.push(std::thread::spawn(move || {
            let mut vm = Vm::from_parts(exec, registry, cache);
            // Each worker replays every ragged case twice: the second
            // pass hits plans the first pass (or a sibling) populated.
            for round in 0..2 {
                check_ffn(&mut vm, &cfg, &w, &format!("worker={worker} round={round}"));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // The ragged shapes were genuinely shared: the cache saw hits.
    let st = cache.stats();
    assert!(st.hits > 0, "expected cross-worker plan reuse: {st:?}");
}

#[test]
fn moe_dispatch_routes_like_the_reference_end_to_end() {
    let cfg = MoeConfig::tiny();
    let (d, h, e) = (
        cfg.d_model as usize,
        cfg.d_ff as usize,
        cfg.experts as usize,
    );
    let w = make_weights(&cfg, 0xD15_0A7C);
    let mut seed = 0x5CA7_7E12_u64;
    let router = random_f32s(d * e, &mut seed);
    let exec = compile(build_dispatch(&cfg).unwrap().module, &compile_opts(true)).unwrap();
    let mut vm = Vm::new(exec);
    for t in [1usize, 2, 7, 11] {
        let tokens = random_f32s(t * d, &mut seed);
        let mut args = vec![tensor2(t, d, &tokens), tensor2(d, e, &router)];
        args.extend(weight_values(&w, &cfg));
        let got = vm.run("moe_dispatch", &args).unwrap();
        let assign = reference_route(&tokens, &router, t, d, e);
        let expect = reference_moe(&tokens, &assign, &w.w1, &w.w2, d, h);
        assert_eq!(bits(&got), ref_bits(&expect), "t={t}");
    }
}
