//! Property-style tests over the compiler's core invariants.
//!
//! These were originally `proptest` properties; to keep the workspace
//! building fully offline they are now deterministic seeded-generator
//! loops over the same input distributions. Every case that fails prints
//! the seed that produced it, so failures reproduce exactly.

use std::collections::HashMap;

use relax::core::{BlockBuilder, DataType, Expr, Op, StructInfo};
use relax::passes::{compile, CompileOptions};
use relax::tir::NDArray;
use relax::vm::{Instr, Value, Vm};
use relax_arith::{simplify, substitute, Analyzer, PrimExpr, SubstMap, Var as SymVar};

// ---------------------------------------------------------------------
// Deterministic generator (in-repo xorshift PRNG; no external deps).
// ---------------------------------------------------------------------

/// Small xorshift64* PRNG: deterministic, seed-reproducible.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform integer in `[lo, hi)`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }
}

/// Random expression over two fixed variables, depth-bounded (mirrors the
/// old proptest `arb_expr` strategy).
fn gen_expr(rng: &mut XorShift, a: &SymVar, b: &SymVar, depth: u32) -> PrimExpr {
    if depth == 0 || rng.range(0, 3) == 0 {
        return match rng.range(0, 3) {
            0 => PrimExpr::Int(rng.range(-6, 7)),
            1 => PrimExpr::Var(a.clone()),
            _ => PrimExpr::Var(b.clone()),
        };
    }
    let x = gen_expr(rng, a, b, depth - 1);
    let y = gen_expr(rng, a, b, depth - 1);
    match rng.range(0, 7) {
        0 => x + y,
        1 => x - y,
        2 => x * y,
        3 => x.floor_div(y),
        4 => x.floor_mod(y),
        5 => x.min(y),
        _ => x.max(y),
    }
}

// ---------------------------------------------------------------------
// Symbolic arithmetic properties.
// ---------------------------------------------------------------------

/// Simplification preserves evaluation wherever the original expression
/// evaluates (division by zero may legitimately disappear after
/// simplification, e.g. `0 * (x // 0)`).
#[test]
fn simplify_preserves_evaluation() {
    let a = SymVar::new("a");
    let b = SymVar::new("b");
    for seed in 0..256u64 {
        let mut rng = XorShift::new(seed + 1);
        let va = rng.range(1, 50);
        let vb = rng.range(1, 50);
        let e = gen_expr(&mut rng, &a, &b, 4);
        let mut env = HashMap::new();
        env.insert(a.clone(), va);
        env.insert(b.clone(), vb);
        if let Ok(expected) = e.eval(&env) {
            let s = simplify(&e);
            let got = s.eval(&env).expect("simplified form must still evaluate");
            assert_eq!(got, expected, "seed {seed}: expr {e} simplified to {s}");
        }
    }
}

/// Simplification is idempotent.
#[test]
fn simplify_is_idempotent() {
    let a = SymVar::new("a");
    let b = SymVar::new("b");
    for seed in 0..256u64 {
        let mut rng = XorShift::new(seed + 0x1000);
        let e = gen_expr(&mut rng, &a, &b, 4);
        let once = simplify(&e);
        let twice = simplify(&once);
        assert_eq!(once, twice, "seed {seed}: expr {e}");
    }
}

/// prove_equal is sound: whenever the analyzer claims two expressions are
/// equal, they evaluate identically on concrete inputs.
#[test]
fn prove_equal_is_sound() {
    let a = SymVar::new("a");
    let b = SymVar::new("b");
    let ana = Analyzer::new();
    for seed in 0..256u64 {
        let mut rng = XorShift::new(seed + 0x2000);
        let va = rng.range(1, 40);
        let vb = rng.range(1, 40);
        let e1 = gen_expr(&mut rng, &a, &b, 4);
        let e2 = gen_expr(&mut rng, &a, &b, 4);
        if ana.prove_equal(&e1, &e2) {
            let mut env = HashMap::new();
            env.insert(a.clone(), va);
            env.insert(b.clone(), vb);
            if let (Ok(x), Ok(y)) = (e1.eval(&env), e2.eval(&env)) {
                assert_eq!(x, y, "seed {seed}: {e1} vs {e2}");
            }
            // Division-by-zero on either side: no claim to check.
        }
    }
}

/// Substitution commutes with evaluation.
#[test]
fn substitution_commutes_with_evaluation() {
    let a = SymVar::new("a");
    let b = SymVar::new("b");
    for seed in 0..256u64 {
        let mut rng = XorShift::new(seed + 0x3000);
        let va = rng.range(1, 30);
        let vb = rng.range(1, 30);
        let e = gen_expr(&mut rng, &a, &b, 4);
        let mut map = SubstMap::new();
        map.insert(a.clone(), PrimExpr::Int(va));
        map.insert(b.clone(), PrimExpr::Int(vb));
        let mut env = HashMap::new();
        env.insert(a.clone(), va);
        env.insert(b.clone(), vb);
        if let Ok(expected) = e.eval(&env) {
            let substituted = substitute(&e, &map);
            assert_eq!(
                substituted.eval(&HashMap::new()).unwrap(),
                expected,
                "seed {seed}: expr {e}"
            );
        }
    }
}

/// Upper bounds are conservative: evaluating under any assignment within
/// the declared bounds never exceeds the analyzer's bound.
#[test]
fn upper_bounds_are_conservative() {
    let a = SymVar::new("a");
    let b = SymVar::new("b");
    for seed in 0..256u64 {
        let mut rng = XorShift::new(seed + 0x4000);
        let ba = rng.range(1, 20);
        let bb = rng.range(1, 20);
        let va = rng.range(1, 20).min(ba);
        let vb = rng.range(1, 20).min(bb);
        let e = gen_expr(&mut rng, &a, &b, 4);
        let mut ana = Analyzer::new();
        ana.bind(a.clone(), relax_arith::IntBound::range(0, ba));
        ana.bind(b.clone(), relax_arith::IntBound::range(0, bb));
        if let Some(bound) = ana.upper_bound(&e) {
            let mut env = HashMap::new();
            env.insert(a.clone(), va);
            env.insert(b.clone(), vb);
            if let Ok(v) = e.eval(&env) {
                assert!(v <= bound, "seed {seed}: {e} = {v} > bound {bound}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Whole-pipeline properties on random operator chains.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum ChainOp {
    Relu,
    Exp,
    Silu,
    Neg,
    AddSelf,
    MulSelf,
    Matmul8,
}

fn gen_chain(rng: &mut XorShift) -> Vec<ChainOp> {
    let len = rng.range(1, 8) as usize;
    (0..len)
        .map(|_| match rng.range(0, 7) {
            0 => ChainOp::Relu,
            1 => ChainOp::Exp,
            2 => ChainOp::Silu,
            3 => ChainOp::Neg,
            4 => ChainOp::AddSelf,
            5 => ChainOp::MulSelf,
            _ => ChainOp::Matmul8,
        })
        .collect()
}

fn build_chain(ops: &[ChainOp]) -> relax::core::IRModule {
    let mut bb = BlockBuilder::new();
    let n = SymVar::new("n");
    let p = bb.begin_function(
        "main",
        vec![
            (
                "x".into(),
                StructInfo::tensor(vec![n.into(), 8.into()], DataType::F32),
            ),
            (
                "w".into(),
                StructInfo::tensor(vec![8.into(), 8.into()], DataType::F32),
            ),
        ],
    );
    bb.begin_dataflow();
    let mut cur = p[0].clone();
    for op in ops {
        cur = match op {
            ChainOp::Relu => bb.emit_op(Op::Relu, &[cur]).unwrap(),
            ChainOp::Exp => bb.emit_op(Op::Exp, &[cur]).unwrap(),
            ChainOp::Silu => bb.emit_op(Op::Silu, &[cur]).unwrap(),
            ChainOp::Neg => bb.emit_op(Op::Neg, &[cur]).unwrap(),
            ChainOp::AddSelf => bb.emit_op(Op::Add, &[cur.clone(), cur]).unwrap(),
            ChainOp::MulSelf => bb.emit_op(Op::Mul, &[cur.clone(), cur]).unwrap(),
            ChainOp::Matmul8 => bb.emit_op(Op::Matmul, &[cur, p[1].clone()]).unwrap(),
        };
    }
    let out = bb.emit_output(Expr::Var(cur)).unwrap();
    bb.end_dataflow();
    bb.finish_function(out.into(), None).unwrap();
    bb.finish()
}

/// The optimized pipeline computes the same values as the unoptimized one
/// on every random operator chain — fusion, library dispatch, memory
/// planning and graph capture are all semantics-preserving.
#[test]
fn optimized_pipeline_is_semantics_preserving() {
    for seed in 0..24u64 {
        let mut rng = XorShift::new(seed + 0x5000);
        let ops = gen_chain(&mut rng);
        let module = build_chain(&ops);
        let x = NDArray::from_f64(
            &[2, 8],
            DataType::F32,
            (0..16).map(|v| (v as f64) / 9.0 - 0.7).collect(),
        )
        .unwrap();
        let w = NDArray::from_f64(
            &[8, 8],
            DataType::F32,
            (0..64).map(|v| ((v % 9) as f64) / 9.0 - 0.4).collect(),
        )
        .unwrap();
        let args = [Value::Tensor(x), Value::Tensor(w)];

        let full = compile(module.clone(), &CompileOptions::default()).unwrap();
        let base = compile(module, &CompileOptions::baseline()).unwrap();
        let out_full = Vm::new(full).run("main", &args).unwrap();
        let out_base = Vm::new(base).run("main", &args).unwrap();
        let a = out_full.as_tensor().unwrap().to_f64_vec();
        let b = out_base.as_tensor().unwrap().to_f64_vec();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            if x.is_finite() || y.is_finite() {
                let tol = 1e-3 * (1.0 + x.abs().max(y.abs()));
                assert!(
                    (x - y).abs() < tol,
                    "seed {seed}: {x} vs {y} (ops {ops:?})"
                );
            }
        }
    }
}

/// Memory planning never uses more storages than the unplanned path uses
/// allocations, and eliminates every dynamic allocation.
#[test]
fn planner_reduces_allocations() {
    for seed in 0..24u64 {
        let mut rng = XorShift::new(seed + 0x6000);
        let ops = gen_chain(&mut rng);
        let module = build_chain(&ops);
        let opts_unplanned = CompileOptions {
            memory_plan: false,
            graph_capture: false,
            ..CompileOptions::default()
        };
        let unplanned = compile(module.clone(), &opts_unplanned).unwrap();
        let planned = compile(module, &CompileOptions::default()).unwrap();
        let count = |exec: &relax::vm::Executable, pat: fn(&Instr) -> bool| -> usize {
            exec.funcs
                .values()
                .map(|f| {
                    fn walk(instrs: &[Instr], pat: fn(&Instr) -> bool) -> usize {
                        instrs
                            .iter()
                            .map(|i| match i {
                                Instr::CaptureRegion { body, .. } => walk(body, pat),
                                other => usize::from(pat(other)),
                            })
                            .sum()
                    }
                    walk(&f.instrs, pat)
                })
                .sum()
        };
        let allocs = count(&unplanned, |i| matches!(i, Instr::AllocTensor { .. }));
        let storages = count(&planned, |i| matches!(i, Instr::AllocStorage { .. }));
        let leftover_dynamic = count(&planned, |i| matches!(i, Instr::AllocTensor { .. }));
        assert_eq!(leftover_dynamic, 0, "seed {seed}");
        assert!(
            storages <= allocs,
            "seed {seed}: {storages} storages vs {allocs} allocs"
        );
    }
}
