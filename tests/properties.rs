//! Property-based tests over the compiler's core invariants.

use std::collections::HashMap;

use proptest::prelude::*;

use relax::core::{BlockBuilder, DataType, Expr, Op, StructInfo};
use relax::passes::{compile, CompileOptions};
use relax::tir::NDArray;
use relax::vm::{Instr, Value, Vm};
use relax_arith::{simplify, substitute, Analyzer, PrimExpr, SubstMap, Var as SymVar};

// ---------------------------------------------------------------------
// Symbolic arithmetic properties.
// ---------------------------------------------------------------------

/// Random expression over two fixed variables.
fn arb_expr(vars: (SymVar, SymVar)) -> impl Strategy<Value = PrimExpr> {
    let (a, b) = vars;
    let leaf = prop_oneof![
        (-6i64..=6).prop_map(PrimExpr::Int),
        Just(PrimExpr::Var(a)),
        Just(PrimExpr::Var(b)),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        (inner.clone(), inner, 0..6u8).prop_map(|(x, y, op)| match op {
            0 => x + y,
            1 => x - y,
            2 => x * y,
            3 => x.floor_div(y),
            4 => x.floor_mod(y),
            5 => x.min(y),
            _ => x.max(y),
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Simplification preserves evaluation wherever the original
    /// expression evaluates (division by zero may legitimately disappear
    /// after simplification, e.g. `0 * (x // 0)`).
    #[test]
    fn simplify_preserves_evaluation(
        seedless in (1i64..50, 1i64..50).prop_flat_map(|(va, vb)| {
            let a = SymVar::new("a");
            let b = SymVar::new("b");
            arb_expr((a.clone(), b.clone())).prop_map(move |e| (e, a.clone(), b.clone(), va, vb))
        })
    ) {
        let (e, a, b, va, vb) = seedless;
        let mut env = HashMap::new();
        env.insert(a, va);
        env.insert(b, vb);
        if let Ok(expected) = e.eval(&env) {
            let s = simplify(&e);
            let got = s.eval(&env).expect("simplified form must still evaluate");
            prop_assert_eq!(got, expected, "expr {} simplified to {}", e, s);
        }
    }

    /// Simplification is idempotent.
    #[test]
    fn simplify_is_idempotent(
        e in arb_expr((SymVar::new("a"), SymVar::new("b")))
    ) {
        let once = simplify(&e);
        let twice = simplify(&once);
        prop_assert_eq!(once, twice);
    }

    /// prove_equal is sound: whenever the analyzer claims two expressions
    /// are equal, they evaluate identically on concrete inputs.
    #[test]
    fn prove_equal_is_sound(
        pair in (1i64..40, 1i64..40).prop_flat_map(|(va, vb)| {
            let a = SymVar::new("a");
            let b = SymVar::new("b");
            (
                arb_expr((a.clone(), b.clone())),
                arb_expr((a.clone(), b.clone())),
                Just((a, b, va, vb)),
            )
        })
    ) {
        let (e1, e2, (a, b, va, vb)) = pair;
        let ana = Analyzer::new();
        if ana.prove_equal(&e1, &e2) {
            let mut env = HashMap::new();
            env.insert(a, va);
            env.insert(b, vb);
            if let (Ok(x), Ok(y)) = (e1.eval(&env), e2.eval(&env)) {
                prop_assert_eq!(x, y, "{} vs {}", e1, e2);
            }
            // Division-by-zero on either side: no claim to check.
        }
    }

    /// Substitution commutes with evaluation.
    #[test]
    fn substitution_commutes_with_evaluation(
        data in (1i64..30, 1i64..30).prop_flat_map(|(va, vb)| {
            let a = SymVar::new("a");
            let b = SymVar::new("b");
            arb_expr((a.clone(), b.clone())).prop_map(move |e| (e, a.clone(), b.clone(), va, vb))
        })
    ) {
        let (e, a, b, va, vb) = data;
        let mut map = SubstMap::new();
        map.insert(a.clone(), PrimExpr::Int(va));
        map.insert(b.clone(), PrimExpr::Int(vb));
        let mut env = HashMap::new();
        env.insert(a, va);
        env.insert(b, vb);
        if let Ok(expected) = e.eval(&env) {
            let substituted = substitute(&e, &map);
            prop_assert_eq!(substituted.eval(&HashMap::new()).unwrap(), expected);
        }
    }

    /// Upper bounds are conservative: evaluating under any assignment
    /// within the declared bounds never exceeds the analyzer's bound.
    #[test]
    fn upper_bounds_are_conservative(
        data in (1i64..20, 1i64..20, 1i64..20, 1i64..20).prop_flat_map(|(ba, bb, va, vb)| {
            let a = SymVar::new("a");
            let b = SymVar::new("b");
            arb_expr((a.clone(), b.clone()))
                .prop_map(move |e| (e, a.clone(), b.clone(), ba, bb, va.min(ba), vb.min(bb)))
        })
    ) {
        let (e, a, b, ba, bb, va, vb) = data;
        let mut ana = Analyzer::new();
        ana.bind(a.clone(), relax_arith::IntBound::range(0, ba));
        ana.bind(b.clone(), relax_arith::IntBound::range(0, bb));
        if let Some(bound) = ana.upper_bound(&e) {
            let mut env = HashMap::new();
            env.insert(a, va);
            env.insert(b, vb);
            if let Ok(v) = e.eval(&env) {
                prop_assert!(v <= bound, "{} = {} > bound {}", e, v, bound);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Whole-pipeline properties on random operator chains.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum ChainOp {
    Relu,
    Exp,
    Silu,
    Neg,
    AddSelf,
    MulSelf,
    Matmul8,
}

fn arb_chain() -> impl Strategy<Value = Vec<ChainOp>> {
    prop::collection::vec(
        prop_oneof![
            Just(ChainOp::Relu),
            Just(ChainOp::Exp),
            Just(ChainOp::Silu),
            Just(ChainOp::Neg),
            Just(ChainOp::AddSelf),
            Just(ChainOp::MulSelf),
            Just(ChainOp::Matmul8),
        ],
        1..8,
    )
}

fn build_chain(ops: &[ChainOp]) -> relax::core::IRModule {
    let mut bb = BlockBuilder::new();
    let n = SymVar::new("n");
    let p = bb.begin_function(
        "main",
        vec![
            (
                "x".into(),
                StructInfo::tensor(vec![n.into(), 8.into()], DataType::F32),
            ),
            (
                "w".into(),
                StructInfo::tensor(vec![8.into(), 8.into()], DataType::F32),
            ),
        ],
    );
    bb.begin_dataflow();
    let mut cur = p[0].clone();
    for op in ops {
        cur = match op {
            ChainOp::Relu => bb.emit_op(Op::Relu, &[cur]).unwrap(),
            ChainOp::Exp => bb.emit_op(Op::Exp, &[cur]).unwrap(),
            ChainOp::Silu => bb.emit_op(Op::Silu, &[cur]).unwrap(),
            ChainOp::Neg => bb.emit_op(Op::Neg, &[cur]).unwrap(),
            ChainOp::AddSelf => bb.emit_op(Op::Add, &[cur.clone(), cur]).unwrap(),
            ChainOp::MulSelf => bb.emit_op(Op::Mul, &[cur.clone(), cur]).unwrap(),
            ChainOp::Matmul8 => bb.emit_op(Op::Matmul, &[cur, p[1].clone()]).unwrap(),
        };
    }
    let out = bb.emit_output(Expr::Var(cur)).unwrap();
    bb.end_dataflow();
    bb.finish_function(out.into(), None).unwrap();
    bb.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The optimized pipeline computes the same values as the unoptimized
    /// one on every random operator chain — fusion, library dispatch,
    /// memory planning and graph capture are all semantics-preserving.
    #[test]
    fn optimized_pipeline_is_semantics_preserving(ops in arb_chain()) {
        let module = build_chain(&ops);
        let x = NDArray::from_f64(
            &[2, 8],
            DataType::F32,
            (0..16).map(|v| (v as f64) / 9.0 - 0.7).collect(),
        ).unwrap();
        let w = NDArray::from_f64(
            &[8, 8],
            DataType::F32,
            (0..64).map(|v| ((v % 9) as f64) / 9.0 - 0.4).collect(),
        ).unwrap();
        let args = [Value::Tensor(x), Value::Tensor(w)];

        let full = compile(module.clone(), &CompileOptions::default()).unwrap();
        let base = compile(module, &CompileOptions::baseline()).unwrap();
        let out_full = Vm::new(full).run("main", &args).unwrap();
        let out_base = Vm::new(base).run("main", &args).unwrap();
        let a = out_full.as_tensor().unwrap().to_f64_vec();
        let b = out_base.as_tensor().unwrap().to_f64_vec();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            if x.is_finite() || y.is_finite() {
                let tol = 1e-3 * (1.0 + x.abs().max(y.abs()));
                prop_assert!((x - y).abs() < tol, "{} vs {} (ops {:?})", x, y, ops);
            }
        }
    }

    /// Memory planning never uses more storages than the unplanned path
    /// uses allocations, and eliminates every dynamic allocation.
    #[test]
    fn planner_reduces_allocations(ops in arb_chain()) {
        let module = build_chain(&ops);
        let opts_unplanned = CompileOptions {
            memory_plan: false,
            graph_capture: false,
            ..CompileOptions::default()
        };
        let unplanned = compile(module.clone(), &opts_unplanned).unwrap();
        let planned = compile(module, &CompileOptions::default()).unwrap();
        let count = |exec: &relax::vm::Executable, pat: fn(&Instr) -> bool| -> usize {
            exec.funcs.values().map(|f| {
                fn walk(instrs: &[Instr], pat: fn(&Instr) -> bool) -> usize {
                    instrs.iter().map(|i| match i {
                        Instr::CaptureRegion { body, .. } => walk(body, pat),
                        other => usize::from(pat(other)),
                    }).sum()
                }
                walk(&f.instrs, pat)
            }).sum()
        };
        let allocs = count(&unplanned, |i| matches!(i, Instr::AllocTensor { .. }));
        let storages = count(&planned, |i| matches!(i, Instr::AllocStorage { .. }));
        let leftover_dynamic = count(&planned, |i| matches!(i, Instr::AllocTensor { .. }));
        prop_assert_eq!(leftover_dynamic, 0);
        prop_assert!(storages <= allocs, "{} storages vs {} allocs", storages, allocs);
    }
}
