//! Integration tests that reproduce the paper's worked examples
//! (Figures 3, 4, 8, 9, 10, 11 and Table 1) end to end.

use relax::core::{BlockBuilder, DataType, Expr, IRModule, Op, ShapeDesc, StructInfo};
use relax::models::nn::{pack_q4, ModelBuilder};
use relax::passes::{
    annotate_compute_patterns, compile, dead_code_elimination, fuse_ops, fuse_tensor_ir,
    legalize_module, lift_tir_workspaces, lower_to_vm, plan_memory, CompileOptions,
};
use relax::tir::{grid, Buffer, NDArray, PrimFunc, Stmt, TirExpr};
use relax::vm::{Instr, Value, Vm};
use relax_arith::{PrimExpr, Var as SymVar};

/// Table 1: annotation syntax round-trips through the printer.
#[test]
fn table1_annotation_syntax() {
    let n = SymVar::new("n");
    assert_eq!(StructInfo::Object.to_string(), "Object");
    assert_eq!(
        StructInfo::shape(vec![n.clone().into(), 4.into()]).to_string(),
        "Shape([n, 4])"
    );
    assert_eq!(StructInfo::shape_ndim(2).to_string(), "Shape(ndim=2)");
    assert_eq!(
        StructInfo::tensor(vec![n.clone().into(), 4.into()], DataType::F32).to_string(),
        "Tensor((n, 4), \"f32\")"
    );
    assert_eq!(
        StructInfo::tensor_unknown().to_string(),
        "Tensor(ndim=None, dtype=None)"
    );
}

/// Figure 3: the symbolic-shape function builds, deduces the documented
/// annotations, compiles, and runs with the match_cast runtime check.
#[test]
fn figure3_symbolic_shape_fn() {
    let mut bb = BlockBuilder::new();
    let n = SymVar::new("n");
    let p = bb.begin_function(
        "symbolic_shape_fn",
        vec![(
            "x".into(),
            StructInfo::tensor(vec![n.clone().into(), 2.into(), 2.into()], DataType::F32),
        )],
    );
    bb.begin_dataflow();
    let lv0 = bb
        .emit(Expr::CallOp {
            op: Op::Reshape,
            args: vec![
                p[0].clone().into(),
                Expr::ShapeValue(vec![n.clone().into(), 4.into()]),
            ],
            attrs: Default::default(),
        })
        .unwrap();
    assert_eq!(lv0.struct_info().to_string(), "Tensor((n, 4), \"f32\")");
    let lv1 = bb.emit_op(Op::Flatten, &[lv0]).unwrap();
    assert_eq!(lv1.struct_info().to_string(), "Tensor(((n * 4),), \"f32\")");
    let lv2 = bb.emit_op(Op::Unique, &[lv1]).unwrap();
    assert_eq!(lv2.struct_info().to_string(), "Tensor(ndim=1, \"f32\")");
    let m = SymVar::new("m");
    let lv3 = bb
        .emit_match_cast(
            lv2.into(),
            StructInfo::tensor(vec![m.clone().into()], DataType::F32),
        )
        .unwrap();
    let lv4 = bb
        .emit_output(Expr::op_call(Op::Exp, vec![lv3.into()]))
        .unwrap();
    assert_eq!(lv4.struct_info().to_string(), "Tensor((m,), \"f32\")");
    bb.end_dataflow();
    bb.finish_function(lv4.into(), None).unwrap();
    let module = bb.finish();
    assert!(relax::core::assert_well_formed(&module).is_ok());

    let exec = compile(module, &CompileOptions::default()).unwrap();
    let mut vm = Vm::new(exec);
    let x = NDArray::from_f64(
        &[2, 2, 2],
        DataType::F32,
        vec![0., 1., 0., 2., 1., 2., 3., 0.],
    )
    .unwrap();
    let out = vm.run("symbolic_shape_fn", &[Value::Tensor(x)]).unwrap();
    let t = out.as_tensor().unwrap();
    // unique of {0,1,2,3} -> 4 elements, exp applied.
    assert_eq!(t.shape(), &[4]);
    let got = t.to_f64_vec();
    for (g, e) in got.iter().zip([0.0f64, 1.0, 2.0, 3.0]) {
        assert!((g - e.exp()).abs() < 1e-5);
    }
}

/// Figure 8: fusing operators whose intermediate shapes are compound
/// expressions requires an extra symbolic shape parameter on the fused
/// function.
#[test]
fn figure8_fusion_with_symbolic_expression_params() {
    let mut bb = BlockBuilder::new();
    let n = SymVar::new("n");
    let p = bb.begin_function(
        "main",
        vec![(
            "x".into(),
            StructInfo::tensor(vec![n.clone().into(), 2.into()], DataType::F32),
        )],
    );
    // flatten sits in a plain binding block so fusion only sees add+relu.
    let lv0 = bb.emit_op(Op::Flatten, &[p[0].clone()]).unwrap();
    assert_eq!(lv0.struct_info().to_string(), "Tensor(((n * 2),), \"f32\")");
    bb.begin_dataflow();
    let lv1 = bb.emit_op(Op::Add, &[lv0.clone(), lv0]).unwrap();
    let lv2 = bb
        .emit_output(Expr::op_call(Op::Relu, vec![lv1.into()]))
        .unwrap();
    bb.end_dataflow();
    bb.finish_function(lv2.into(), None).unwrap();
    let mut module = bb.finish();

    legalize_module(&mut module).unwrap();
    annotate_compute_patterns(&mut module);
    let groups = fuse_ops(&mut module);
    assert_eq!(groups, 1);
    // The fused function's tensor parameters have compound shapes (n*2,),
    // so an extra Shape(["n"]) parameter is appended (Figure 8).
    let fused_name = module
        .function_names()
        .into_iter()
        .find(|f| f.starts_with("fused"))
        .expect("fused function exists");
    let fused = module.function(&fused_name).unwrap();
    let last = fused.params.last().unwrap();
    match last.struct_info() {
        StructInfo::Shape(ShapeDesc::Known(dims)) => {
            assert_eq!(dims.len(), 1);
            assert_eq!(dims[0].as_var().unwrap().name(), "n");
        }
        other => panic!("expected a Shape parameter, got {other}"),
    }
    // The call site passes shape(n) as the extra argument.
    let main = module.function("main").unwrap();
    let call = main
        .bindings()
        .find_map(|b| match &b.value {
            Expr::CallGlobal { func, args } if func == &fused_name => Some(args.clone()),
            _ => None,
        })
        .expect("call to fused function");
    assert!(matches!(call.last(), Some(Expr::ShapeValue(_))));

    // FuseTensorIR merges it into one kernel that runs (the runtime solves
    // `n * 2 == len` when binding the parameter shape).
    fuse_tensor_ir(&mut module).unwrap();
    dead_code_elimination(&mut module);
    let exec = compile(module, &CompileOptions::baseline()).unwrap();
    let mut vm = Vm::new(exec);
    let x = NDArray::from_f64(&[3, 2], DataType::F32, vec![-1., 1., -2., 2., -3., 3.]).unwrap();
    let out = vm.run("main", &[Value::Tensor(x)]).unwrap();
    assert_eq!(
        out.as_tensor().unwrap().to_f64_vec(),
        vec![0., 2., 0., 4., 0., 6.]
    );
}

/// Figure 9: the quantization-decode program fuses into the matmul and the
/// merged kernel computes correctly (prologue fusion of a customized
/// tensor program).
#[test]
fn figure9_quantized_decode_fusion() {
    let (k, nout) = (8i64, 32i64);
    let n = SymVar::new("n");
    let mut mb = ModelBuilder::begin(
        IRModule::new(),
        "main",
        vec![
            (
                "x".into(),
                StructInfo::tensor(vec![n.into(), k.into()], DataType::F16),
            ),
            (
                "wdata".into(),
                StructInfo::tensor(vec![k.into(), (nout / 8).into()], DataType::U32),
            ),
            (
                "wscale".into(),
                StructInfo::tensor(vec![k.into(), (nout / 32).into()], DataType::F16),
            ),
        ],
    );
    let x = mb.param("x").unwrap();
    let wd = mb.param("wdata").unwrap();
    let ws = mb.param("wscale").unwrap();
    let y = mb.q4_linear(x, wd, ws, k, nout, DataType::F16).unwrap();
    let out = mb.output(y.into()).unwrap();
    let mut module = mb.finish(out.into()).unwrap();

    // decode_q4 classifies Injective via analysis feedback.
    annotate_compute_patterns(&mut module);
    let decode = module.tir_func("decode_q4").unwrap();
    assert_eq!(decode.attr("compute_pattern"), Some("Injective"));

    legalize_module(&mut module).unwrap();
    annotate_compute_patterns(&mut module);
    assert_eq!(fuse_ops(&mut module), 1);
    assert_eq!(fuse_tensor_ir(&mut module).unwrap(), 1);
    dead_code_elimination(&mut module);

    // Exactly one call_tir remains in main, to the merged kernel.
    let main = module.function("main").unwrap();
    let calls: Vec<_> = main
        .bindings()
        .filter_map(|b| match &b.value {
            Expr::CallTir { func, .. } => Some(func.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(calls.len(), 1);
    assert!(calls[0].starts_with("fused"));

    // Execute the whole module through the VM.
    let exec = compile(module, &CompileOptions::baseline()).unwrap();
    let mut vm = Vm::new(exec);
    let nibbles: Vec<Vec<u8>> = (0..k)
        .map(|r| (0..nout).map(|c| ((r + c) % 16) as u8).collect())
        .collect();
    let scales: Vec<Vec<f64>> = (0..k).map(|_| vec![2.0]).collect();
    let (data, flat_scales) = pack_q4(&nibbles, &scales);
    let wdata = NDArray::from_i64(&[k as usize, 4], DataType::U32, data).unwrap();
    let wscale = NDArray::from_f64(&[k as usize, 1], DataType::F16, flat_scales).unwrap();
    let x = NDArray::from_f64(&[1, k as usize], DataType::F16, vec![1.0; k as usize]).unwrap();
    let out = vm
        .run(
            "main",
            &[
                Value::Tensor(x),
                Value::Tensor(wdata),
                Value::Tensor(wscale),
            ],
        )
        .unwrap();
    let got = out.as_tensor().unwrap().to_f64_vec();
    for (j, g) in got.iter().enumerate() {
        let expect: f64 = (0..k)
            .map(|r| (f64::from(nibbles[r as usize][j]) - 7.0) * 2.0)
            .sum();
        assert!((g - expect).abs() < 1e-2, "col {j}: {g} vs {expect}");
    }
}

/// Figure 10: four chained dynamic intermediates plan into two storages
/// because `(2, n)` and `(n, 2)` have provably equal byte sizes.
#[test]
fn figure10_memory_planning_two_storages() {
    let mut bb = BlockBuilder::new();
    let n = SymVar::new("n");
    let p = bb.begin_function(
        "main",
        vec![(
            "x".into(),
            StructInfo::tensor(vec![2.into(), n.clone().into()], DataType::F32),
        )],
    );
    bb.begin_dataflow();
    let lv0 = bb
        .emit(Expr::op_call(Op::Exp, vec![p[0].clone().into()]))
        .unwrap();
    let axes: relax::core::OpAttrs = [("axes".to_string(), "1,0".to_string())]
        .into_iter()
        .collect();
    let lv1 = bb
        .emit_op_attrs(Op::Permute, vec![lv0.into()], axes.clone())
        .unwrap();
    let lv2 = bb.emit(Expr::op_call(Op::Relu, vec![lv1.into()])).unwrap();
    let lv3 = bb
        .emit_op_attrs(Op::Permute, vec![lv2.into()], axes)
        .unwrap();
    let out = bb
        .emit_output(Expr::op_call(Op::Exp, vec![lv3.into()]))
        .unwrap();
    bb.end_dataflow();
    bb.finish_function(out.into(), None).unwrap();
    let mut module = bb.finish();
    legalize_module(&mut module).unwrap();
    let exec = lower_to_vm(&module, &Default::default()).unwrap();
    let f = exec.funcs.get("main").unwrap();
    let allocs_before = f
        .instrs
        .iter()
        .filter(|i| matches!(i, Instr::AllocTensor { .. }))
        .count();
    assert_eq!(allocs_before, 5);
    let planned = plan_memory(f, &Default::default());
    let storages = planned
        .instrs
        .iter()
        .filter(|i| matches!(i, Instr::AllocStorage { .. }))
        .count();
    // lv0..lv3 chain into two storages (Figure 10); the returned tensor
    // also fits a freed storage, so the total stays at two.
    assert_eq!(storages, 2);
}

/// Figure 11: a tensor program with an internal global workspace gets the
/// allocation lifted to the graph level, where it is planned, and the
/// program still computes correctly.
#[test]
fn figure11_workspace_lifting_end_to_end() {
    // mm_split_k-like function: copies X to Y via a constant workspace.
    let n = SymVar::new("n");
    let x = Buffer::new("X", vec![n.clone().into(), 4.into()], DataType::F32);
    let y = Buffer::new("Y", vec![n.clone().into(), 4.into()], DataType::F32);
    let ws = Buffer::new("workspace", vec![64.into()], DataType::F32);
    let (iv, nest) = grid(&[("i", n.clone().into()), ("j", 4.into())]);
    let (i, j) = (iv[0].clone(), iv[1].clone());
    let copy = nest.build(Stmt::seq(vec![
        // Stage through the workspace to prove it is read/written.
        Stmt::store(
            &ws,
            vec![PrimExpr::from(j.clone())],
            TirExpr::load(&x, vec![i.clone().into(), j.clone().into()]) * TirExpr::FloatImm(3.0),
        ),
        Stmt::store(
            &y,
            vec![i.into(), j.clone().into()],
            TirExpr::load(&ws, vec![PrimExpr::from(j)]),
        ),
    ]));
    let split_k = PrimFunc::new(
        "mm_split_k",
        vec![x, y],
        1,
        Stmt::Alloc {
            buffer: ws,
            body: Box::new(copy),
        },
    );

    let mut bb = BlockBuilder::new();
    let tir_name = bb.add_tir_func(split_k);
    let np = SymVar::new("n");
    let p = bb.begin_function(
        "main",
        vec![(
            "x".into(),
            StructInfo::tensor(vec![np.clone().into(), 4.into()], DataType::F32),
        )],
    );
    bb.begin_dataflow();
    let out = bb
        .emit_output(Expr::CallTir {
            func: tir_name.clone(),
            args: vec![p[0].clone().into()],
            out_sinfo: StructInfo::tensor(vec![np.into(), 4.into()], DataType::F32),
            sym_args: vec![],
        })
        .unwrap();
    bb.end_dataflow();
    bb.finish_function(out.into(), None).unwrap();
    let mut module = bb.finish();

    let lifted = lift_tir_workspaces(&mut module);
    assert_eq!(lifted.len(), 1);
    assert_eq!(module.tir_func(&tir_name).unwrap().params().len(), 3);

    let exec = lower_to_vm(&module, &lifted).unwrap();
    // The caller now allocates the workspace: one extra AllocTensor.
    let f = exec.funcs.get("main").unwrap();
    let allocs = f
        .instrs
        .iter()
        .filter(|i| matches!(i, Instr::AllocTensor { .. }))
        .count();
    assert_eq!(allocs, 2); // workspace + output

    let mut vm = Vm::new(exec);
    let x = NDArray::from_f64(&[2, 4], DataType::F32, (0..8).map(f64::from).collect()).unwrap();
    let out = vm.run("main", &[Value::Tensor(x)]).unwrap();
    let got = out.as_tensor().unwrap().to_f64_vec();
    assert_eq!(got, (0..8).map(|v| f64::from(v) * 3.0).collect::<Vec<_>>());
}

/// Figure 4 semantics: `call_tir` output annotations drive allocation and
/// the callee mutates the destination (DPS).
#[test]
fn figure4_call_tir_dps_semantics() {
    let mut bb = BlockBuilder::new();
    let n = SymVar::new("n");
    let p = bb.begin_function(
        "main",
        vec![
            (
                "x".into(),
                StructInfo::tensor(vec![n.clone().into(), 128.into()], DataType::F32),
            ),
            (
                "w".into(),
                StructInfo::tensor(vec![128.into(), 8.into()], DataType::F32),
            ),
        ],
    );
    bb.begin_dataflow();
    let mm = bb
        .emit_op(Op::Matmul, &[p[0].clone(), p[1].clone()])
        .unwrap();
    let out = bb.emit_output(Expr::Var(mm.clone())).unwrap();
    bb.end_dataflow();
    bb.finish_function(out.into(), None).unwrap();
    let mut module = bb.finish();
    legalize_module(&mut module).unwrap();
    // Printed form matches the paper's call_tir syntax.
    let text = module.to_string();
    assert!(text.contains("call_tir(matmul, [x, w], Tensor((n, 8), \"f32\")"));
    let exec = compile(module, &CompileOptions::baseline()).unwrap();
    let mut vm = Vm::new(exec);
    let x = NDArray::from_f64(&[1, 128], DataType::F32, vec![1.0; 128]).unwrap();
    let w = NDArray::from_f64(&[128, 8], DataType::F32, vec![0.5; 1024]).unwrap();
    let out = vm
        .run("main", &[Value::Tensor(x), Value::Tensor(w)])
        .unwrap();
    assert_eq!(out.as_tensor().unwrap().to_f64_vec(), vec![64.0; 8]);
}
