//! End-to-end tests for the additional model set (§5.4): the tiny Whisper
//! encoder–decoder and the tiny LLaVA vision encoder run numerically
//! through the full pipeline.

use std::collections::HashMap;

use relax::core::{DataType, ShapeDesc, StructInfo};
use relax::models::llava::{build_vision_encoder, LlavaConfig};
use relax::models::whisper::{build_cross_kv, build_decoder_step, build_encoder, WhisperConfig};
use relax::passes::{compile, CompileOptions};
use relax::tir::NDArray;
use relax::vm::{Value, Vm};

fn random_arr(shape: &[usize], dtype: DataType, seed: &mut u64) -> NDArray {
    let n: usize = shape.iter().product();
    let vals: Vec<f64> = (0..n)
        .map(|_| {
            *seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (((*seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5) * 0.3
        })
        .collect();
    NDArray::from_f64(shape, dtype, vals).unwrap()
}

fn materialize(
    params: &[(String, StructInfo)],
    env: &HashMap<&str, i64>,
    weights: &mut HashMap<String, NDArray>,
    seed: &mut u64,
) -> Vec<Value> {
    params
        .iter()
        .map(|(name, sinfo)| {
            let (dims, dt) = match sinfo {
                StructInfo::Tensor {
                    shape: ShapeDesc::Known(d),
                    dtype,
                } => (
                    d.iter()
                        .map(|e| {
                            e.as_int()
                                .unwrap_or_else(|| env[e.as_var().expect("var dim").name()])
                                as usize
                        })
                        .collect::<Vec<_>>(),
                    dtype.unwrap(),
                ),
                other => panic!("unexpected annotation {other}"),
            };
            if name == "tokens" {
                return Value::Tensor(
                    NDArray::from_i64(&dims, dt, vec![1; dims.iter().product()]).unwrap(),
                );
            }
            let arr = weights
                .entry(name.clone())
                .or_insert_with(|| random_arr(&dims, dt, seed))
                .clone();
            Value::Tensor(arr)
        })
        .collect()
}

#[test]
fn whisper_encoder_cross_kv_decoder_pipeline() {
    let cfg = WhisperConfig::tiny();
    let mut seed = 41u64;
    let mut weights = HashMap::new();

    // Encoder.
    let enc = build_encoder(&cfg).unwrap();
    let enc_exec = compile(enc.module.clone(), &CompileOptions::default()).unwrap();
    let env: HashMap<&str, i64> = [("batch", 1), ("s_audio", cfg.audio_ctx)].into();
    let enc_args = materialize(&enc.params, &env, &mut weights, &mut seed);
    let states = Vm::new(enc_exec).run("encode", &enc_args).unwrap();
    let states = states.as_tensor().unwrap().clone();
    assert_eq!(
        states.shape(),
        &[1, cfg.audio_ctx as usize, cfg.d_model as usize]
    );
    assert!(states.to_f64_vec().iter().all(|v| v.is_finite()));

    // Cross K/V projection (once per utterance).
    let cross = build_cross_kv(&cfg).unwrap();
    let cross_exec = compile(cross.module.clone(), &CompileOptions::default()).unwrap();
    let mut cross_args = materialize(&cross.params, &env, &mut weights, &mut seed);
    cross_args[0] = Value::Tensor(states);
    let cross_out = Vm::new(cross_exec).run("cross_kv", &cross_args).unwrap();
    let cross_tensors: Vec<NDArray> = cross_out
        .as_tuple()
        .unwrap()
        .iter()
        .map(|v| v.as_tensor().unwrap().clone())
        .collect();
    assert_eq!(cross_tensors.len(), 2 * cfg.dec_layers);

    // One decode step with empty-ish self caches (length 1).
    let dec = build_decoder_step(&cfg).unwrap();
    let dec_exec = compile(dec.module.clone(), &CompileOptions::default()).unwrap();
    let dec_env: HashMap<&str, i64> =
        [("batch", 1), ("kv_len", 1), ("s_audio", cfg.audio_ctx)].into();
    let mut dec_args = materialize(&dec.params, &dec_env, &mut weights, &mut seed);
    // Patch the cross K/V parameters with the projected values.
    for (i, (name, _)) in dec.params.iter().enumerate() {
        if let Some(rest) = name.strip_prefix('d') {
            if let Some((layer, field)) = rest.split_once('.') {
                let l: usize = layer.parse().unwrap();
                match field {
                    "cross_k" => dec_args[i] = Value::Tensor(cross_tensors[2 * l].clone()),
                    "cross_v" => dec_args[i] = Value::Tensor(cross_tensors[2 * l + 1].clone()),
                    _ => {}
                }
            }
        }
    }
    let out = Vm::new(dec_exec).run("decode", &dec_args).unwrap();
    let tuple = out.as_tuple().unwrap();
    let logits = tuple[0].as_tensor().unwrap();
    assert_eq!(logits.shape(), &[1, 1, cfg.vocab as usize]);
    assert!(logits.to_f64_vec().iter().all(|v| v.is_finite()));
    // Self caches grew by one.
    assert_eq!(tuple[1].as_tensor().unwrap().shape()[2], 2);
}

#[test]
fn llava_vision_encoder_projects_to_llm_space() {
    let cfg = LlavaConfig::tiny();
    let ir = build_vision_encoder(&cfg).unwrap();
    let exec = compile(ir.module.clone(), &CompileOptions::default()).unwrap();
    let mut seed = 47u64;
    let mut weights = HashMap::new();
    let env: HashMap<&str, i64> = [("batch", 1)].into();
    let args = materialize(&ir.params, &env, &mut weights, &mut seed);
    let out = Vm::new(exec).run("encode_image", &args).unwrap();
    let t = out.as_tensor().unwrap();
    assert_eq!(
        t.shape(),
        &[1, cfg.patches as usize, cfg.llm.hidden as usize]
    );
    assert!(t.to_f64_vec().iter().all(|v| v.is_finite()));
}
