//! Robustness integration tests: executable validation, error provenance,
//! fault injection, and graceful degradation.
//!
//! Three guarantees are exercised end to end:
//!
//! 1. the validator rejects hand-corrupted executables with named
//!    violations while pipeline-produced executables pass;
//! 2. every `VmErrorKind` variant is constructible, carries a frame trace,
//!    and leaves the VM in a clean state — a successful run immediately
//!    after any failure counts as a recovery;
//! 3. a run whose shapes exceed the declared planning bounds completes via
//!    the pooled-allocator fallback instead of failing.

use relax::arith::Var as SymVar;
use relax::core::{BlockBuilder, DataType, Expr, IRModule, Op, StructInfo};
use relax::passes::{compile, CompileOptions};
use relax::tir::{grid, Buffer, NDArray, PrimFunc, Stmt, TirExpr};
use relax::vm::registry::Registry;
use relax::vm::{verify, Executable, FaultPlan, Instr, Value, Vm, VmErrorKind, VmFunction};

/// x @ w1 -> relu -> @ w2 -> rms_norm on a symbolic batch dimension.
fn mlp_module() -> (IRModule, SymVar) {
    let mut bb = BlockBuilder::new();
    let n = SymVar::new("n");
    let p = bb.begin_function(
        "main",
        vec![
            (
                "x".into(),
                StructInfo::tensor(vec![n.clone().into(), 8.into()], DataType::F32),
            ),
            (
                "w1".into(),
                StructInfo::tensor(vec![8.into(), 16.into()], DataType::F32),
            ),
            (
                "w2".into(),
                StructInfo::tensor(vec![16.into(), 8.into()], DataType::F32),
            ),
            (
                "g".into(),
                StructInfo::tensor(vec![8.into()], DataType::F32),
            ),
        ],
    );
    bb.begin_dataflow();
    let h = bb
        .emit_op(Op::Matmul, &[p[0].clone(), p[1].clone()])
        .unwrap();
    let h = bb.emit(Expr::op_call(Op::Relu, vec![h.into()])).unwrap();
    let h = bb.emit_op(Op::Matmul, &[h, p[2].clone()]).unwrap();
    let out = bb
        .emit_output(Expr::op_call(
            Op::RmsNorm,
            vec![h.into(), p[3].clone().into()],
        ))
        .unwrap();
    bb.end_dataflow();
    bb.finish_function(out.into(), None).unwrap();
    (bb.finish(), n)
}

/// Compiles the MLP with a planning bound of `bound` on the batch var,
/// without graph capture (so instructions stay at the top level and are
/// easy to corrupt surgically).
fn compiled_mlp(bound: i64) -> Executable {
    let (m, n) = mlp_module();
    let opts = CompileOptions {
        graph_capture: false,
        ..CompileOptions::default()
    }
    .with_bound(n, bound);
    compile(m, &opts).unwrap()
}

fn mlp_args(batch: usize) -> Vec<Value> {
    let fill = |dims: &[usize], scale: f64| {
        let numel: usize = dims.iter().product();
        NDArray::from_f64(
            dims,
            DataType::F32,
            (0..numel).map(|i| ((i % 11) as f64 - 5.0) * scale).collect(),
        )
        .unwrap()
    };
    vec![
        Value::Tensor(fill(&[batch, 8], 0.1)),
        Value::Tensor(fill(&[8, 16], 0.05)),
        Value::Tensor(fill(&[16, 8], 0.05)),
        Value::Tensor(fill(&[8], 0.2)),
    ]
}

fn main_instrs(exec: &mut Executable) -> &mut Vec<Instr> {
    &mut exec.funcs.get_mut("main").unwrap().instrs
}

fn violations_of(exec: &Executable) -> Vec<(&'static str, String)> {
    match verify(exec, &Registry::new()) {
        Ok(()) => Vec::new(),
        Err(e) => e
            .violations
            .into_iter()
            .map(|v| (v.rule, v.to_string()))
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Validator: pipeline output passes, corrupted executables are rejected with
// named violations.
// ---------------------------------------------------------------------------

#[test]
fn pipeline_produced_executables_pass_validation() {
    let (m, n) = mlp_module();
    for opts in [
        CompileOptions::default().with_bound(n.clone(), 64),
        CompileOptions::baseline(),
        CompileOptions {
            graph_capture: false,
            ..CompileOptions::default()
        },
    ] {
        // `compile` itself validates after lowering, planning and capture;
        // assert the final artifact also passes a standalone check.
        let exec = compile(m.clone(), &opts).unwrap();
        assert!(verify(&exec, &Registry::new()).is_ok());
    }
}

#[test]
fn validator_rejects_use_after_kill() {
    let mut exec = compiled_mlp(64);
    let instrs = main_instrs(&mut exec);
    let kill_at = instrs
        .iter()
        .position(|i| matches!(i, Instr::Kill { .. }))
        .expect("plan emits kills");
    // Kill the same register twice.
    let dup = instrs[kill_at].clone();
    instrs.insert(kill_at + 1, dup);
    let v = violations_of(&exec);
    assert!(v.iter().any(|(rule, _)| *rule == "use-after-kill"), "{v:?}");
}

#[test]
fn validator_rejects_undefined_register() {
    let mut exec = compiled_mlp(64);
    let f = exec.funcs.get_mut("main").unwrap();
    // Point the return at a fresh register nothing ever writes.
    f.num_regs += 1;
    let unset = f.num_regs - 1;
    for i in &mut f.instrs {
        if let Instr::Ret { src } = i {
            *src = unset;
        }
    }
    let v = violations_of(&exec);
    assert!(
        v.iter().any(|(rule, _)| *rule == "undefined-register"),
        "{v:?}"
    );
}

#[test]
fn validator_rejects_arity_mismatch() {
    let mut exec = compiled_mlp(64);
    let instrs = main_instrs(&mut exec);
    for i in instrs.iter_mut() {
        if let Instr::CallLib { args, .. } = i {
            args.push(0); // one argument too many
            break;
        }
    }
    let v = violations_of(&exec);
    assert!(v.iter().any(|(rule, _)| *rule == "arity-mismatch"), "{v:?}");
}

#[test]
fn validator_rejects_unbound_symbolic_var() {
    let mut exec = compiled_mlp(64);
    // Strip the match_shape prologue: symbolic shapes are never bound.
    main_instrs(&mut exec).retain(|i| !matches!(i, Instr::MatchShape { .. }));
    let v = violations_of(&exec);
    assert!(
        v.iter().any(|(rule, _)| *rule == "unbound-symbolic-var"),
        "{v:?}"
    );
}

#[test]
fn validator_rejects_tensor_on_dead_storage() {
    let mut exec = compiled_mlp(64);
    let instrs = main_instrs(&mut exec);
    let (at, storage) = instrs
        .iter()
        .enumerate()
        .find_map(|(i, instr)| match instr {
            Instr::TensorFromStorage { storage, .. } => Some((i, *storage)),
            _ => None,
        })
        .expect("plan emits tensor_from");
    instrs.insert(at, Instr::Kill { reg: storage });
    let v = violations_of(&exec);
    assert!(v.iter().any(|(rule, _)| *rule == "dead-storage"), "{v:?}");
}

#[test]
fn violations_render_with_rule_function_and_pc() {
    let mut exec = compiled_mlp(64);
    main_instrs(&mut exec).retain(|i| !matches!(i, Instr::MatchShape { .. }));
    let err = verify(&exec, &Registry::new()).unwrap_err();
    let text = err.to_string();
    assert!(text.contains("invariant violation"), "{text}");
    assert!(text.contains("[unbound-symbolic-var] main[pc "), "{text}");
}

// ---------------------------------------------------------------------------
// Error taxonomy: every VmErrorKind variant, with provenance and recovery.
// ---------------------------------------------------------------------------

/// Asserts the VM completes a clean run right after `err` and counted it
/// as a recovery.
fn assert_recovers(vm: &mut Vm, args: &[Value]) {
    let before = vm.telemetry().recoveries;
    vm.run("main", args).expect("VM must be reusable after an error");
    assert_eq!(vm.telemetry().recoveries, before + 1);
    assert_eq!(vm.telemetry().pool.in_use, 0, "failed run leaked pool blocks");
}

#[test]
fn unknown_function_errors_and_vm_recovers() {
    let mut vm = Vm::new(compiled_mlp(64));
    let err = vm.run("nope", &[]).unwrap_err();
    assert!(matches!(err.kind, VmErrorKind::UnknownFunction(_)));
    assert_recovers(&mut vm, &mlp_args(2));
}

#[test]
fn arg_count_errors_with_entry_frame() {
    let mut vm = Vm::new(compiled_mlp(64));
    let err = vm.run("main", &mlp_args(2)[..2]).unwrap_err();
    assert!(matches!(err.kind, VmErrorKind::ArgCount { expected: 4, actual: 2, .. }));
    assert_eq!(err.origin().unwrap().instr, "<function entry>");
    assert_recovers(&mut vm, &mlp_args(2));
}

#[test]
fn type_mismatch_errors_with_trace() {
    let mut exec = compiled_mlp(64);
    // Project a tuple field out of a tensor parameter.
    let instrs = main_instrs(&mut exec);
    let at = instrs
        .iter()
        .position(|i| !matches!(i, Instr::MatchShape { .. }))
        .unwrap();
    instrs.insert(
        at,
        Instr::GetItem {
            dst: 4,
            src: 0,
            index: 0,
        },
    );
    let mut vm = Vm::new(exec);
    let err = vm.run("main", &mlp_args(2)).unwrap_err();
    assert!(matches!(
        err.kind,
        VmErrorKind::TypeMismatch {
            expected: "tuple",
            ..
        }
    ));
    let origin = err.origin().unwrap();
    assert_eq!(origin.func, "main");
    assert_eq!(origin.pc, at);
    assert!(origin.instr.contains('['), "{}", origin.instr);
    // The executable itself is corrupt, so no run can succeed — but the
    // failed run must not leak pool memory.
    assert_eq!(vm.telemetry().pool.in_use, 0);
}

#[test]
fn injected_shape_check_fault_errors_and_recovers() {
    let mut vm = Vm::new(compiled_mlp(64));
    vm.inject_faults(FaultPlan::new().fail_shape_check(2));
    let err = vm.run("main", &mlp_args(2)).unwrap_err();
    assert!(matches!(err.kind, VmErrorKind::ShapeCheck { .. }));
    assert!(err.to_string().contains("injected fault"), "{err}");
    let origin = err.origin().unwrap();
    assert!(origin.instr.contains("match_shape"), "{}", origin.instr);
    assert_eq!(vm.telemetry().faults_injected, 1);
    assert_recovers(&mut vm, &mlp_args(2));
}

#[test]
fn strict_storage_overflow_errors_then_fallback_succeeds() {
    let mut vm = Vm::new(compiled_mlp(4));
    vm.set_strict_storage(true);
    let err = vm.run("main", &mlp_args(32)).unwrap_err();
    match err.kind {
        VmErrorKind::StorageOverflow {
            required,
            available,
        } => assert!(required > available),
        other => panic!("expected StorageOverflow, got {other}"),
    }
    assert!(err.origin().unwrap().instr.contains("tensor_from"));
    // Default mode degrades the same overflow to the pooled allocator.
    vm.set_strict_storage(false);
    assert_recovers(&mut vm, &mlp_args(32));
    assert!(vm.telemetry().fallback_allocs >= 1);
}

#[test]
fn unbound_symbolic_var_errors_at_evaluation() {
    let mut exec = compiled_mlp(64);
    main_instrs(&mut exec).retain(|i| !matches!(i, Instr::MatchShape { .. }));
    // The validator rejects this executable (see above); running it anyway
    // shows the VM degrades to a traced Eval error, not a panic.
    let mut vm = Vm::new(exec);
    let err = vm.run("main", &mlp_args(2)).unwrap_err();
    assert!(matches!(err.kind, VmErrorKind::Eval(_)));
    assert!(err.origin().unwrap().instr.contains("tensor_from"));
}

#[test]
fn interp_error_carries_call_tir_frame() {
    // relu's X and Y buffers share shape (n,); passing a mis-sized
    // destination makes the tensor-program interpreter fail.
    let n = SymVar::new("n");
    let xb = Buffer::new("X", vec![n.clone().into()], DataType::F32);
    let yb = Buffer::new("Y", vec![n.clone().into()], DataType::F32);
    let (iv, nest) = grid(&[("i", n.clone().into())]);
    let body = nest.build(Stmt::store(
        &yb,
        vec![iv[0].clone().into()],
        TirExpr::Max(
            Box::new(TirExpr::load(&xb, vec![iv[0].clone().into()])),
            Box::new(TirExpr::FloatImm(0.0)),
        ),
    ));
    let relu = PrimFunc::new("relu", vec![xb, yb], 1, body);
    let mut exec = Executable::new();
    exec.tir_funcs.insert("relu".into(), relu);
    exec.funcs.insert(
        "main".into(),
        VmFunction {
            name: "main".into(),
            num_params: 1,
            num_regs: 2,
            instrs: vec![
                Instr::AllocTensor {
                    dst: 1,
                    shape: vec![8.into()],
                    dtype: DataType::F32,
                },
                Instr::CallTir {
                    func: "relu".into(),
                    args: vec![0],
                    dsts: vec![1],
                    sym_args: vec![],
                },
                Instr::Ret { src: 1 },
            ],
        },
    );
    let mut vm = Vm::new(exec);
    let x = NDArray::zeros(&[4], DataType::F32); // 4 != 8
    let err = vm.run("main", &[Value::Tensor(x)]).unwrap_err();
    assert!(matches!(err.kind, VmErrorKind::Interp(_)), "{err}");
    let origin = err.origin().unwrap();
    assert_eq!(origin.pc, 1);
    assert!(origin.instr.contains("call_tir"), "{}", origin.instr);
    // The VM is reusable with a correctly sized input.
    let ok = NDArray::zeros(&[8], DataType::F32);
    vm.run("main", &[Value::Tensor(ok)]).unwrap();
    assert_eq!(vm.telemetry().recoveries, 1);
}

#[test]
fn injected_kernel_fault_errors_and_recovers() {
    let mut vm = Vm::new(compiled_mlp(64));
    vm.inject_faults(FaultPlan::new().fail_kernel(2));
    let err = vm.run("main", &mlp_args(2)).unwrap_err();
    match &err.kind {
        VmErrorKind::Kernel(k) => assert_eq!(k.detail, "injected fault"),
        other => panic!("expected Kernel, got {other}"),
    }
    assert!(err.origin().unwrap().instr.contains("call_lib"));
    assert_eq!(vm.telemetry().faults_injected, 1);
    assert_recovers(&mut vm, &mlp_args(2));
}

#[test]
fn injected_alloc_fault_errors_and_recovers() {
    let mut vm = Vm::new(compiled_mlp(64));
    vm.inject_faults(FaultPlan::new().fail_alloc(1));
    let err = vm.run("main", &mlp_args(2)).unwrap_err();
    assert!(matches!(err.kind, VmErrorKind::StorageOverflow { .. }));
    assert!(err.origin().unwrap().instr.contains("alloc_storage"));
    assert_eq!(vm.telemetry().faults_injected, 1);
    assert_recovers(&mut vm, &mlp_args(2));
}

#[test]
fn unknown_tir_errors_with_trace() {
    let mut exec = compiled_mlp(64);
    main_instrs(&mut exec).push(Instr::CallTir {
        func: "missing_kernel".into(),
        args: vec![],
        dsts: vec![],
        sym_args: vec![],
    });
    // Move the stray call before the return so it executes.
    let instrs = main_instrs(&mut exec);
    let last = instrs.len() - 1;
    instrs.swap(last - 1, last);
    let mut vm = Vm::new(exec);
    let err = vm.run("main", &mlp_args(2)).unwrap_err();
    match &err.kind {
        VmErrorKind::UnknownTir(name) => assert_eq!(name, "missing_kernel"),
        other => panic!("expected UnknownTir, got {other}"),
    }
    assert!(err.origin().unwrap().instr.contains("call_tir"));
}

#[test]
fn no_return_errors_with_end_frame() {
    let mut exec = compiled_mlp(64);
    main_instrs(&mut exec).retain(|i| !matches!(i, Instr::Ret { .. }));
    let mut vm = Vm::new(exec);
    let err = vm.run("main", &mlp_args(2)).unwrap_err();
    assert!(matches!(err.kind, VmErrorKind::NoReturn(_)));
    assert_eq!(err.origin().unwrap().instr, "<end of function>");
    // Even without a return, the run's pool blocks were reclaimed.
    assert_eq!(vm.telemetry().pool.in_use, 0);
}

#[test]
fn traced_errors_render_function_pc_and_instruction() {
    let mut vm = Vm::new(compiled_mlp(64));
    vm.inject_faults(FaultPlan::new().fail_kernel(1));
    let err = vm.run("main", &mlp_args(2)).unwrap_err();
    let text = err.to_string();
    assert!(text.contains("injected fault"), "{text}");
    assert!(text.contains("at main[pc "), "{text}");
    assert!(text.contains("call_lib"), "{text}");
}

// ---------------------------------------------------------------------------
// Systematic recovery: every fault site, same VM, clean state each time.
// ---------------------------------------------------------------------------

#[test]
fn vm_recovers_after_faults_at_every_site() {
    let mut vm = Vm::new(compiled_mlp(64));
    let args = mlp_args(2);
    let plans = [
        FaultPlan::new().fail_alloc(1),
        FaultPlan::new().fail_kernel(1),
        FaultPlan::new().fail_shape_check(1),
        FaultPlan::new().fail_alloc(2).fail_kernel(3),
    ];
    let mut recoveries = 0;
    for plan in plans {
        vm.inject_faults(plan);
        let err = vm.run("main", &args).unwrap_err();
        assert!(err.origin().is_some(), "injected faults carry a trace");
        assert_eq!(vm.telemetry().pool.in_use, 0);
        vm.clear_faults();
        vm.run("main", &args).expect("clean run after injected fault");
        recoveries += 1;
        assert_eq!(vm.telemetry().recoveries, recoveries);
    }
    assert_eq!(vm.telemetry().faults_injected, plans_fault_count());
}

fn plans_fault_count() -> u64 {
    // Each plan fires once per run except the combined plan, which fires
    // only its first scheduled fault (the error aborts the run before the
    // third kernel call).
    4
}

// ---------------------------------------------------------------------------
// Graceful degradation: bound-exceeding shapes complete via the pool.
// ---------------------------------------------------------------------------

#[test]
fn bound_exceeding_run_completes_via_pooled_fallback() {
    let (m, n) = mlp_module();
    // Plan for n <= 4, then run n = 32.
    let opts = CompileOptions::default().with_bound(n, 4);
    let exec = compile(m.clone(), &opts).unwrap();
    let mut vm = Vm::new(exec);

    let small = vm.run("main", &mlp_args(2)).unwrap();
    assert_eq!(small.as_tensor().unwrap().shape(), &[2, 8]);
    assert_eq!(vm.telemetry().fallback_allocs, 0);

    let big = vm.run("main", &mlp_args(32)).unwrap();
    assert_eq!(big.as_tensor().unwrap().shape(), &[32, 8]);
    let tel = vm.telemetry();
    assert!(tel.fallback_allocs >= 1, "overflow must use the pool");

    // The degraded run computes the same numbers as an unplanned build.
    let baseline = compile(m, &CompileOptions::baseline()).unwrap();
    let mut base_vm = Vm::new(baseline);
    let expect = base_vm.run("main", &mlp_args(32)).unwrap();
    let (got, want) = (
        big.as_tensor().unwrap().to_f64_vec(),
        expect.as_tensor().unwrap().to_f64_vec(),
    );
    for (g, w) in got.iter().zip(&want) {
        assert!((g - w).abs() < 1e-4, "{g} vs {w}");
    }
}
