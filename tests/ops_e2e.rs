//! Operator-level end-to-end tests: every graph operator compiled through
//! the full pipeline and executed on the VM against plain-Rust references.

use relax::core::{BlockBuilder, DataType, Expr, Op, OpAttrs, StructInfo};
use relax::passes::{compile, CompileOptions};
use relax::tir::NDArray;
use relax::vm::{Value, Vm};
use relax_arith::Var as SymVar;

/// Compiles `main(x: Tensor((n, C), f32)) = op(x)` and runs it.
fn run_unary(op: Op, attrs: OpAttrs, x: &NDArray) -> Vec<f64> {
    let mut bb = BlockBuilder::new();
    let n = SymVar::new("n");
    let cols = x.shape()[1] as i64;
    let p = bb.begin_function(
        "main",
        vec![(
            "x".into(),
            StructInfo::tensor(vec![n.into(), cols.into()], DataType::F32),
        )],
    );
    bb.begin_dataflow();
    let out = bb
        .emit_output(Expr::CallOp {
            op,
            args: vec![p[0].clone().into()],
            attrs,
        })
        .unwrap();
    bb.end_dataflow();
    bb.finish_function(out.into(), None).unwrap();
    let exec = compile(bb.finish(), &CompileOptions::default()).unwrap();
    let mut vm = Vm::new(exec);
    let out = vm.run("main", &[Value::Tensor(x.clone())]).unwrap();
    out.as_tensor().unwrap().to_f64_vec()
}

fn sample(rows: usize, cols: usize) -> NDArray {
    NDArray::from_f64(
        &[rows, cols],
        DataType::F32,
        (0..rows * cols).map(|v| (v as f64) * 0.3 - 1.1).collect(),
    )
    .unwrap()
}

#[test]
fn unary_elementwise_ops_match_references() {
    let x = sample(2, 4);
    let xv = x.to_f64_vec();
    type Reference = Box<dyn Fn(f64) -> f64>;
    let cases: Vec<(Op, Reference)> = vec![
        (Op::Relu, Box::new(|v: f64| v.max(0.0))),
        (Op::Exp, Box::new(f64::exp)),
        (Op::Neg, Box::new(|v: f64| -v)),
        (Op::Sigmoid, Box::new(|v: f64| 1.0 / (1.0 + (-v).exp()))),
        (Op::Tanh, Box::new(f64::tanh)),
        (Op::Silu, Box::new(|v: f64| v / (1.0 + (-v).exp()))),
    ];
    for (op, reference) in cases {
        let got = run_unary(op, OpAttrs::new(), &x);
        for (g, v) in got.iter().zip(&xv) {
            let e = reference(*v);
            assert!((g - e).abs() < 1e-4, "{op:?}: {g} vs {e}");
        }
    }
}

#[test]
fn softmax_and_norms() {
    let x = sample(3, 4);
    let xv = x.to_f64_vec();
    // Softmax rows sum to one and preserve ordering.
    let got = run_unary(Op::Softmax, OpAttrs::new(), &x);
    for r in 0..3 {
        let row = &got[r * 4..(r + 1) * 4];
        let sum: f64 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        for c in 0..3 {
            assert_eq!(
                row[c] < row[c + 1],
                xv[r * 4 + c] < xv[r * 4 + c + 1],
                "ordering preserved"
            );
        }
    }
    // Mean over axis 1.
    let attrs: OpAttrs = [("axis".to_string(), "1".to_string())]
        .into_iter()
        .collect();
    let means = run_unary(Op::Mean, attrs, &x);
    for r in 0..3 {
        let expect: f64 = xv[r * 4..(r + 1) * 4].iter().sum::<f64>() / 4.0;
        assert!((means[r] - expect).abs() < 1e-4);
    }
}

#[test]
fn slice_and_cast_compose() {
    let mut bb = BlockBuilder::new();
    let n = SymVar::new("n");
    let p = bb.begin_function(
        "main",
        vec![(
            "x".into(),
            StructInfo::tensor(vec![n.into(), 6.into()], DataType::F32),
        )],
    );
    bb.begin_dataflow();
    let attrs: OpAttrs = [
        ("axis".to_string(), "1".to_string()),
        ("begin".to_string(), "2".to_string()),
        ("end".to_string(), "5".to_string()),
    ]
    .into_iter()
    .collect();
    let sliced = bb
        .emit_op_attrs(Op::Slice, vec![p[0].clone().into()], attrs)
        .unwrap();
    assert_eq!(
        sliced.struct_info().tensor_dims().unwrap()[1],
        relax_arith::PrimExpr::Int(3)
    );
    let cattrs: OpAttrs = [("dtype".to_string(), "f16".to_string())]
        .into_iter()
        .collect();
    let cast = bb
        .emit_op_attrs(Op::Cast, vec![sliced.into()], cattrs)
        .unwrap();
    assert_eq!(cast.struct_info().tensor_dtype(), Some(DataType::F16));
    let out = bb.emit_output(Expr::Var(cast)).unwrap();
    bb.end_dataflow();
    bb.finish_function(out.into(), None).unwrap();
    let exec = compile(bb.finish(), &CompileOptions::default()).unwrap();
    let mut vm = Vm::new(exec);
    let x = sample(2, 6);
    let out = vm.run("main", &[Value::Tensor(x.clone())]).unwrap();
    let t = out.as_tensor().unwrap();
    assert_eq!(t.shape(), &[2, 3]);
    assert_eq!(t.dtype(), DataType::F16);
    let xv = x.to_f64_vec();
    let got = t.to_f64_vec();
    for r in 0..2 {
        for c in 0..3 {
            assert!((got[r * 3 + c] - xv[r * 6 + 2 + c]).abs() < 1e-2);
        }
    }
}

#[test]
fn split_tuple_flows_through_the_vm() {
    let mut bb = BlockBuilder::new();
    let n = SymVar::new("n");
    let p = bb.begin_function(
        "main",
        vec![(
            "x".into(),
            StructInfo::tensor(vec![n.into(), 4.into()], DataType::F32),
        )],
    );
    bb.begin_dataflow();
    let attrs: OpAttrs = [
        ("axis".to_string(), "1".to_string()),
        ("sections".to_string(), "2".to_string()),
    ]
    .into_iter()
    .collect();
    let halves = bb
        .emit_op_attrs(Op::Split, vec![p[0].clone().into()], attrs)
        .unwrap();
    let a = bb
        .emit(Expr::TupleGetItem(Box::new(halves.clone().into()), 0))
        .unwrap();
    let b = bb
        .emit(Expr::TupleGetItem(Box::new(halves.into()), 1))
        .unwrap();
    let out = bb
        .emit_output(Expr::op_call(Op::Add, vec![a.into(), b.into()]))
        .unwrap();
    bb.end_dataflow();
    bb.finish_function(out.into(), None).unwrap();
    let exec = compile(bb.finish(), &CompileOptions::default()).unwrap();
    let mut vm = Vm::new(exec);
    let x = NDArray::from_f64(&[2, 4], DataType::F32, (0..8).map(f64::from).collect()).unwrap();
    let out = vm.run("main", &[Value::Tensor(x)]).unwrap();
    // [0,1]+[2,3] = [2,4]; [4,5]+[6,7] = [10,12]
    assert_eq!(
        out.as_tensor().unwrap().to_f64_vec(),
        vec![2., 4., 10., 12.]
    );
}

#[test]
fn layer_norm_through_pipeline() {
    let mut bb = BlockBuilder::new();
    let n = SymVar::new("n");
    let p = bb.begin_function(
        "main",
        vec![
            (
                "x".into(),
                StructInfo::tensor(vec![n.into(), 4.into()], DataType::F32),
            ),
            (
                "g".into(),
                StructInfo::tensor(vec![4.into()], DataType::F32),
            ),
            (
                "b".into(),
                StructInfo::tensor(vec![4.into()], DataType::F32),
            ),
        ],
    );
    bb.begin_dataflow();
    let out = bb
        .emit_output(Expr::op_call(
            Op::LayerNorm,
            vec![
                p[0].clone().into(),
                p[1].clone().into(),
                p[2].clone().into(),
            ],
        ))
        .unwrap();
    bb.end_dataflow();
    bb.finish_function(out.into(), None).unwrap();
    let exec = compile(bb.finish(), &CompileOptions::default()).unwrap();
    let mut vm = Vm::new(exec);
    let x = NDArray::from_f64(&[1, 4], DataType::F32, vec![2., 4., 6., 8.]).unwrap();
    let g = NDArray::from_f64(&[4], DataType::F32, vec![1.; 4]).unwrap();
    let b = NDArray::from_f64(&[4], DataType::F32, vec![0.; 4]).unwrap();
    let out = vm
        .run(
            "main",
            &[Value::Tensor(x), Value::Tensor(g), Value::Tensor(b)],
        )
        .unwrap();
    let got = out.as_tensor().unwrap().to_f64_vec();
    // mean 5, var 5 -> normalized [-3,-1,1,3]/sqrt(5)
    for (g, e) in got.iter().zip([-3.0f64, -1.0, 1.0, 3.0]) {
        assert!((g - e / 5.0f64.sqrt()).abs() < 1e-3);
    }
}

#[test]
fn take_concat_permute_flatten_chain() {
    let mut bb = BlockBuilder::new();
    let p = bb.begin_function(
        "main",
        vec![
            (
                "table".into(),
                StructInfo::tensor(vec![5.into(), 3.into()], DataType::F32),
            ),
            (
                "idx".into(),
                StructInfo::tensor(vec![2.into()], DataType::I64),
            ),
        ],
    );
    bb.begin_dataflow();
    let gathered = bb.emit_op(Op::Take, &[p[0].clone(), p[1].clone()]).unwrap();
    let cat_attrs: OpAttrs = [("axis".to_string(), "0".to_string())]
        .into_iter()
        .collect();
    let doubled = bb
        .emit_op_attrs(
            Op::Concat,
            vec![gathered.clone().into(), gathered.into()],
            cat_attrs,
        )
        .unwrap();
    let perm_attrs: OpAttrs = [("axes".to_string(), "1,0".to_string())]
        .into_iter()
        .collect();
    let transposed = bb
        .emit_op_attrs(Op::Permute, vec![doubled.into()], perm_attrs)
        .unwrap();
    let out = bb
        .emit_output(Expr::op_call(Op::Flatten, vec![transposed.into()]))
        .unwrap();
    bb.end_dataflow();
    bb.finish_function(out.into(), None).unwrap();
    let exec = compile(bb.finish(), &CompileOptions::default()).unwrap();
    let mut vm = Vm::new(exec);
    let table =
        NDArray::from_f64(&[5, 3], DataType::F32, (0..15).map(f64::from).collect()).unwrap();
    let idx = NDArray::from_i64(&[2], DataType::I64, vec![4, 0]).unwrap();
    let out = vm
        .run("main", &[Value::Tensor(table), Value::Tensor(idx)])
        .unwrap();
    let t = out.as_tensor().unwrap();
    assert_eq!(t.shape(), &[12]);
    // gathered = [[12,13,14],[0,1,2]]; doubled stacks it twice; transpose
    // then flatten column-major-izes it.
    let expect = vec![12., 0., 12., 0., 13., 1., 13., 1., 14., 2., 14., 2.];
    assert_eq!(t.to_f64_vec(), expect);
}
