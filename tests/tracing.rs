//! End-to-end tracing properties: random modules through the fully
//! verified pipeline must always produce a well-formed span tree that
//! agrees exactly with the `CompileReport`, and the Chrome export must
//! pass the in-repo checker.
//!
//! Deterministic seeded-generator loops (in-repo xorshift, matching the
//! `tests/properties.rs` conventions); failures print the seed.

use relax::core::{BlockBuilder, DataType, Expr, Op, StructInfo};
use relax::passes::{compile_with_context, CompileOptions, PassContext, VerifyLevel};
use relax::trace::{Capture, EventKind};
use relax::vm::{Value, Vm};
use relax_arith::Var as SymVar;
use relax_tir::NDArray;

/// Small xorshift64* PRNG: deterministic, seed-reproducible.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform integer in `[lo, hi)`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }
}

/// A random elementwise/matmul chain over `(x: (n, 8), w: (8, 8))`.
fn build_random_chain(rng: &mut XorShift) -> relax::core::IRModule {
    let mut bb = BlockBuilder::new();
    let n = SymVar::new("n");
    let p = bb.begin_function(
        "main",
        vec![
            (
                "x".into(),
                StructInfo::tensor(vec![n.into(), 8.into()], DataType::F32),
            ),
            (
                "w".into(),
                StructInfo::tensor(vec![8.into(), 8.into()], DataType::F32),
            ),
        ],
    );
    bb.begin_dataflow();
    let mut cur = p[0].clone();
    for _ in 0..rng.range(1, 8) {
        cur = match rng.range(0, 7) {
            0 => bb.emit_op(Op::Relu, &[cur]).unwrap(),
            1 => bb.emit_op(Op::Exp, &[cur]).unwrap(),
            2 => bb.emit_op(Op::Silu, &[cur]).unwrap(),
            3 => bb.emit_op(Op::Neg, &[cur]).unwrap(),
            4 => bb.emit_op(Op::Add, &[cur.clone(), cur]).unwrap(),
            5 => bb.emit_op(Op::Mul, &[cur.clone(), cur]).unwrap(),
            _ => bb.emit_op(Op::Matmul, &[cur, p[1].clone()]).unwrap(),
        };
    }
    let out = bb.emit_output(Expr::Var(cur)).unwrap();
    bb.end_dataflow();
    bb.finish_function(out.into(), None).unwrap();
    bb.finish()
}

/// Random small modules through the fully verified pipeline: no panics,
/// clean verification, and a trace whose span tree validates — every
/// span closed, parents preceding children — with exactly one `pass:`
/// span per `CompileReport` entry (the report's timings are *derived*
/// from these spans, so the counts must agree by construction).
#[test]
fn traced_compiles_are_well_formed_and_agree_with_report() {
    for seed in 0..16u64 {
        let mut rng = XorShift::new(seed + 0x7000);
        let module = build_random_chain(&mut rng);

        let capture = Capture::begin();
        let mut ctx = PassContext::new();
        ctx.verify = VerifyLevel::All;
        let exec = compile_with_context(module, &CompileOptions::default(), &mut ctx)
            .unwrap_or_else(|e| panic!("seed {seed}: pipeline failed: {e}"));
        let report = ctx.take_report();
        let trace = capture.finish();

        trace
            .validate()
            .unwrap_or_else(|e| panic!("seed {seed}: malformed trace: {e}"));
        assert_eq!(
            trace.sync_span_count("compile", "pass:"),
            report.passes.len(),
            "seed {seed}: pass spans must match CompileReport entries"
        );
        assert!(report.total >= report.pass_time(), "seed {seed}");
        // One pipeline root span per compile, and one fixpoint round span
        // per recorded iteration.
        assert_eq!(trace.sync_span_count("compile", "pipeline"), 1);
        let rounds: usize = report.fixpoints.iter().map(|f| f.iterations).sum();
        assert_eq!(
            trace.sync_span_count("compile", "round:"),
            rounds,
            "seed {seed}: fixpoint round spans must match iteration counts"
        );

        // The Chrome export of the same trace passes the in-repo checker.
        let stats = relax::trace::validate_chrome_trace(&trace.chrome_json())
            .unwrap_or_else(|e| panic!("seed {seed}: chrome export invalid: {e}"));
        assert_eq!(stats.events, trace.events.len());

        // The compiled executable still runs.
        let x = NDArray::zeros(&[3, 8], DataType::F32);
        let w = NDArray::zeros(&[8, 8], DataType::F32);
        Vm::new(exec)
            .run("main", &[Value::Tensor(x), Value::Tensor(w)])
            .unwrap_or_else(|e| panic!("seed {seed}: vm failed: {e}"));
    }
}

/// Every begin event's parent (when recorded) is an enclosing span on
/// the same thread for sync spans — the compile pipeline is
/// single-threaded, so every pass span must sit under the pipeline root.
#[test]
fn pass_spans_nest_under_the_pipeline_root() {
    let mut rng = XorShift::new(42);
    let module = build_random_chain(&mut rng);
    let capture = Capture::begin();
    let mut ctx = PassContext::new();
    ctx.verify = VerifyLevel::All;
    compile_with_context(module, &CompileOptions::default(), &mut ctx).unwrap();
    let trace = capture.finish();
    trace.validate().unwrap();

    let root = trace
        .events
        .iter()
        .find(|e| e.kind == EventKind::Begin && e.name == "pipeline")
        .expect("pipeline root span");
    assert_eq!(root.parent, None);
    for e in &trace.events {
        if e.kind == EventKind::Begin && e.cat == "compile" && e.name != "pipeline" {
            assert!(
                e.parent.is_some(),
                "span `{}` must nest under the pipeline",
                e.name
            );
        }
    }
}
